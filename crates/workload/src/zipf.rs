//! Zipf-distributed key sampler (skewed workloads in the paper's
//! evaluation: hotspot keys, data-skew partitions).

use rand::Rng;

/// Zipf sampler over `{0, .., n-1}` with exponent `s` via inverse-CDF
/// lookup (table built once; sampling is a binary search).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` distinct values, exponent `s` (s = 0 is uniform; s ≈ 1 is the
    /// classic heavy skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one value");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cum = 0.0;
        for w in &mut weights {
            cum += *w / total;
            *w = cum;
        }
        Zipf { cdf: weights }
    }

    /// Draw one rank (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank 0 (how hot the hottest key is).
    pub fn top_share(&self) -> f64 {
        self.cdf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1_300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[10] * 4,
            "rank 0 dominates: {}",
            counts[0]
        );
        assert!(z.top_share() > 0.15);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
