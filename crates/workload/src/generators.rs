//! Workload generators matching the paper's evaluation inputs
//! (Section 9.1): the MicroBench stream tables, a TalkingData-like click
//! log, the RTP item-ranking stream, and the GLQ geospatial tuples.
//!
//! All generators are seeded and deterministic so experiments reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use openmldb_types::{DataType, Row, Schema, Value};

use crate::zipf::Zipf;

/// MicroBench stream schema: the time-series tables of the Java testing
/// tool (id, key, value, category, quantity, ts).
pub fn micro_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Bigint),
        ("k", DataType::Bigint),
        ("v", DataType::Double),
        ("category", DataType::String),
        ("quantity", DataType::Int),
        ("ts", DataType::Timestamp),
    ])
    .expect("static schema")
}

/// MicroBench generator parameters.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    pub rows: usize,
    pub distinct_keys: usize,
    /// Zipf exponent over keys (0 = uniform).
    pub key_skew: f64,
    /// Mean gap between consecutive timestamps (ms).
    pub ts_step_ms: i64,
    /// Fraction of tuples delivered out of order.
    pub out_of_order: f64,
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            rows: 10_000,
            distinct_keys: 100,
            key_skew: 0.0,
            ts_step_ms: 10,
            out_of_order: 0.0,
            seed: 42,
        }
    }
}

const CATEGORIES: &[&str] = &["shoes", "bags", "shirts", "phones", "books", "toys"];

/// Generate MicroBench rows.
pub fn micro_rows(cfg: &MicroConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.distinct_keys.max(1), cfg.key_skew);
    (0..cfg.rows)
        .map(|i| {
            let base_ts = i as i64 * cfg.ts_step_ms;
            let ts = if rng.gen_bool(cfg.out_of_order) {
                (base_ts - rng.gen_range(0..=5 * cfg.ts_step_ms)).max(0)
            } else {
                base_ts
            };
            Row::new(vec![
                Value::Bigint(i as i64),
                Value::Bigint(zipf.sample(&mut rng) as i64),
                Value::Double(rng.gen_range(1.0..500.0)),
                Value::string(CATEGORIES[rng.gen_range(0..CATEGORIES.len())]),
                Value::Int(rng.gen_range(1..5)),
                Value::Timestamp(ts),
            ])
        })
        .collect()
}

/// TalkingData-like click schema (ip, app, device, os, channel, click_time,
/// is_attributed) — the Kaggle ad-fraud dataset's columns.
pub fn talkingdata_schema() -> Schema {
    Schema::from_pairs(&[
        ("ip", DataType::Bigint),
        ("app", DataType::Int),
        ("device", DataType::Int),
        ("os", DataType::Int),
        ("channel", DataType::Int),
        ("click_time", DataType::Timestamp),
        ("is_attributed", DataType::Int),
    ])
    .expect("static schema")
}

/// TalkingData-like clicks: many tuples share the same `ip` key (the
/// property Table 2's memory comparison leans on).
pub fn talkingdata_rows(rows: usize, distinct_ips: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(distinct_ips.max(1), 1.05);
    (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Bigint(zipf.sample(&mut rng) as i64),
                Value::Int(rng.gen_range(1..500)),
                Value::Int(rng.gen_range(1..100)),
                Value::Int(rng.gen_range(1..50)),
                Value::Int(rng.gen_range(1..200)),
                Value::Timestamp(i as i64 * 3),
                Value::Int(rng.gen_bool(0.002) as i32),
            ])
        })
        .collect()
}

/// RTP (item ranking) schema: user, item, score, ts.
pub fn rtp_schema() -> Schema {
    Schema::from_pairs(&[
        ("user", DataType::Bigint),
        ("item", DataType::String),
        ("score", DataType::Double),
        ("ts", DataType::Timestamp),
    ])
    .expect("static schema")
}

/// RTP ranking events for `users` users over `items` items.
pub fn rtp_rows(rows: usize, users: usize, items: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Bigint(rng.gen_range(0..users.max(1)) as i64),
                Value::string(format!("item_{}", rng.gen_range(0..items.max(1)))),
                Value::Double(rng.gen_range(0.0..1.0)),
                Value::Timestamp(i as i64),
            ])
        })
        .collect()
}

/// GLQ geospatial schema: id, lat, lon, ts.
pub fn glq_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Bigint),
        ("lat", DataType::Double),
        ("lon", DataType::Double),
        ("ts", DataType::Timestamp),
    ])
    .expect("static schema")
}

/// GPS tuples clustered around `centers` hotspots (cities) with Gaussian-ish
/// scatter — full-table pairwise/grid queries over these are the GLQ load.
pub fn glq_rows(rows: usize, centers: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs: Vec<(f64, f64)> = (0..centers.max(1))
        .map(|_| (rng.gen_range(-60.0..60.0), rng.gen_range(-170.0..170.0)))
        .collect();
    (0..rows)
        .map(|i| {
            let (clat, clon) = hubs[rng.gen_range(0..hubs.len())];
            // Sum of uniforms ≈ normal scatter around the hub.
            let jitter = |rng: &mut StdRng| {
                (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0f64)) * 0.5
            };
            Row::new(vec![
                Value::Bigint(i as i64),
                Value::Double((clat + jitter(&mut rng)).clamp(-89.9, 89.9)),
                Value::Double((clon + jitter(&mut rng) * 2.0).clamp(-179.9, 179.9)),
                Value::Timestamp(i as i64),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_types::KeyValue;
    use std::collections::HashSet;

    #[test]
    fn micro_rows_conform_to_schema_and_are_deterministic() {
        let cfg = MicroConfig {
            rows: 500,
            ..Default::default()
        };
        let a = micro_rows(&cfg);
        let b = micro_rows(&cfg);
        assert_eq!(a.len(), 500);
        let schema = micro_schema();
        for row in &a {
            schema.validate_row(row.values()).unwrap();
        }
        assert_eq!(a, b, "seeded generation reproduces");
        let c = micro_rows(&MicroConfig {
            seed: 7,
            rows: 500,
            ..Default::default()
        });
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn micro_out_of_order_fraction() {
        let cfg = MicroConfig {
            rows: 2_000,
            out_of_order: 0.3,
            ..Default::default()
        };
        let rows = micro_rows(&cfg);
        let late = rows
            .windows(2)
            .filter(|w| w[1].ts_at(5) < w[0].ts_at(5))
            .count();
        assert!(late > 100, "out-of-order tuples present: {late}");
    }

    #[test]
    fn micro_skew_concentrates_keys() {
        let cfg = MicroConfig {
            rows: 5_000,
            key_skew: 1.2,
            ..Default::default()
        };
        let rows = micro_rows(&cfg);
        let hot = rows.iter().filter(|r| r[1] == Value::Bigint(0)).count();
        assert!(hot > 750, "hottest key holds a large share: {hot}");
    }

    #[test]
    fn talkingdata_shares_ips() {
        let rows = talkingdata_rows(5_000, 200, 1);
        let distinct: HashSet<KeyValue> = rows.iter().map(|r| KeyValue::from(&r[0])).collect();
        assert!(distinct.len() <= 200);
        assert!(rows.len() / distinct.len() >= 25, "heavy key sharing");
        let schema = talkingdata_schema();
        schema.validate_row(rows[0].values()).unwrap();
    }

    #[test]
    fn rtp_and_glq_conform() {
        let r = rtp_rows(100, 10, 50, 3);
        rtp_schema().validate_row(r[0].values()).unwrap();
        let g = glq_rows(100, 5, 3);
        glq_schema().validate_row(g[0].values()).unwrap();
        for row in &g {
            let lat = row[1].as_f64().unwrap();
            let lon = row[2].as_f64().unwrap();
            assert!((-90.0..=90.0).contains(&lat));
            assert!((-180.0..=180.0).contains(&lon));
        }
    }
}
