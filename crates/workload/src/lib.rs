//! # openmldb-workload
//!
//! Deterministic workload generators for the paper's evaluation inputs
//! (Section 9.1): MicroBench stream tables, a TalkingData-like click log,
//! the RTP ranking stream, GLQ geospatial tuples, and the Zipf sampler
//! behind every skewed distribution.

pub mod generators;
pub mod zipf;

pub use generators::{
    glq_rows, glq_schema, micro_rows, micro_schema, rtp_rows, rtp_schema, talkingdata_rows,
    talkingdata_schema, MicroConfig,
};
pub use zipf::Zipf;
