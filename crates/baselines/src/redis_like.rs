//! Redis-style in-memory hash store (baseline for Table 2 and Fig 6).
//!
//! Models the memory behaviour the paper measures against:
//!
//! * a global hash table of keys → per-key list of entries, with Redis's
//!   per-entry metadata costs (dict entry, robj headers, SDS strings);
//! * incremental rehashing is *not* modeled — instead we model the doubling
//!   growth policy, whose reallocation spikes the paper calls out;
//! * values are stored as field-value maps (one robj per field), the layout
//!   a Trino-over-Redis deployment uses, so repeated keys and non-compact
//!   encodings cost what they cost in the real pairing.

use std::collections::HashMap;

use openmldb_types::{Row, Value};

/// Approximate Redis memory constants (bytes), following jemalloc-rounded
/// sizes commonly cited for Redis 6 on 64-bit builds.
pub mod cost {
    /// `dictEntry`: key ptr + val ptr + next ptr.
    pub const DICT_ENTRY: usize = 24;
    /// `robj` header.
    pub const ROBJ: usize = 16;
    /// SDS string header + NUL.
    pub const SDS_HEADER: usize = 10;
    /// Quicklist node overhead per list element.
    pub const LIST_NODE: usize = 32;
    /// Hash-table bucket pointer.
    pub const BUCKET_PTR: usize = 8;
}

/// One stored entry: a timestamp plus the row rendered as field strings
/// (Redis hashes store everything as strings).
struct Entry {
    ts: i64,
    fields: Vec<String>,
}

impl Entry {
    fn mem_size(&self) -> usize {
        let field_bytes: usize = self
            .fields
            .iter()
            .map(|f| cost::ROBJ + cost::SDS_HEADER + f.len())
            .sum();
        cost::LIST_NODE + 8 + field_bytes
    }
}

/// A Redis-like keyed time-series store.
pub struct RedisLikeStore {
    map: HashMap<String, Vec<Entry>>,
    /// Bucket array capacity (doubles like Redis's dict).
    capacity: usize,
    entries: usize,
    value_bytes: usize,
    key_bytes: usize,
    /// Rehash (table doubling) events observed.
    pub rehashes: u64,
}

impl Default for RedisLikeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RedisLikeStore {
    pub fn new() -> Self {
        RedisLikeStore {
            map: HashMap::new(),
            capacity: 16,
            entries: 0,
            value_bytes: 0,
            key_bytes: 0,
            rehashes: 0,
        }
    }

    /// Store a row under `key` ordered by `ts` (Redis sorted-set/list style:
    /// values rendered to strings field by field).
    pub fn put(&mut self, key: &str, ts: i64, row: &Row) {
        let fields: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => other.to_string(),
            })
            .collect();
        let entry = Entry { ts, fields };
        self.value_bytes += entry.mem_size();
        if !self.map.contains_key(key) {
            self.key_bytes += cost::DICT_ENTRY + cost::ROBJ + cost::SDS_HEADER + key.len();
            if self.map.len() + 1 > self.capacity {
                self.capacity *= 2;
                self.rehashes += 1;
            }
        }
        let list = self.map.entry(key.to_string()).or_default();
        // Keep per-key lists time-ordered (insertion sort from the tail —
        // Redis clients do this with ZADD; here it costs what it costs).
        let pos = list.partition_point(|e| e.ts <= ts);
        list.insert(pos, entry);
        self.entries += 1;
    }

    /// Entries for `key` within `[lower_ts, upper_ts]`, oldest first.
    pub fn range(&self, key: &str, lower_ts: i64, upper_ts: i64) -> Vec<(i64, &[String])> {
        match self.map.get(key) {
            None => Vec::new(),
            Some(list) => {
                let start = list.partition_point(|e| e.ts < lower_ts);
                list[start..]
                    .iter()
                    .take_while(|e| e.ts <= upper_ts)
                    .map(|e| (e.ts, e.fields.as_slice()))
                    .collect()
            }
        }
    }

    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Total estimated memory: bucket array + key overheads + entries.
    pub fn mem_used(&self) -> usize {
        self.capacity * cost::BUCKET_PTR + self.key_bytes + self.value_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Bigint(v), Value::string("payload")])
    }

    #[test]
    fn put_and_range() {
        let mut s = RedisLikeStore::new();
        for ts in [30, 10, 20] {
            s.put("k1", ts, &row(ts));
        }
        s.put("k2", 15, &row(15));
        let hits = s.range("k1", 10, 25);
        assert_eq!(
            hits.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
            vec![10, 20]
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn memory_grows_with_entries_and_keys() {
        let mut s = RedisLikeStore::new();
        let empty = s.mem_used();
        s.put("key", 1, &row(1));
        let one = s.mem_used();
        assert!(one > empty + 50, "per-entry overhead is significant");
        s.put("key", 2, &row(2));
        assert!(s.mem_used() > one);
    }

    #[test]
    fn rehash_doubles_capacity() {
        let mut s = RedisLikeStore::new();
        for i in 0..100 {
            s.put(&format!("key{i}"), 0, &row(i));
        }
        assert!(s.rehashes >= 2, "growth beyond 16 buckets rehashes");
    }

    #[test]
    fn redis_layout_is_fatter_than_compact_codec() {
        use openmldb_types::{CompactCodec, DataType, RowCodec, Schema};
        let schema =
            Schema::from_pairs(&[("v", DataType::Bigint), ("s", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        let r = row(42);
        let mut store = RedisLikeStore::new();
        let before = store.mem_used();
        store.put("user:42", 1, &r);
        let redis_cost = store.mem_used() - before;
        let compact_cost = codec.encoded_size(&r).unwrap() + 48; // + node overhead
        assert!(
            redis_cost > compact_cost,
            "redis {redis_cost} vs compact {compact_cost}"
        );
    }
}
