//! DuckDB-style embedded columnar baseline (paper Fig 6).
//!
//! Columnar, in-memory, vectorized — but with no per-key time index and no
//! incremental state: every request is a fresh full-column scan with a
//! key-filter pass plus a temporal-filter pass ("may still require
//! additional passes for complex temporal queries"), then aggregation over
//! the qualifying rows.

use openmldb_exec::WindowAggSet;
use openmldb_sql::plan::BoundAggregate;
use openmldb_types::{Error, Result, Row, Schema, Value};

/// Column-major table.
pub struct DuckDbLikeTable {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
    /// Column values scanned across all queries (the full-scan tax).
    pub values_scanned: u64,
}

impl DuckDbLikeTable {
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        DuckDbLikeTable {
            schema,
            columns,
            rows: 0,
            values_scanned: 0,
        }
    }

    pub fn insert(&mut self, row: &Row) -> Result<()> {
        self.schema.validate_row(row.values())?;
        for (col, v) in self.columns.iter_mut().zip(row.values()) {
            col.push(v.clone());
        }
        self.rows += 1;
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Window query: pass 1 filters the key column, pass 2 filters the
    /// timestamp column, pass 3 gathers + aggregates.
    pub fn window_query(
        &mut self,
        key_col: usize,
        key: &Value,
        ts_col: usize,
        lower_ts: i64,
        upper_ts: i64,
        agg_refs: &[&BoundAggregate],
    ) -> Result<Vec<Value>> {
        if key_col >= self.columns.len() || ts_col >= self.columns.len() {
            return Err(Error::Plan("column out of range".into()));
        }
        // Pass 1: key filter over the whole column (no index).
        let mut selection: Vec<usize> = Vec::new();
        for (i, v) in self.columns[key_col].iter().enumerate() {
            self.values_scanned += 1;
            if v == key {
                selection.push(i);
            }
        }
        // Pass 2: temporal filter.
        let mut in_frame: Vec<(i64, usize)> = Vec::new();
        for &i in &selection {
            self.values_scanned += 1;
            let ts = self.columns[ts_col][i].as_i64().unwrap_or(i64::MIN);
            if (lower_ts..=upper_ts).contains(&ts) {
                in_frame.push((ts, i));
            }
        }
        in_frame.sort_unstable();
        // Pass 3: gather + aggregate.
        let mut set = WindowAggSet::new(agg_refs)?;
        let width = self.columns.len();
        for (_, i) in in_frame {
            let mut row = Vec::with_capacity(width);
            for col in &self.columns {
                row.push(col[i].clone());
            }
            self.values_scanned += width as u64;
            set.update(&row)?;
        }
        Ok(set.outputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn spec(f: &str) -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup(f).unwrap(),
            args: vec![PhysExpr::Column(1)],
            output_type: DataType::Double,
        }
    }

    #[test]
    fn window_query_scans_everything() {
        let mut t = DuckDbLikeTable::new(schema());
        for i in 0..100 {
            t.insert(&Row::new(vec![
                Value::Bigint(i % 4),
                Value::Double(1.0),
                Value::Timestamp(i * 10),
            ]))
            .unwrap();
        }
        let s = spec("count");
        let out = t
            .window_query(0, &Value::Bigint(1), 2, 0, 10_000, &[&s])
            .unwrap();
        assert_eq!(out[0], Value::Bigint(25));
        assert!(t.values_scanned >= 100, "key pass reads the full column");
    }

    #[test]
    fn temporal_filter_applies() {
        let mut t = DuckDbLikeTable::new(schema());
        for ts in [100, 200, 300] {
            t.insert(&Row::new(vec![
                Value::Bigint(1),
                Value::Double(ts as f64),
                Value::Timestamp(ts),
            ]))
            .unwrap();
        }
        let s = spec("sum");
        let out = t
            .window_query(0, &Value::Bigint(1), 2, 150, 250, &[&s])
            .unwrap();
        assert_eq!(out[0], Value::Double(200.0));
    }
}
