//! GreenPlum-style MPP baseline (paper Fig 7, RTP).
//!
//! An MPP warehouse serving real-time TopN "incurs prohibitive
//! recomputations for new data tuples": there is no per-key window state,
//! so every ranking request re-scans the key's full history, filters by
//! time, and sorts — cost grows with history size, not window size.

/// Append-only event table with per-request full recomputation: an MPP
/// warehouse keeps no per-key serving structure, so each ranking request is
/// a full table scan with key and time filters, then a sort.
#[derive(Default)]
pub struct GreenplumLikeRanker {
    table: Vec<(String, i64, String, f64)>,
    /// Rows visited across all queries (the recomputation tax).
    pub rows_visited: u64,
}

impl GreenplumLikeRanker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, key: &str, ts: i64, item: &str, score: f64) {
        self.table
            .push((key.to_string(), ts, item.to_string(), score));
    }

    /// TopN over `[now - window_ms, now]` for `key`: full table scan + sort.
    pub fn query(
        &mut self,
        key: &str,
        now_ts: i64,
        window_ms: i64,
        n: usize,
    ) -> Vec<(String, f64)> {
        let mut in_window: Vec<&(String, i64, String, f64)> = Vec::new();
        for e in &self.table {
            self.rows_visited += 1;
            if e.0 == key && now_ts - e.1 <= window_ms && e.1 <= now_ts {
                in_window.push(e);
            }
        }
        in_window.sort_by(|a, b| b.3.total_cmp(&a.3));
        in_window
            .into_iter()
            .take(n)
            .map(|(_, _, i, s)| (i.clone(), *s))
            .collect()
    }

    pub fn history_len(&self, key: &str) -> usize {
        self.table.iter().filter(|(k, _, _, _)| k == key).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topn_over_window() {
        let mut g = GreenplumLikeRanker::new();
        g.insert("u", 0, "old", 0.99); // will fall outside the window
        g.insert("u", 900, "a", 0.5);
        g.insert("u", 950, "b", 0.7);
        let top = g.query("u", 1_000, 200, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "a");
    }

    #[test]
    fn cost_grows_with_table_not_window() {
        let mut g = GreenplumLikeRanker::new();
        for i in 0..1_000 {
            g.insert(&format!("u{}", i % 4), i, "x", 0.1);
        }
        g.rows_visited = 0;
        g.query("u1", 1_000, 10, 1); // tiny window, one of four keys
        assert_eq!(g.rows_visited, 1_000, "full table scanned regardless");
        assert_eq!(g.history_len("u1"), 250);
    }
}
