//! # openmldb-baselines
//!
//! Rust reimplementations of the systems the paper's evaluation compares
//! against. Each baseline implements the *cost model* the paper attributes
//! to it — the specific inefficiency that makes it lose — while producing
//! semantically identical results, so the benchmark harness compares
//! like-for-like:
//!
//! | module | stands in for | modeled inefficiency |
//! |---|---|---|
//! | [`flink_like`] | Apache Flink | re-sort eviction, full recomputation, static routing |
//! | [`spark_like`] | Spark (offline) | serial windows, shuffle serialization, fat rows, OOM |
//! | [`redis_like`] | Redis store | per-entry metadata, string values, rehash growth |
//! | [`trino_redis_like`] | Trino + Redis | per-query RPC hops, wire-string parsing |
//! | [`mysql_like`] | MySQL (MEMORY) | generic B-tree, per-request re-aggregation |
//! | [`duckdb_like`] | DuckDB | keyless full-column scans, multi-pass temporal filters |
//! | [`greenplum_like`] | GreenPlum MPP | full-history recomputation per ranking request |

pub mod duckdb_like;
pub mod flink_like;
pub mod greenplum_like;
pub mod mysql_like;
pub mod redis_like;
pub mod spark_like;
pub mod trino_redis_like;

pub use duckdb_like::DuckDbLikeTable;
pub use flink_like::{FlinkLikeTopN, FlinkLikeWindow};
pub use greenplum_like::GreenplumLikeRanker;
pub use mysql_like::MySqlLikeTable;
pub use redis_like::RedisLikeStore;
pub use spark_like::{SparkLikeEngine, SparkStats};
pub use trino_redis_like::TrinoRedisLike;
