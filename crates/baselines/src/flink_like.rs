//! Flink-style streaming engine baseline (paper Section 2.2 / 9.3.2).
//!
//! Reproduces the inefficiencies the paper attributes to Flink for this
//! workload class:
//!
//! * **no state retention for ordering** — each sliding-window step
//!   re-sorts the key's buffer to find the oldest entries to evict
//!   (the paper's O(1) → O(log n) argument);
//! * **full re-aggregation** per tuple — no subtract-and-evict;
//! * **static key-hash routing** (modeled in `openmldb-online`'s window
//!   union baseline; this module is the per-key compute model);
//! * **TopN via sort** — ranking queries sort the full window per request.

use std::collections::HashMap;

use openmldb_types::{Result, Row, Value};

use openmldb_exec::WindowAggSet;
use openmldb_sql::plan::BoundAggregate;

/// Per-key sliding window with re-sort eviction and full recomputation.
pub struct FlinkLikeWindow {
    frame_ms: i64,
    specs: Vec<BoundAggregate>,
    /// Deliberately unsorted (Flink's state backend keeps no time order for
    /// this access pattern); sorted on every step.
    buffers: HashMap<String, Vec<(i64, Row)>>,
}

impl FlinkLikeWindow {
    pub fn new(frame_ms: i64, specs: Vec<BoundAggregate>) -> Self {
        FlinkLikeWindow {
            frame_ms,
            specs,
            buffers: HashMap::new(),
        }
    }

    /// Process one tuple; returns the aggregate outputs for its key.
    pub fn push(&mut self, key: &str, ts: i64, row: Row) -> Result<Vec<Value>> {
        let buffer = self.buffers.entry(key.to_string()).or_default();
        buffer.push((ts, row));
        // Re-sort to locate evictions (the missing state-retention cost).
        buffer.sort_by_key(|(t, _)| *t);
        let anchor = buffer.last().map(|(t, _)| *t).unwrap_or(ts);
        let cut = buffer.partition_point(|(t, _)| anchor - t > self.frame_ms);
        buffer.drain(..cut);
        // Full recomputation.
        let refs: Vec<&BoundAggregate> = self.specs.iter().collect();
        let mut set = WindowAggSet::new(&refs)?;
        for (_, r) in buffer.iter() {
            set.update(r.values())?;
        }
        Ok(set.outputs())
    }

    pub fn buffered(&self, key: &str) -> usize {
        self.buffers.get(key).map(Vec::len).unwrap_or(0)
    }
}

/// TopN ranking the Flink way (paper Figure 7's comparison): a *continuous*
/// streaming operator. Every ingested event triggers the full operator
/// pipeline — re-sort the key's buffer to evict expired events (the paper's
/// missing state-retention argument), then re-rank by score and materialize
/// the current TopN. Reads are cheap; the cost is eager per-event
/// recomputation, which is exactly where a lazily-computing,
/// pre-ranked-storage design wins.
pub struct FlinkLikeTopN {
    window_ms: i64,
    n: usize,
    /// Per-key window state as the state backend holds it: serialized bytes
    /// (Flink's RocksDB ListState (de)serializes the whole list per window
    /// firing — the dominant sliding-window cost this model reproduces).
    state: HashMap<String, Vec<u8>>,
    materialized: HashMap<String, Vec<(String, f64)>>,
    /// Events visited across all operator firings (the eager-compute tax).
    pub rows_visited: u64,
}

fn serialize_events(events: &[(i64, f64, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 24);
    for (ts, score, item) in events {
        out.extend_from_slice(&ts.to_le_bytes());
        out.extend_from_slice(&score.to_le_bytes());
        out.extend_from_slice(&(item.len() as u32).to_le_bytes());
        out.extend_from_slice(item.as_bytes());
    }
    out
}

fn deserialize_events(mut bytes: &[u8]) -> Vec<(i64, f64, String)> {
    let mut out = Vec::new();
    while bytes.len() >= 20 {
        let ts = i64::from_le_bytes(bytes[0..8].try_into().expect("len checked"));
        let score = f64::from_le_bytes(bytes[8..16].try_into().expect("len checked"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("len checked")) as usize;
        let item = String::from_utf8_lossy(&bytes[20..20 + len]).into_owned();
        out.push((ts, score, item));
        bytes = &bytes[20 + len..];
    }
    out
}

impl FlinkLikeTopN {
    pub fn new(window_ms: i64, n: usize) -> Self {
        FlinkLikeTopN {
            window_ms,
            n,
            state: HashMap::new(),
            materialized: HashMap::new(),
            rows_visited: 0,
        }
    }

    /// Ingest one event: the operator fires — deserialize the key's window
    /// state, evict via re-sort, re-rank, serialize the state back, update
    /// the materialized TopN.
    pub fn insert(&mut self, key: &str, ts: i64, item: &str, score: f64) {
        let mut events = self
            .state
            .get(key)
            .map(|bytes| deserialize_events(bytes))
            .unwrap_or_default();
        events.push((ts, score, item.to_string()));
        // Re-sort by time to find evictions (no retained ordering).
        events.sort_by_key(|(t, _, _)| *t);
        let anchor = events.last().map(|(t, _, _)| *t).unwrap_or(ts);
        let cut = events.partition_point(|(t, _, _)| anchor - t > self.window_ms);
        events.drain(..cut);
        self.rows_visited += events.len() as u64;
        // Re-rank the full window by score.
        let mut ranked: Vec<&(i64, f64, String)> = events.iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<(String, f64)> = ranked
            .into_iter()
            .take(self.n)
            .map(|(_, s, i)| (i.clone(), *s))
            .collect();
        self.materialized.insert(key.to_string(), top);
        self.state
            .insert(key.to_string(), serialize_events(&events));
    }

    /// Read the materialized TopN (cheap — all cost was paid on insert).
    pub fn query(&mut self, key: &str, _now_ts: i64, n: usize) -> Vec<(String, f64)> {
        let mut out = self.materialized.get(key).cloned().unwrap_or_default();
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_types::DataType;

    fn sum_spec() -> Vec<BoundAggregate> {
        vec![BoundAggregate {
            window_id: 0,
            func: lookup("sum").unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: DataType::Bigint,
        }]
    }

    #[test]
    fn window_semantics_match_reference() {
        let mut w = FlinkLikeWindow::new(100, sum_spec());
        assert_eq!(
            w.push("k", 0, Row::new(vec![Value::Bigint(1)])).unwrap(),
            vec![Value::Bigint(1)]
        );
        assert_eq!(
            w.push("k", 50, Row::new(vec![Value::Bigint(2)])).unwrap(),
            vec![Value::Bigint(3)]
        );
        assert_eq!(
            w.push("k", 151, Row::new(vec![Value::Bigint(4)])).unwrap(),
            vec![Value::Bigint(4)],
            "ts=0 and ts=50 evicted (151 - 50 > 100)"
        );
        assert_eq!(w.buffered("k"), 1);
    }

    #[test]
    fn keys_are_isolated() {
        let mut w = FlinkLikeWindow::new(1_000, sum_spec());
        w.push("a", 0, Row::new(vec![Value::Bigint(10)])).unwrap();
        let out = w.push("b", 0, Row::new(vec![Value::Bigint(1)])).unwrap();
        assert_eq!(out, vec![Value::Bigint(1)]);
    }

    #[test]
    fn topn_ranks_by_score_continuously() {
        let mut t = FlinkLikeTopN::new(1_000, 3);
        t.insert("u", 0, "a", 0.3);
        t.insert("u", 10, "b", 0.9);
        t.insert("u", 20, "c", 0.5);
        let top2 = t.query("u", 100, 2);
        assert_eq!(top2[0].0, "b");
        assert_eq!(top2[1].0, "c");
        // A much later event evicts the old window contents.
        t.insert("u", 5_000, "d", 0.1);
        let top = t.query("u", 5_000, 3);
        assert_eq!(top, vec![("d".to_string(), 0.1)]);
        assert!(t.rows_visited >= 4, "every insert fires the operator");
    }
}
