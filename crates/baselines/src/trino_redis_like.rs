//! Trino+Redis-style baseline (paper Fig 6 and Table 2).
//!
//! A SQL engine querying a remote in-memory store pays per-operation
//! round-trip and (de)serialization costs. The model here is mechanical,
//! not a sleep: every query crosses **two real thread hops** (coordinator →
//! worker → storage), rows travel as rendered strings (Redis's wire/value
//! format) and are re-parsed on the compute side — exactly the "frequent
//! RPC calls", "Java framework" string handling, and "window-state spread
//! over multiple operators" overheads the paper names.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use openmldb_exec::WindowAggSet;
use openmldb_sql::plan::BoundAggregate;
use openmldb_types::{DataType, Result, Row, Schema, Value};

use crate::redis_like::RedisLikeStore;

struct QueryReq {
    key: String,
    lower_ts: i64,
    upper_ts: i64,
    reply: Sender<Vec<(i64, Vec<String>)>>,
}

enum StorageMsg {
    Put { key: String, ts: i64, row: Row },
    Query(QueryReq),
    Stop,
}

/// The "cluster": a storage thread owning the Redis-like store and a worker
/// thread parsing wire strings back into typed values.
pub struct TrinoRedisLike {
    schema: Schema,
    storage_tx: Sender<StorageMsg>,
    storage: JoinHandle<()>,
    store_mem: Arc<Mutex<usize>>,
    /// Round trips performed (2 hops per query, 1 per put).
    pub rpcs: u64,
}

impl TrinoRedisLike {
    pub fn new(schema: Schema) -> Self {
        let (tx, rx) = unbounded::<StorageMsg>();
        let store_mem = Arc::new(Mutex::new(0usize));
        let mem = store_mem.clone();
        let storage = std::thread::spawn(move || {
            let mut store = RedisLikeStore::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    StorageMsg::Put { key, ts, row } => {
                        store.put(&key, ts, &row);
                        *mem.lock() = store.mem_used();
                    }
                    StorageMsg::Query(q) => {
                        let hits: Vec<(i64, Vec<String>)> = store
                            .range(&q.key, q.lower_ts, q.upper_ts)
                            .into_iter()
                            .map(|(ts, fields)| (ts, fields.to_vec()))
                            .collect();
                        let _ = q.reply.send(hits);
                    }
                    StorageMsg::Stop => return,
                }
            }
        });
        TrinoRedisLike {
            schema,
            storage_tx: tx,
            storage,
            store_mem,
            rpcs: 0,
        }
    }

    /// Write a row (one RPC to the storage tier).
    pub fn put(&mut self, key: &str, ts: i64, row: &Row) {
        self.rpcs += 1;
        let _ = self.storage_tx.send(StorageMsg::Put {
            key: key.to_string(),
            ts,
            row: row.clone(),
        });
    }

    /// Window query: coordinator → storage RPC fetches wire strings, the
    /// compute side parses them back into typed rows and aggregates.
    pub fn window_query(
        &mut self,
        key: &str,
        lower_ts: i64,
        upper_ts: i64,
        agg_refs: &[&BoundAggregate],
    ) -> Result<Vec<Value>> {
        self.rpcs += 2; // request + response hop
        let (reply_tx, reply_rx) = bounded(1);
        let _ = self.storage_tx.send(StorageMsg::Query(QueryReq {
            key: key.to_string(),
            lower_ts,
            upper_ts,
            reply: reply_tx,
        }));
        let wire = reply_rx.recv().unwrap_or_default();
        // Parse strings back into typed values (the Redis value-format tax).
        let mut set = WindowAggSet::new(agg_refs)?;
        for (_ts, fields) in wire {
            let row = parse_wire_row(&fields, &self.schema)?;
            set.update(row.values())?;
        }
        Ok(set.outputs())
    }

    /// Redis-reported memory usage (for Table 2).
    pub fn store_mem_used(&self) -> usize {
        *self.store_mem.lock()
    }

    /// Block until all queued puts have been applied.
    pub fn sync(&mut self) {
        let spec: Vec<&BoundAggregate> = Vec::new();
        let _ = self.window_query("\u{0}sync", 0, 0, &spec);
    }
}

impl Drop for TrinoRedisLike {
    fn drop(&mut self) {
        let _ = self.storage_tx.send(StorageMsg::Stop);
        // JoinHandle cannot be joined from Drop without ownership dance;
        // detach if already stopped.
        if self.storage.is_finished() {}
    }
}

fn parse_wire_row(fields: &[String], schema: &Schema) -> Result<Row> {
    let values = fields
        .iter()
        .zip(schema.columns())
        .map(|(f, col)| {
            if f.is_empty() {
                return Ok(Value::Null);
            }
            Ok(match col.data_type {
                DataType::Bool => Value::Bool(f == "true"),
                DataType::Int => Value::Int(f.parse().unwrap_or(0)),
                DataType::Bigint => Value::Bigint(f.parse().unwrap_or(0)),
                DataType::Float => Value::Float(f.parse().unwrap_or(0.0)),
                DataType::Double => Value::Double(f.parse().unwrap_or(0.0)),
                DataType::Timestamp => Value::Timestamp(f.parse().unwrap_or(0)),
                DataType::String => Value::string(f.as_str()),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Row::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;

    fn schema() -> Schema {
        Schema::from_pairs(&[("v", DataType::Bigint), ("ts", DataType::Timestamp)]).unwrap()
    }

    fn sum_spec() -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup("sum").unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: DataType::Bigint,
        }
    }

    #[test]
    fn query_roundtrips_through_storage_thread() {
        let mut t = TrinoRedisLike::new(schema());
        for ts in [10, 20, 30] {
            t.put(
                "k",
                ts,
                &Row::new(vec![Value::Bigint(ts), Value::Timestamp(ts)]),
            );
        }
        let spec = sum_spec();
        let out = t.window_query("k", 15, 35, &[&spec]).unwrap();
        assert_eq!(out[0], Value::Bigint(50));
        assert_eq!(t.rpcs, 3 + 2);
        assert!(t.store_mem_used() > 0);
    }

    #[test]
    fn nulls_survive_the_wire() {
        let mut t = TrinoRedisLike::new(schema());
        t.put("k", 5, &Row::new(vec![Value::Null, Value::Timestamp(5)]));
        let spec = sum_spec();
        let out = t.window_query("k", 0, 10, &[&spec]).unwrap();
        assert_eq!(out[0], Value::Null, "NULL field ignored by sum");
    }
}
