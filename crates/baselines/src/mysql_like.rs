//! MySQL(MEMORY-engine)-style baseline (paper Fig 6).
//!
//! Models the costs the paper attributes to MySQL for online features:
//!
//! * **hash-indexed key lookup without native time ordering** — the MEMORY
//!   engine's default hash index finds the key's rows but keeps no time
//!   order, so a window query scans the key's *entire* history, decodes
//!   every row to check its timestamp, and filesorts the survivors (the
//!   paper: "lack native time-ordering capabilities essential for real-time
//!   analytics");
//! * **interpreted execution with no compiled-plan reuse** — the benchmark
//!   harness re-parses the SQL text per request;
//! * **no incremental computation** — every request re-aggregates its
//!   window from raw rows;
//! * row format with per-field 8-byte slots (the `UnsafeRow`-like layout).

use std::collections::HashMap;

use openmldb_exec::WindowAggSet;
use openmldb_sql::plan::BoundAggregate;
use openmldb_types::{Result, Row, RowCodec, Schema, UnsafeRowCodec, Value};

/// Hash-indexed table: key → insertion-ordered encoded rows.
pub struct MySqlLikeTable {
    index: HashMap<String, Vec<Vec<u8>>>,
    codec: UnsafeRowCodec,
    ts_col: usize,
    /// Rows decoded across all queries (the missing-time-index tax).
    pub rows_decoded: u64,
}

impl MySqlLikeTable {
    /// `ts_col` is the timestamp column's position in `schema`.
    pub fn new(schema: Schema, ts_col: usize) -> Self {
        MySqlLikeTable {
            index: HashMap::new(),
            codec: UnsafeRowCodec::new(schema),
            ts_col,
            rows_decoded: 0,
        }
    }

    pub fn insert(&mut self, key: &str, _ts: i64, row: &Row) -> Result<()> {
        let buf = self.codec.encode(row)?;
        self.index.entry(key.to_string()).or_default().push(buf);
        Ok(())
    }

    /// Window query: hash lookup, full per-key scan with per-row decode to
    /// evaluate the time predicate, filesort by ts, re-aggregate.
    pub fn window_query(
        &mut self,
        key: &str,
        lower_ts: i64,
        upper_ts: i64,
        agg_refs: &[&BoundAggregate],
    ) -> Result<Vec<Value>> {
        let mut survivors: Vec<(i64, Row)> = Vec::new();
        if let Some(rows) = self.index.get(key) {
            for buf in rows {
                let row = self.codec.decode(buf)?;
                self.rows_decoded += 1;
                let ts = row.ts_at(self.ts_col);
                if (lower_ts..=upper_ts).contains(&ts) {
                    survivors.push((ts, row));
                }
            }
        }
        // Filesort: the hash index provides no ordering for ORDER BY ts.
        survivors.sort_by_key(|(ts, _)| *ts);
        let mut set = WindowAggSet::new(agg_refs)?;
        for (_, row) in &survivors {
            set.update(row.values())?;
        }
        Ok(set.outputs())
    }

    /// Latest row for `key`: full per-key scan tracking the max timestamp.
    pub fn latest(&mut self, key: &str) -> Result<Option<Row>> {
        let Some(rows) = self.index.get(key) else {
            return Ok(None);
        };
        let mut best: Option<(i64, Row)> = None;
        for buf in rows {
            let row = self.codec.decode(buf)?;
            self.rows_decoded += 1;
            let ts = row.ts_at(self.ts_col);
            if best.as_ref().map(|(t, _)| ts >= *t).unwrap_or(true) {
                best = Some((ts, row));
            }
        }
        Ok(best.map(|(_, r)| r))
    }

    pub fn len(&self) -> usize {
        self.index.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated memory: hash buckets + key strings + fat rows.
    pub fn mem_used(&self) -> usize {
        self.index
            .iter()
            .map(|(k, rows)| 64 + k.len() + rows.iter().map(|b| 32 + b.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("v", DataType::Bigint), ("ts", DataType::Timestamp)]).unwrap()
    }

    fn sum_spec() -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup("sum").unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: DataType::Bigint,
        }
    }

    fn row(v: i64, ts: i64) -> Row {
        Row::new(vec![Value::Bigint(v), Value::Timestamp(ts)])
    }

    #[test]
    fn window_query_aggregates_range() {
        let mut t = MySqlLikeTable::new(schema(), 1);
        for ts in [10, 20, 30, 40] {
            t.insert("k", ts, &row(ts, ts)).unwrap();
        }
        let spec = sum_spec();
        let out = t.window_query("k", 15, 35, &[&spec]).unwrap();
        assert_eq!(out[0], Value::Bigint(50));
        assert_eq!(
            t.rows_decoded, 4,
            "every row of the key decoded (no time index)"
        );
    }

    #[test]
    fn latest_scans_whole_key() {
        let mut t = MySqlLikeTable::new(schema(), 1);
        t.insert("k", 10, &row(1, 10)).unwrap();
        t.insert("k", 30, &row(3, 30)).unwrap();
        t.insert("k", 20, &row(2, 20)).unwrap();
        assert_eq!(t.latest("k").unwrap().unwrap()[0], Value::Bigint(3));
        assert!(t.latest("absent").unwrap().is_none());
        assert_eq!(t.rows_decoded, 3);
    }

    #[test]
    fn keys_are_isolated() {
        let mut t = MySqlLikeTable::new(schema(), 1);
        t.insert("a", 1, &row(5, 1)).unwrap();
        t.insert("b", 1, &row(7, 1)).unwrap();
        let spec = sum_spec();
        assert_eq!(
            t.window_query("a", 0, 10, &[&spec]).unwrap()[0],
            Value::Bigint(5)
        );
        assert_eq!(t.len(), 2);
        assert!(t.mem_used() > 0);
    }
}
