//! Spark-style batch engine baseline (paper Sections 2.2 and 9.2.2).
//!
//! Models the costs the paper attributes to Spark on feature workloads:
//!
//! * **serial window computation** — windows run one after another, no
//!   multi-window parallelism;
//! * **per-row window re-aggregation** — no whole-stage incremental sweep;
//! * **stage shuffles with serialization** — every window's shuffle
//!   round-trips rows through the 8-byte-slot `UnsafeRow` codec (the real
//!   tax Spark pays moving data between stages);
//! * **object-heavy rows** — the fat row encoding doubles as the memory
//!   accountant for OOM checks in the GLQ comparison.

use std::collections::HashMap;

use openmldb_exec::WindowAggSet;
use openmldb_sql::plan::{BoundAggregate, BoundWindow, CompiledQuery};
use openmldb_types::{Error, KeyValue, Result, Row, RowCodec, Schema, UnsafeRowCodec, Value};

/// Per-partition shuffle buffers: (order ts, serialized row, base-row index).
type ShuffleBuffers = HashMap<Vec<KeyValue>, Vec<(i64, Vec<u8>, usize)>>;

/// Execution statistics (shuffle volume is the observable cost).
#[derive(Debug, Default, Clone)]
pub struct SparkStats {
    pub shuffled_bytes: u64,
    pub shuffled_rows: u64,
    pub stages: u64,
}

/// Spark-like batch window executor over in-memory tables.
#[derive(Default)]
pub struct SparkLikeEngine {
    /// Memory budget for materialized stages; exceeded → OOM error
    /// (the paper's GLQ observation). 0 = unlimited.
    pub memory_budget_bytes: usize,
    pub stats: SparkStats,
}

impl SparkLikeEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute all windows of `query` serially; returns
    /// `results[window_id][row_idx]` like the OpenMLDB offline engine, so
    /// benchmarks compare identical outputs.
    pub fn compute_windows(
        &mut self,
        query: &CompiledQuery,
        base: &[Row],
        schema: &Schema,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        let by_window = query.aggregates_by_window();
        let mut results: Vec<Vec<Vec<Value>>> =
            (0..query.windows.len()).map(|_| Vec::new()).collect();
        for (wid, ids) in by_window.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let agg_refs: Vec<&BoundAggregate> =
                ids.iter().map(|&i| &query.aggregates[i]).collect();
            results[wid] = self.window_stage(&query.windows[wid], &agg_refs, base, schema)?;
        }
        Ok(results)
    }

    /// One window = one stage: shuffle (serialize + repartition by key),
    /// then per-row frame re-aggregation within each partition.
    fn window_stage(
        &mut self,
        window: &BoundWindow,
        agg_refs: &[&BoundAggregate],
        base: &[Row],
        schema: &Schema,
    ) -> Result<Vec<Vec<Value>>> {
        self.stats.stages += 1;
        let codec = UnsafeRowCodec::new(schema.clone());

        // Shuffle: serialize every row to its target partition buffer, then
        // deserialize on the "reduce" side. This is where Spark's bytes go.
        let mut partitions: ShuffleBuffers = HashMap::new();
        let mut stage_bytes = 0usize;
        for (i, row) in base.iter().enumerate() {
            let buf = codec.encode(row)?;
            stage_bytes += buf.len();
            self.stats.shuffled_bytes += buf.len() as u64;
            self.stats.shuffled_rows += 1;
            partitions
                .entry(row.key_for(&window.partition_cols))
                .or_default()
                .push((row.ts_at(window.order_col), buf, i));
        }
        if self.memory_budget_bytes > 0 && stage_bytes > self.memory_budget_bytes {
            return Err(Error::Storage(format!(
                "spark-like stage OOM: materialized {stage_bytes} bytes > budget {}",
                self.memory_budget_bytes
            )));
        }

        let mut results: Vec<Vec<Value>> = vec![Vec::new(); base.len()];
        for (_key, mut part) in partitions {
            part.sort_by_key(|(ts, _, _)| *ts);
            let rows: Vec<(i64, Row, usize)> = part
                .into_iter()
                .map(|(ts, buf, i)| Ok((ts, codec.decode(&buf)?, i)))
                .collect::<Result<Vec<_>>>()?;
            // Per-row frame recomputation (no incremental state).
            for (pos, (ts, _row, idx)) in rows.iter().enumerate() {
                let lo = match window.frame {
                    openmldb_sql::Frame::Unbounded => 0,
                    openmldb_sql::Frame::Rows { preceding } => {
                        pos.saturating_sub(preceding as usize)
                    }
                    openmldb_sql::Frame::RowsRange { preceding_ms } => {
                        rows.partition_point(|(t, _, _)| ts - t > preceding_ms)
                    }
                };
                let mut set = WindowAggSet::new(agg_refs)?;
                for (_, r, _) in &rows[lo..=pos] {
                    set.update(r.values())?;
                }
                results[*idx] = set.outputs();
            }
        }
        Ok(results)
    }

    /// GLQ-style whole-table aggregation: materialize the full table
    /// (with fat rows) and aggregate — errors with OOM when over budget.
    pub fn full_table_aggregate(
        &mut self,
        rows: &[Row],
        schema: &Schema,
        agg_refs: &[&BoundAggregate],
    ) -> Result<Vec<Value>> {
        self.stats.stages += 1;
        let codec = UnsafeRowCodec::new(schema.clone());
        let mut materialized = Vec::with_capacity(rows.len());
        let mut bytes = 0usize;
        for row in rows {
            let buf = codec.encode(row)?;
            bytes += buf.len();
            self.stats.shuffled_bytes += buf.len() as u64;
            if self.memory_budget_bytes > 0 && bytes > self.memory_budget_bytes {
                return Err(Error::Storage(format!(
                    "spark-like OOM materializing full table ({bytes} bytes)"
                )));
            }
            materialized.push(buf);
        }
        let mut set = WindowAggSet::new(agg_refs)?;
        for buf in &materialized {
            set.update(codec.decode(buf)?.values())?;
        }
        Ok(set.outputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_types::DataType;

    struct Cat(Schema);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            (name == "t").then(|| self.0.clone())
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Bigint((i % 4) as i64),
                    Value::Double((i % 9) as f64),
                    Value::Timestamp((i * 11) as i64),
                ])
            })
            .collect()
    }

    fn query() -> CompiledQuery {
        compile_select(
            &parse_select(
                "SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c FROM t WINDOW w AS \
                 (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 90 PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &Cat(schema()),
        )
        .unwrap()
    }

    #[test]
    fn matches_openmldb_offline_results() {
        let q = query();
        let data = rows(200);
        let mut spark = SparkLikeEngine::new();
        let spark_out = spark.compute_windows(&q, &data, &schema()).unwrap();
        let tables = openmldb_offline::Tables::new();
        let ids: Vec<usize> = (0..q.aggregates.len()).collect();
        let ours = openmldb_offline::sweep_window(
            &q,
            &q.windows[0],
            &tables,
            &data,
            &ids,
            openmldb_offline::WindowExecMode::Incremental,
        )
        .unwrap();
        for (a, b) in spark_out[0].iter().zip(&ours) {
            for (x, y) in a.iter().zip(b) {
                match (x, y) {
                    (Value::Double(p), Value::Double(q)) => {
                        assert!((p - q).abs() / p.abs().max(1.0) < 1e-9, "{p} vs {q}")
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
        assert!(spark.stats.shuffled_bytes > 0);
        assert_eq!(spark.stats.shuffled_rows, 200);
    }

    #[test]
    fn oom_when_over_budget() {
        let q = query();
        let data = rows(1_000);
        let mut spark = SparkLikeEngine {
            memory_budget_bytes: 1_000,
            ..Default::default()
        };
        let err = spark.compute_windows(&q, &data, &schema()).unwrap_err();
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn full_table_aggregate_works_in_budget() {
        let q = query();
        let data = rows(100);
        let refs: Vec<&BoundAggregate> = q.aggregates.iter().collect();
        let mut spark = SparkLikeEngine::new();
        let out = spark.full_table_aggregate(&data, &schema(), &refs).unwrap();
        assert_eq!(out[1], Value::Bigint(100));
    }
}
