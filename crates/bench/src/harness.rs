//! Shared benchmark harness: timing, percentile statistics, table printing,
//! and the scale knob.
//!
//! Every experiment binary prints the same row/series structure as the
//! paper's corresponding table or figure. Absolute numbers differ from the
//! paper (different hardware, simulated substrates); the *shape* — who wins
//! and by roughly what factor — is the reproduction target, recorded in
//! `EXPERIMENTS.md`.

use std::time::Instant;

/// Scale factor from `BENCH_SCALE` (default 1.0). The defaults finish in
/// seconds; crank it up to approach the paper's row counts.
pub fn scale() -> f64 {
    std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by `BENCH_SCALE`, with a floor.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(16)
}

/// Test helper: run `f` with `BENCH_SCALE` set to `s`, serialized across
/// threads (env vars are process-global).
pub fn with_scale<T>(s: f64, f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("BENCH_SCALE", s.to_string());
    let out = f();
    std::env::remove_var("BENCH_SCALE");
    out
}

/// Run `f` once per iteration; returns per-iteration latencies in
/// milliseconds.
pub fn time_each<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> Vec<f64> {
    let mut out = Vec::with_capacity(iters);
    for i in 0..iters {
        let start = Instant::now();
        let value = f(i);
        out.push(start.elapsed().as_secs_f64() * 1_000.0);
        std::hint::black_box(value);
    }
    out
}

/// Like [`time_each`] but stops early once `budget_ms` of measured work has
/// accumulated (slow configurations get fewer samples instead of stalling
/// the harness).
pub fn time_each_budget<T>(
    max_iters: usize,
    budget_ms: f64,
    mut f: impl FnMut(usize) -> T,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut spent = 0.0;
    for i in 0..max_iters {
        let start = Instant::now();
        let value = f(i);
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        std::hint::black_box(value);
        out.push(ms);
        spent += ms;
        if spent >= budget_ms && out.len() >= 5 {
            break;
        }
    }
    out
}

/// Wall-clock milliseconds for one call.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Summary statistics over a latency sample (milliseconds).
#[derive(Debug, Clone)]
pub struct LatencyStats {
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub qps: f64,
}

impl LatencyStats {
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "no samples");
        samples.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| {
            let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
            samples[idx]
        };
        let total: f64 = samples.iter().sum();
        LatencyStats {
            mean_ms: total / samples.len() as f64,
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            p999_ms: pct(0.999),
            qps: samples.len() as f64 / (total / 1_000.0),
        }
    }
}

/// Print a header + aligned rows (simple fixed-width table).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Approximate equality for nested aggregate results: Doubles may differ by
/// float-association noise between engines that sum in different orders;
/// everything else must match exactly.
pub fn results_close(
    a: &[Vec<Vec<openmldb_types::Value>>],
    b: &[Vec<Vec<openmldb_types::Value>>],
) -> bool {
    use openmldb_types::Value;
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(wa, wb)| {
        wa.len() == wb.len()
            && wa.iter().zip(wb).all(|(ra, rb)| {
                ra.len() == rb.len()
                    && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                        (Value::Double(p), Value::Double(q)) => {
                            (p - q).abs() / p.abs().max(q.abs()).max(1.0) < 1e-9
                        }
                        _ => x == y,
                    })
            })
    })
}

/// Format a float with 3 significant decimals.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_ordered() {
        let s = LatencyStats::from_samples((1..=1_000).map(|i| i as f64).collect());
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms && s.p99_ms <= s.p999_ms);
        assert!((s.p50_ms - 500.0).abs() <= 1.0);
        assert!((s.p99_ms - 990.0).abs() <= 1.0);
        assert!(s.qps > 0.0);
    }

    #[test]
    fn scaled_has_floor() {
        assert!(scaled(1) >= 16);
    }

    #[test]
    fn time_each_returns_iters_samples() {
        let samples = time_each(10, |i| i * 2);
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().all(|&ms| ms >= 0.0));
    }
}
