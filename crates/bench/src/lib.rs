//! # openmldb-bench
//!
//! The benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section 9). Run individual experiments via the binaries
//! (`cargo run --release -p openmldb-bench --bin fig06_online_microbench`)
//! or everything via `--bin run_all`. Scale row counts with `BENCH_SCALE`
//! (default 1.0 finishes in minutes; larger values approach paper scale).

pub mod alloc_counter;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod scenarios;
