//! Bench-harness metrics: gate tallies the experiments publish so an
//! `obs_report`/Prometheus scrape of a bench run shows how many anomalies
//! the tail-latency gates inspected.

use openmldb_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

/// Anomalous requests (timeout / failed / degraded / failed-over) observed
/// by the tailtrace experiment.
pub fn tailtrace_anomalies() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_bench_tailtrace_anomalies_total",
        "Anomalous requests observed by the tailtrace experiment",
    )
}

/// Anomalies whose post-mortem was found in the slow-query log.
pub fn tailtrace_matched() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_bench_tailtrace_postmortems_total",
        "Anomalies matched to a slow-query post-mortem by the tailtrace experiment",
    )
}
