fn main() {
    openmldb_bench::experiments::sweeps::run_window_size();
}
