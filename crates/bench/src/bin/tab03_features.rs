fn main() {
    openmldb_bench::experiments::tab03::run();
}
