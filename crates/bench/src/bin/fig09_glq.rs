fn main() {
    openmldb_bench::experiments::fig09::run();
}
