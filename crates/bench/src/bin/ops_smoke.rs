//! Ops-endpoint smoke: boot a database with the live ops plane on an
//! ephemeral port, serve a small sampled workload, then exercise every
//! HTTP route over a real socket — `/metrics`, `/report`, `/healthz`,
//! `/explain/<deployment>`, a 404 and a 405 — and exit non-zero on any
//! unexpected status or body. Reads `BENCH_SCALE` like the other bins.
//!
//! Under `obs-off` the ops plane is compiled out; the smoke degenerates to
//! checking that `start_ops` refuses cleanly.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use openmldb_bench::harness::scaled;
use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
use openmldb_core::OpsConfig;
use openmldb_online::sentinel;

fn get(addr: SocketAddr, request_line: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops endpoint");
    stream
        .write_all(format!("{request_line}\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let rows = scaled(2_000);
    let keys = 10usize;
    let db = Arc::new(micro_db(rows, keys, 0.0, 0));
    db.deploy(&format!(
        "DEPLOY f_ops AS {}",
        micro_sql(1, 0, 30_000, false)
    ))
    .expect("deploy");

    let plane = db.start_ops(OpsConfig {
        http_addr: Some("127.0.0.1:0".into()),
        sample_every: 4,
        tick_every: Duration::from_millis(25),
        audit_batch: 128,
    });
    if !openmldb_obs::enabled() {
        assert!(plane.is_err(), "obs-off must refuse to start the ops plane");
        println!("ops smoke OK (obs-off: start_ops refused as designed)");
        return;
    }
    let plane = plane.expect("start ops plane");
    let addr = plane.addr().expect("listener bound");

    let max_ts = rows as i64 * 10;
    for i in 0..64i64 {
        db.request_readonly("f_ops", &micro_request(i, i % keys as i64, max_ts))
            .expect("request");
    }
    // Settle every captured sample so /healthz reports audited verdicts.
    sentinel::set_sample_every(0);
    while db.sentinel_drain(sentinel::MAX_QUEUE).remaining > 0 {}

    let mut failures = 0u32;
    let mut check = |what: &str, ok: bool| {
        if ok {
            println!("  ok   {what}");
        } else {
            eprintln!("  FAIL {what}");
            failures += 1;
        }
    };

    let (status, body) = get(addr, "GET /metrics HTTP/1.1");
    check("/metrics is 200", status == 200);
    check(
        "/metrics carries engine counters",
        body.contains("openmldb_online_requests_total"),
    );
    check(
        "/metrics carries sentinel counters",
        body.contains("openmldb_online_sentinel_samples_total"),
    );

    let (status, body) = get(addr, "GET /report HTTP/1.1");
    check("/report is 200", status == 200);
    check("/report is JSON", body.trim_start().starts_with('{'));

    let (status, body) = get(addr, "GET /healthz HTTP/1.1");
    check("/healthz is 200", status == 200);
    check(
        "/healthz audited something",
        !body.contains("\"audits\":0,"),
    );
    check("/healthz verdict is ok", body.contains("\"ok\":true"));

    let (status, body) = get(addr, "GET /explain/f_ops HTTP/1.1");
    check("/explain/f_ops is 200", status == 200);
    check("/explain/f_ops has a body", !body.is_empty());

    let (status, _) = get(addr, "GET /no-such-route HTTP/1.1");
    check("unknown route is 404", status == 404);
    let (status, _) = get(addr, "POST /metrics HTTP/1.1");
    check("non-GET is 405", status == 405);

    drop(plane);
    check(
        "listener is down after shutdown",
        TcpStream::connect(addr).is_err(),
    );
    sentinel::reset();

    if failures > 0 {
        eprintln!("ops smoke FAILED: {failures} checks");
        std::process::exit(1);
    }
    println!("ops smoke OK ({addr})");
}
