fn main() {
    openmldb_bench::experiments::tab02::run();
}
