fn main() {
    openmldb_bench::experiments::fig10::run();
}
