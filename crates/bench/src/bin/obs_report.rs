//! Workload-attribution and slow-query report over a small request-mode
//! workload.
//!
//! Deploys three feature scripts with distinct window frames, interleaves
//! requests across them (deliberately skewed so the heavy-hitter sketch has
//! something to find), and renders:
//!
//! * a per-deployment attribution table (requests, rows scanned, staged
//!   time) sliced from the labeled metric series;
//! * an EXPLAIN ANALYZE-style cost profile per deployment;
//! * the SpaceSaving top-K hot deployments and hot partition keys;
//! * request-rate trends from the labeled-metric sample rings;
//! * the slow-query post-mortem log (threshold dropped to zero so it is
//!   populated deterministically);
//! * a consistency-audit section: the workload runs with sentinel sampling
//!   on, the queue is drained through the oracle replays before rendering,
//!   and the section reports samples/audits/divergences/queue lag plus a
//!   per-deployment divergence line (clean "no data" when a filtered
//!   deployment served nothing);
//! * a durability & recovery section (WAL / snapshot / recovery counters,
//!   fed by a small durable crash-and-recover roundtrip so the numbers are
//!   live; renders a clean "no data" line when nothing durable has run).
//!
//! Usage: `obs_report [--json] [--deployment <name>]` (reads `BENCH_SCALE`
//! like the other bins). `--deployment` narrows the attribution sections to
//! one deployment; an unknown or idle name renders a clean "no data"
//! section instead of erroring.

use openmldb_bench::harness::scaled;
use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
use openmldb_core::Database;
use openmldb_obs::{flight, ProfileStore, Registry, SpaceSaving};
use openmldb_online::sentinel;

/// A small durable write → crash → recover roundtrip so the durability
/// section reports live WAL/snapshot/recovery counters (the attribution
/// workload above is purely in-memory).
fn durable_roundtrip(rows: usize) {
    let dir = std::env::temp_dir().join(format!("openmldb-obs-report-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::recover(&dir).expect("durable open");
        db.execute("CREATE TABLE d (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
            .expect("create");
        for i in 0..rows as i64 {
            db.execute(&format!(
                "INSERT INTO d VALUES ({}, {}.5, {})",
                i % 8,
                i,
                1_000 + i * 3
            ))
            .expect("insert");
            if i == rows as i64 / 2 {
                db.snapshot_now().expect("snapshot");
            }
        }
        db.sync_durable().expect("sync");
    }
    let _ = Database::recover(&dir).expect("recover");
    let _ = std::fs::remove_dir_all(&dir);
}

fn print_durability_section() {
    let reg = Registry::global();
    let counter = |name: &str| reg.counter(name, "").value();
    let recoveries = counter("openmldb_core_recoveries_total");
    let appends = counter("openmldb_storage_wal_appends_total");
    if recoveries == 0 && appends == 0 {
        println!("  (no data: no durable database has run in this process)");
        return;
    }
    let hist = reg
        .histogram("openmldb_core_recovery_duration_ms", "")
        .snapshot();
    println!(
        "  recoveries              {recoveries} (rows replayed {})",
        counter("openmldb_core_recovered_rows_total")
    );
    println!(
        "  recovery p50/p99 ms     {} / {}",
        hist.percentile(0.50),
        hist.percentile(0.99)
    );
    println!(
        "  wal appends/fsyncs      {appends} / {}",
        counter("openmldb_storage_wal_fsyncs_total")
    );
    println!(
        "  wal bytes               {}",
        counter("openmldb_storage_wal_bytes_total")
    );
    println!(
        "  wal torn tails          {}",
        counter("openmldb_storage_wal_torn_tails_total")
    );
    println!(
        "  snapshots written       {} (bytes {}, invalid {})",
        counter("openmldb_storage_snapshots_total"),
        counter("openmldb_storage_snapshot_bytes_total"),
        counter("openmldb_storage_snapshots_invalid_total")
    );
}

/// Consistency-audit section: cumulative sentinel counters plus a
/// per-deployment divergence line (sliced from the labeled series, same
/// no-data contract as the attribution table).
fn print_sentinel_section(deployments: &[String]) {
    let s = sentinel::stats();
    if s.samples == 0 {
        println!("  (no data: sentinel sampling has not captured any serves)");
        return;
    }
    println!("  samples / audits        {} / {}", s.samples, s.audits);
    println!("  divergences             {}", s.divergences);
    println!(
        "  stale skips / dropped   {} / {}",
        s.stale_skips, s.dropped
    );
    println!("  replay errors           {}", s.errors);
    println!("  queue lag               {}", s.queue);
    let reg = Registry::global();
    let req_series = reg.labeled_series("openmldb_online_deployment_requests_total");
    let div_series = reg.labeled_series("openmldb_online_deployment_divergences_total");
    let per_dep = |series: &[(String, u64)], dep: &str| -> u64 {
        series
            .iter()
            .find(|(l, _)| l == dep)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    for dep in deployments {
        if per_dep(&req_series, dep) == 0 {
            println!("  {dep:<12} (no data: deployment has served no requests)");
        } else {
            println!("  {dep:<12} divergences {}", per_dep(&div_series, dep));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--deployment")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Threshold 0: every request (even a fast clean one) is "slow", so the
    // post-mortem report below is populated deterministically.
    flight::set_slow_query_threshold_ns(0);

    let rows = scaled(2_000);
    let keys = 10usize;
    let db = micro_db(rows, keys, 0.0, 1);
    // Three deployments with distinct frames: a short window, a long
    // window, and a multi-window script — distinct per-request costs make
    // the attribution table non-degenerate.
    for (name, sql) in [
        ("f_short", micro_sql(1, 1, 10_000, false)),
        ("f_long", micro_sql(1, 0, 60_000, false)),
        ("f_multi", micro_sql(2, 1, 30_000, false)),
    ] {
        db.deploy(&format!("DEPLOY {name} AS {sql}"))
            .expect("deploy");
    }

    // Sentinel sampling on for the whole workload: the consistency-audit
    // section below reports live numbers, not a no-data placeholder.
    sentinel::set_sample_every(4);

    let max_ts = rows as i64 * 10;
    // Skewed interleave: f_short serves 4x the requests of f_long, and
    // partition key 0 is hit far more than the rest — the top-K sections
    // should surface both.
    for i in 0..48i64 {
        let dep = match i % 6 {
            0..=3 => "f_short",
            4 => "f_long",
            _ => "f_multi",
        };
        let key = if i % 3 == 0 { 0 } else { i % keys as i64 };
        db.request_readonly(dep, &micro_request(i, key, max_ts))
            .expect("request");
        // Sample the labeled series every few requests so the trend rings
        // hold a visible ramp by the end of the run.
        if i % 8 == 7 {
            Registry::global().tick();
        }
    }

    // Audit everything captured above before rendering, so the section
    // reports settled verdicts rather than queue depth.
    sentinel::set_sample_every(0);
    while db.sentinel_drain(sentinel::MAX_QUEUE).remaining > 0 {}

    let deployments: Vec<String> = match &filter {
        Some(name) => vec![name.clone()],
        None => db.deployment_names(),
    };

    if !json {
        println!("=== workload attribution ===");
        let reg = Registry::global();
        let req_series = reg.labeled_series("openmldb_online_deployment_requests_total");
        let per_dep = |series: &[(String, u64)], dep: &str| -> u64 {
            series
                .iter()
                .find(|(l, _)| l == dep)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        let rows_series = reg.labeled_series("openmldb_online_deployment_scan_rows");
        let stage_series = reg.labeled_series("openmldb_online_deployment_stage_time_ns");
        println!(
            "{:<12} {:>10} {:>12} {:>14}",
            "deployment", "requests", "rows", "staged_us"
        );
        for dep in &deployments {
            let requests = per_dep(&req_series, dep);
            if requests == 0 {
                println!("{dep:<12} (no data: deployment has served no requests)");
                continue;
            }
            println!(
                "{:<12} {:>10} {:>12} {:>14}",
                dep,
                requests,
                per_dep(&rows_series, dep),
                per_dep(&stage_series, dep) / 1_000,
            );
        }
        println!();

        println!("=== cost profiles ===");
        for dep in &deployments {
            print!("{}", ProfileStore::global().render_explain_analyze(dep));
            println!();
        }

        println!("=== hot deployments (SpaceSaving top-5) ===");
        for e in SpaceSaving::hot_deployments().top(5) {
            println!("  {:<24} count~{} (err<={})", e.key, e.count, e.err);
        }
        println!();
        println!("=== hot partition keys (SpaceSaving top-5) ===");
        for e in SpaceSaving::hot_keys().top(5) {
            println!("  {:<24} count~{} (err<={})", e.key, e.count, e.err);
        }
        println!();

        println!("=== request trend (per snapshot tick) ===");
        for dep in &deployments {
            let trend = reg.trend_for("openmldb_online_deployment_requests_total", dep);
            if trend.is_empty() {
                println!("  {dep:<12} (no data: no samples ticked)");
            } else {
                let pts: Vec<String> = trend.iter().map(|v| v.to_string()).collect();
                println!("  {:<12} {}", dep, pts.join(" "));
            }
        }
        println!();
        println!("=== consistency audit ===");
        print_sentinel_section(&deployments);
        println!();
        println!("=== durability & recovery ===");
        durable_roundtrip(scaled(200));
        print_durability_section();
        println!();
        println!("=== slow-query post-mortems ===");
    }

    print!("{}", Registry::global().render_slow_query_report(json));
}
