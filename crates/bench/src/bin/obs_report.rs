//! Workload-attribution and slow-query report over a small request-mode
//! workload.
//!
//! Deploys three feature scripts with distinct window frames, interleaves
//! requests across them (deliberately skewed so the heavy-hitter sketch has
//! something to find), and renders:
//!
//! * a per-deployment attribution table (requests, rows scanned, staged
//!   time) sliced from the labeled metric series;
//! * an EXPLAIN ANALYZE-style cost profile per deployment;
//! * the SpaceSaving top-K hot deployments and hot partition keys;
//! * request-rate trends from the labeled-metric sample rings;
//! * the slow-query post-mortem log (threshold dropped to zero so it is
//!   populated deterministically).
//!
//! Usage: `obs_report [--json] [--deployment <name>]` (reads `BENCH_SCALE`
//! like the other bins). `--deployment` narrows the attribution sections to
//! one deployment; an unknown or idle name renders a clean "no data"
//! section instead of erroring.

use openmldb_bench::harness::scaled;
use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
use openmldb_obs::{flight, ProfileStore, Registry, SpaceSaving};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--deployment")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Threshold 0: every request (even a fast clean one) is "slow", so the
    // post-mortem report below is populated deterministically.
    flight::set_slow_query_threshold_ns(0);

    let rows = scaled(2_000);
    let keys = 10usize;
    let db = micro_db(rows, keys, 0.0, 1);
    // Three deployments with distinct frames: a short window, a long
    // window, and a multi-window script — distinct per-request costs make
    // the attribution table non-degenerate.
    for (name, sql) in [
        ("f_short", micro_sql(1, 1, 10_000, false)),
        ("f_long", micro_sql(1, 0, 60_000, false)),
        ("f_multi", micro_sql(2, 1, 30_000, false)),
    ] {
        db.deploy(&format!("DEPLOY {name} AS {sql}"))
            .expect("deploy");
    }

    let max_ts = rows as i64 * 10;
    // Skewed interleave: f_short serves 4x the requests of f_long, and
    // partition key 0 is hit far more than the rest — the top-K sections
    // should surface both.
    for i in 0..48i64 {
        let dep = match i % 6 {
            0..=3 => "f_short",
            4 => "f_long",
            _ => "f_multi",
        };
        let key = if i % 3 == 0 { 0 } else { i % keys as i64 };
        db.request_readonly(dep, &micro_request(i, key, max_ts))
            .expect("request");
        // Sample the labeled series every few requests so the trend rings
        // hold a visible ramp by the end of the run.
        if i % 8 == 7 {
            Registry::global().tick();
        }
    }

    let deployments: Vec<String> = match &filter {
        Some(name) => vec![name.clone()],
        None => db.deployment_names(),
    };

    if !json {
        println!("=== workload attribution ===");
        let reg = Registry::global();
        let req_series = reg.labeled_series("openmldb_online_deployment_requests_total");
        let per_dep = |series: &[(String, u64)], dep: &str| -> u64 {
            series
                .iter()
                .find(|(l, _)| l == dep)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        let rows_series = reg.labeled_series("openmldb_online_deployment_scan_rows");
        let stage_series = reg.labeled_series("openmldb_online_deployment_stage_time_ns");
        println!(
            "{:<12} {:>10} {:>12} {:>14}",
            "deployment", "requests", "rows", "staged_us"
        );
        for dep in &deployments {
            let requests = per_dep(&req_series, dep);
            if requests == 0 {
                println!("{dep:<12} (no data: deployment has served no requests)");
                continue;
            }
            println!(
                "{:<12} {:>10} {:>12} {:>14}",
                dep,
                requests,
                per_dep(&rows_series, dep),
                per_dep(&stage_series, dep) / 1_000,
            );
        }
        println!();

        println!("=== cost profiles ===");
        for dep in &deployments {
            print!("{}", ProfileStore::global().render_explain_analyze(dep));
            println!();
        }

        println!("=== hot deployments (SpaceSaving top-5) ===");
        for e in SpaceSaving::hot_deployments().top(5) {
            println!("  {:<24} count~{} (err<={})", e.key, e.count, e.err);
        }
        println!();
        println!("=== hot partition keys (SpaceSaving top-5) ===");
        for e in SpaceSaving::hot_keys().top(5) {
            println!("  {:<24} count~{} (err<={})", e.key, e.count, e.err);
        }
        println!();

        println!("=== request trend (per snapshot tick) ===");
        for dep in &deployments {
            let trend = reg.trend_for("openmldb_online_deployment_requests_total", dep);
            if trend.is_empty() {
                println!("  {dep:<12} (no data: no samples ticked)");
            } else {
                let pts: Vec<String> = trend.iter().map(|v| v.to_string()).collect();
                println!("  {:<12} {}", dep, pts.join(" "));
            }
        }
        println!();
        println!("=== slow-query post-mortems ===");
    }

    print!("{}", Registry::global().render_slow_query_report(json));
}
