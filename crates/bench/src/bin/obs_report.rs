//! Post-mortem slow-query report over a small request-mode workload.
//!
//! Drops the slow-query threshold to zero so every request dumps its flight
//! ring, runs a scaled-down fig06-style loop, and renders the slow-query
//! log — the human-readable view of the tail-latency attribution pipeline.
//!
//! Usage: `obs_report [--json]` (reads `BENCH_SCALE` like the other bins).

use openmldb_bench::harness::scaled;
use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
use openmldb_obs::{flight, Registry};

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // Threshold 0: every request (even a fast clean one) is "slow", so the
    // report below is populated deterministically.
    flight::set_slow_query_threshold_ns(0);

    let rows = scaled(2_000);
    let keys = 10usize;
    let db = micro_db(rows, keys, 0.0, 1);
    db.deploy(&format!(
        "DEPLOY f_report AS {}",
        micro_sql(1, 1, 60_000, false)
    ))
    .expect("deploy");
    let max_ts = rows as i64 * 10;
    for i in 0..32i64 {
        db.request_readonly("f_report", &micro_request(i, i % keys as i64, max_ts))
            .expect("request");
    }

    print!("{}", Registry::global().render_slow_query_report(json));
}
