fn main() {
    openmldb_bench::experiments::fig07::run();
}
