fn main() {
    openmldb_bench::experiments::fig06::run();
}
