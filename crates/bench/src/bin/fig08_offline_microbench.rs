fn main() {
    openmldb_bench::experiments::fig08::run();
}
