fn main() {
    openmldb_bench::experiments::fig14::run();
}
