fn main() {
    openmldb_bench::experiments::sweeps::run_join_count();
}
