fn main() {
    openmldb_bench::experiments::fig_union::run();
}
