fn main() {
    let result = openmldb_bench::experiments::compiled_hotpath::run();
    if result.gate_failed {
        eprintln!(
            "compiled hotpath gate failed: p50 speedup {:.2}x (need >= {:.2}), stage allocs {}",
            result.p50_speedup, result.min_p50_speedup, result.compiled_stage_allocs_after_warm
        );
        std::process::exit(1);
    }
}
