fn main() {
    let result = openmldb_bench::experiments::hotpath::run();
    if result.gate_failed {
        eprintln!(
            "hotpath gate failed: alloc reduction {:.2}x (need >= {:.1}), stage allocs {}",
            result.alloc_reduction,
            openmldb_bench::experiments::hotpath::MIN_ALLOC_REDUCTION,
            result.stage_allocs_after_warm
        );
        std::process::exit(1);
    }
}
