fn main() {
    openmldb_bench::experiments::fig12::run();
}
