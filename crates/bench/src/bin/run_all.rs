//! Run every experiment of the evaluation section in sequence.
//! `BENCH_SCALE` scales row counts (default 1.0).

use openmldb_bench::experiments as e;

fn main() {
    println!(
        "OpenMLDB reproduction — full evaluation (BENCH_SCALE={})",
        openmldb_bench::harness::scale()
    );
    e::tab_rowsize::run();
    e::fig06::run();
    e::fig07::run();
    e::tab02::run();
    e::fig08::run();
    e::fig09::run();
    e::fig10::run();
    e::fig11::run();
    e::fig_union::run();
    e::fig12::run();
    e::fig13::run();
    e::fig14::run();
    e::sweeps::run_window_count();
    e::sweeps::run_window_size();
    e::sweeps::run_join_count();
    e::tab03::run();
    e::backend::run();
    e::ablations::run_bucket_granularity();
    e::ablations::run_rebalance_period();
    let hot = e::hotpath::run();
    if hot.gate_failed {
        eprintln!(
            "hotpath gate failed: alloc reduction {:.2}x (need >= {:.1}), stage allocs {}",
            hot.alloc_reduction,
            e::hotpath::MIN_ALLOC_REDUCTION,
            hot.stage_allocs_after_warm
        );
        std::process::exit(1);
    }
    let compiled = e::compiled_hotpath::run();
    if compiled.gate_failed {
        eprintln!(
            "compiled hotpath gate failed: p50 speedup {:.2}x (need >= {:.2}), stage allocs {}",
            compiled.p50_speedup,
            compiled.min_p50_speedup,
            compiled.compiled_stage_allocs_after_warm
        );
        std::process::exit(1);
    }
    let obs = e::obs_snapshot::run();
    if obs.diverged {
        eprintln!("obs snapshot diverged from harness measurements beyond tolerance");
        std::process::exit(1);
    }
    let chaos = e::chaos_serving::run();
    if chaos.lost > 0 || chaos.p99_exceeded {
        eprintln!(
            "chaos serving violated the resilience contract (lost={}, p99_exceeded={})",
            chaos.lost, chaos.p99_exceeded
        );
        std::process::exit(1);
    }
    let tail = e::tailtrace::run();
    if tail.gate_failed {
        eprintln!(
            "tail-latency attribution gate failed: {}/{} anomalies matched to a \
             post-mortem, {} stage-sum mismatches",
            tail.matched, tail.anomalies, tail.sum_mismatches
        );
        std::process::exit(1);
    }
    let profile = e::workload_profile::run();
    if profile.gate_failed {
        eprintln!(
            "workload attribution gate failed: per-deployment totals diverge from \
             globals beyond {:.0}% (requests {:.4}, rows {:.4}, stage time {:.4})",
            e::workload_profile::TOLERANCE * 100.0,
            profile.divergence[0],
            profile.divergence[1],
            profile.divergence[2]
        );
        std::process::exit(1);
    }
    let recovery = e::recovery::run();
    if recovery.gate_failed {
        eprintln!(
            "recovery gate failed: {} violations across {} seeded crash/restart cycles \
             (lost, duplicated, or corrupted rows after recovery)",
            recovery.violations, recovery.cycles
        );
        std::process::exit(1);
    }
    let audit = e::audit_sentinel::run();
    if audit.gate_failed {
        eprintln!(
            "audit sentinel gate failed: p50 overhead {:.2}% (max {:.2}%), audited {}, \
             divergences {}, chaos caught {} attributed {}",
            audit.overhead * 100.0,
            audit.max_overhead * 100.0,
            audit.audited,
            audit.divergences,
            audit.chaos_divergences,
            audit.chaos_attributed
        );
        std::process::exit(1);
    }
    println!("\nAll experiments complete.");
}
