fn main() {
    openmldb_bench::experiments::fig11::run();
}
