fn main() {
    openmldb_bench::experiments::fig13::run();
}
