fn main() {
    openmldb_bench::experiments::tab_rowsize::run();
}
