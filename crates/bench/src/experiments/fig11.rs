//! **Figure 11** — Long-window optimization via `DEPLOY ... OPTIONS
//! (long_windows="w1:1d")`.
//!
//! Paper result on 860K tuples: request latency drops ~45× (300 ms → 6 ms)
//! with a slightly higher data-loading overhead.

use openmldb_core::Database;
use openmldb_workload::{micro_rows, MicroConfig};

use crate::harness::{fmt, print_table, scale, time_each, time_once, LatencyStats};
use crate::scenarios::micro_request;

pub struct LongWindowResult {
    pub tuples: usize,
    pub plain_load_ms: f64,
    pub preagg_load_ms: f64,
    pub plain_request_ms: f64,
    pub preagg_request_ms: f64,
}

const DAY_MS: i64 = 86_400_000;

pub fn run() -> LongWindowResult {
    // Paper uses 860K tuples; default scale keeps it snappy.
    let tuples = ((860_000.0 * scale()) as usize).max(20_000);
    // Spread tuples over ~100 days for one hot key.
    let step = (100 * DAY_MS) / tuples as i64;
    let data = micro_rows(&MicroConfig {
        rows: tuples,
        distinct_keys: 1,
        ts_step_ms: step.max(1),
        ..Default::default()
    });
    let max_ts = data.last().map(|r| r.ts_at(5)).unwrap_or(0);
    let script =
        "SELECT k, sum(v) OVER w1 AS s, count(v) OVER w1 AS c, avg(v) OVER w1 AS a FROM t1 \
         WINDOW w1 AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 100d PRECEDING AND CURRENT ROW)"
            .to_string();

    // Plain deployment: deploy first, then load (no aggregator maintenance).
    let plain_db = Database::new();
    plain_db
        .execute(
            "CREATE TABLE t1 (id BIGINT, k BIGINT, v DOUBLE, category STRING, quantity INT, \
             ts TIMESTAMP, INDEX(KEY=k, TS=ts))",
        )
        .unwrap();
    plain_db.deploy(&format!("DEPLOY lw AS {script}")).unwrap();
    let (_, plain_load_ms) = time_once(|| {
        for row in &data {
            plain_db.insert_row("t1", row).unwrap();
        }
    });

    // Pre-aggregated deployment: every insert also maintains daily buckets
    // through the binlog (the loading overhead the paper mentions).
    let fast_db = Database::new();
    fast_db
        .execute(
            "CREATE TABLE t1 (id BIGINT, k BIGINT, v DOUBLE, category STRING, quantity INT, \
             ts TIMESTAMP, INDEX(KEY=k, TS=ts))",
        )
        .unwrap();
    fast_db
        .deploy(&format!(
            "DEPLOY lw OPTIONS(long_windows=\"w1:1d\") AS {script}"
        ))
        .unwrap();
    let (_, preagg_load_ms) = time_once(|| {
        for row in &data {
            fast_db.insert_row("t1", row).unwrap();
        }
        // Loading isn't done until the async aggregator updates land.
        use openmldb_online::TableProvider;
        fast_db.table("t1").unwrap().replicator().flush();
    });

    let requests = (100.0 * scale().max(0.2)) as usize;
    let plain_stats = LatencyStats::from_samples(time_each(requests, |i| {
        plain_db
            .request_readonly("lw", &micro_request(i as i64, 0, max_ts))
            .unwrap()
    }));
    let fast_stats = LatencyStats::from_samples(time_each(requests, |i| {
        fast_db
            .request_readonly("lw", &micro_request(i as i64, 0, max_ts))
            .unwrap()
    }));
    // Identical features.
    let a = plain_db
        .request_readonly("lw", &micro_request(0, 0, max_ts))
        .unwrap();
    let b = fast_db
        .request_readonly("lw", &micro_request(0, 0, max_ts))
        .unwrap();
    for (x, y) in a.values().iter().zip(b.values()) {
        match (x, y) {
            (openmldb_types::Value::Double(p), openmldb_types::Value::Double(q)) => {
                assert!((p - q).abs() / p.abs().max(1.0) < 1e-9)
            }
            _ => assert_eq!(x, y),
        }
    }

    let result = LongWindowResult {
        tuples,
        plain_load_ms,
        preagg_load_ms,
        plain_request_ms: plain_stats.mean_ms,
        preagg_request_ms: fast_stats.mean_ms,
    };
    print_table(
        &format!("Fig 11: long-window optimization ({tuples} tuples, 100d window)"),
        &["deployment", "load ms", "request ms", "speedup"],
        &[
            vec![
                "plain".into(),
                fmt(result.plain_load_ms),
                fmt(result.plain_request_ms),
                "1.0x".into(),
            ],
            vec![
                "long_windows=w1:1d".into(),
                fmt(result.preagg_load_ms),
                fmt(result.preagg_request_ms),
                format!("{:.1}x", result.plain_request_ms / result.preagg_request_ms),
            ],
        ],
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn long_window_option_accelerates_requests() {
        let r = crate::harness::with_scale(0.05, super::run);
        assert!(
            r.preagg_request_ms < r.plain_request_ms,
            "preagg {:.3}ms vs plain {:.3}ms",
            r.preagg_request_ms,
            r.plain_request_ms
        );
    }
}
