//! One module per paper table/figure; each exposes `run()` printing the
//! paper-style rows and returning structured results (asserted in tests).

pub mod ablations;
pub mod audit_sentinel;
pub mod backend;
pub mod chaos_serving;
pub mod compiled_hotpath;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig_union;
pub mod hotpath;
pub mod obs_snapshot;
pub mod recovery;
pub mod sweeps;
pub mod tab02;
pub mod tab03;
pub mod tab_rowsize;
pub mod tailtrace;
pub mod workload_profile;
