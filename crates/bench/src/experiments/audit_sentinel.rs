//! **Audit sentinel** — cost and efficacy of the consistency sentinel.
//!
//! Runs the fig06-scale request loop (one window + one LAST JOIN) twice,
//! interleaved: sampling off versus sampling 1-in-[`SAMPLE_EVERY`], and
//! gates on the p50 regression of the sampled configuration — the sentinel
//! must be effectively free on the warm path. Afterwards the queued
//! samples are drained through both oracle replays and the run asserts a
//! fully clean audit: every sample replayed, **zero divergences**.
//!
//! When the `chaos` feature is compiled in, a second phase installs a
//! `compiled_kernel` fault (the specialized bytecode silently perturbs
//! aggregate outputs) and asserts the sentinel *catches* it: at least one
//! confirmed divergence, attributed to the right deployment in the labeled
//! counter and the divergence log, surfaced in `/healthz` and as a
//! `consistency_divergence` flight-recorder post-mortem.
//!
//! The snapshot is written to `target/BENCH_audit.json` (override with
//! `BENCH_AUDIT_JSON`).

use std::fmt::Write as _;

use openmldb_chaos::{InjectionPoint, Plan};
use openmldb_obs::Registry;
use openmldb_online::sentinel;

use crate::harness::{fmt, print_table, scale, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Maximum allowed p50 regression with sampling on, at full (fig06) scale.
pub const MAX_P50_OVERHEAD: f64 = 0.01;

/// Reduced-scale bar: microsecond-class requests make a 1 % delta
/// unmeasurable, so smoke runs gate on "no gross regression" instead.
pub const MAX_P50_OVERHEAD_REDUCED: f64 = 0.25;

/// Production-shaped sampling rate used for the overhead measurement.
pub const SAMPLE_EVERY: u32 = 64;

const FRAME_MS: i64 = 60_000;
const TRIALS: usize = 5;

#[derive(Debug, Clone)]
pub struct AuditSentinelResult {
    pub requests: usize,
    /// Best-of-trials p50 with sampling off / on.
    pub off_p50_ms: f64,
    pub on_p50_ms: f64,
    /// `(on - off) / off`, clamped at 0 (faster-with-sampling is noise).
    pub overhead: f64,
    pub max_overhead: f64,
    /// Clean-phase audit outcome.
    pub audited: u64,
    pub divergences: u64,
    pub errors: u64,
    /// Chaos phase (zeros when the feature is compiled out).
    pub chaos_enabled: bool,
    pub chaos_divergences: u64,
    pub chaos_attributed: bool,
    pub gate_failed: bool,
    pub json: String,
}

pub fn run() -> AuditSentinelResult {
    let rows = scaled(20_000);
    let keys = 20usize;
    let requests = scaled(2_000);

    let db = micro_db(rows, keys, 0.0, 1);
    let sql = micro_sql(1, 1, FRAME_MS, false);
    db.deploy(&format!("DEPLOY audit_f AS {sql}")).unwrap();
    let max_ts = rows as i64 * 10;
    let request_at = |i: usize| {
        micro_request(
            1_000_000 + i as i64,
            (i % keys) as i64,
            max_ts + (i % 100) as i64,
        )
    };

    sentinel::set_sample_every(0);
    sentinel::reset();

    // Warm-up fills scratch pools and lazily registers every metric.
    for i in 0..64 {
        db.request_readonly("audit_f", &request_at(i)).unwrap();
    }

    // Interleaved off/on trials; best-of-trials p50 per configuration is
    // robust against scheduler noise at micro scales.
    let mut off_p50 = f64::MAX;
    let mut on_p50 = f64::MAX;
    for _ in 0..TRIALS {
        sentinel::set_sample_every(0);
        let off = LatencyStats::from_samples(time_each(requests, |i| {
            db.request_readonly("audit_f", &request_at(i)).unwrap()
        }));
        off_p50 = off_p50.min(off.p50_ms);
        sentinel::set_sample_every(SAMPLE_EVERY);
        let on = LatencyStats::from_samples(time_each(requests, |i| {
            db.request_readonly("audit_f", &request_at(i)).unwrap()
        }));
        on_p50 = on_p50.min(on.p50_ms);
    }
    sentinel::set_sample_every(0);
    let overhead = ((on_p50 - off_p50) / off_p50.max(1e-9)).max(0.0);
    let max_overhead = if scale() >= 1.0 {
        MAX_P50_OVERHEAD
    } else {
        MAX_P50_OVERHEAD_REDUCED
    };

    // Clean audit: every queued sample replays through both oracles with
    // zero divergences. Loop until the queue is dry (bounded: nothing
    // enqueues with sampling off).
    let mut audited = 0u64;
    let mut divergences = 0u64;
    let mut errors = 0u64;
    loop {
        let s = db.sentinel_drain(sentinel::MAX_QUEUE);
        audited += s.audited;
        divergences += s.divergences;
        errors += s.errors;
        if s.remaining == 0 {
            break;
        }
    }

    // Chaos phase: corrupt the compiled kernel and require detection +
    // attribution. Runtime no-op unless the `chaos` feature is built in.
    let chaos_enabled = openmldb_chaos::enabled();
    let mut chaos_divergences = 0u64;
    let mut chaos_attributed = true;
    if chaos_enabled && openmldb_obs::enabled() {
        let labeled_before = deployment_divergences("audit_f");
        sentinel::set_sample_every(1);
        openmldb_chaos::install(Plan::new(0xA11CE).kill_rate(InjectionPoint::CompiledKernel, 1.0));
        for i in 0..64 {
            db.request_readonly("audit_f", &request_at(i)).unwrap();
        }
        openmldb_chaos::reset();
        sentinel::set_sample_every(0);
        loop {
            let s = db.sentinel_drain(sentinel::MAX_QUEUE);
            chaos_divergences += s.divergences;
            if s.remaining == 0 {
                break;
            }
        }
        chaos_attributed = deployment_divergences("audit_f") > labeled_before
            && openmldb_obs::audit::divergences()
                .iter()
                .any(|d| d.deployment == "audit_f")
            && db.healthz_json().contains("\"ok\":false")
            && Registry::global()
                .slow_queries()
                .iter()
                .any(|pm| pm.outcome.name() == "consistency_divergence");
    }
    sentinel::reset();

    // Under obs-off the sentinel is compiled out: nothing samples and
    // nothing can be audited, so only the overhead bound applies.
    let audit_gate_failed = if openmldb_obs::enabled() {
        audited == 0 || divergences > 0 || errors > 0
    } else {
        false
    };
    let chaos_gate_failed = chaos_enabled && (chaos_divergences == 0 || !chaos_attributed);
    let gate_failed = overhead > max_overhead || audit_gate_failed || chaos_gate_failed;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"audit_sentinel\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"sample_every\": {SAMPLE_EVERY},");
    let _ = writeln!(json, "  \"p50_off_ms\": {off_p50:.6},");
    let _ = writeln!(json, "  \"p50_on_ms\": {on_p50:.6},");
    let _ = writeln!(json, "  \"p50_overhead_pct\": {:.3},", overhead * 100.0);
    let _ = writeln!(
        json,
        "  \"clean\": {{\"audited\": {audited}, \"divergences\": {divergences}, \
         \"errors\": {errors}}},"
    );
    let _ = writeln!(
        json,
        "  \"chaos\": {{\"enabled\": {chaos_enabled}, \"divergences\": {chaos_divergences}, \
         \"attributed\": {chaos_attributed}}},"
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"max_p50_overhead_pct\": {:.2}, \"passed\": {}}}",
        max_overhead * 100.0,
        !gate_failed
    );
    json.push_str("}\n");

    let path =
        std::env::var("BENCH_AUDIT_JSON").unwrap_or_else(|_| "target/BENCH_audit.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("audit sentinel snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    print_table(
        &format!(
            "Audit sentinel: 1-in-{SAMPLE_EVERY} sampling overhead + oracle audit \
             ({requests} requests/trial, overhead {:.2}%, audited {audited}, \
             divergences {divergences}, chaos caught {chaos_divergences})",
            overhead * 100.0
        ),
        &["config", "p50 ms"],
        &[
            vec!["sampling off".into(), fmt(off_p50)],
            vec![format!("sampling 1/{SAMPLE_EVERY}"), fmt(on_p50)],
        ],
    );

    AuditSentinelResult {
        requests,
        off_p50_ms: off_p50,
        on_p50_ms: on_p50,
        overhead,
        max_overhead,
        audited,
        divergences,
        errors,
        chaos_enabled,
        chaos_divergences,
        chaos_attributed,
        gate_failed,
        json,
    }
}

/// Current value of the per-deployment divergence counter for `name`.
fn deployment_divergences(name: &str) -> u64 {
    Registry::global()
        .labeled_series("openmldb_online_deployment_divergences_total")
        .into_iter()
        .find(|(label, _)| label == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn sentinel_audit_is_clean_and_cheap_at_smoke_scale() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert!(
            !result.gate_failed,
            "overhead {:.2}% (max {:.2}%), audited {}, divergences {}, errors {}, \
             chaos caught {} attributed {}",
            result.overhead * 100.0,
            result.max_overhead * 100.0,
            result.audited,
            result.divergences,
            result.errors,
            result.chaos_divergences,
            result.chaos_attributed
        );
        if openmldb_obs::enabled() {
            assert!(result.audited > 0);
            assert_eq!(result.divergences, 0);
        }
        assert!(result.json.contains("\"experiment\": \"audit_sentinel\""));
    }
}
