//! **Hotpath** — allocation discipline of the online request path.
//!
//! Measures the fig06-style request loop three ways at the same scale: the
//! streaming scan→aggregate pipeline (`execute_request`), the materializing
//! reference pipeline (`execute_request_materialized`), and the
//! pre-aggregation path — reporting p50/p99 latency and, via the counting
//! global allocator, allocations per request. Two properties gate `run_all`:
//!
//! * the streaming scan path allocates **≥2× less** per request than the
//!   materializing baseline;
//! * the scan→arena→`RowView`→`update_view` stage performs **zero**
//!   allocations once warm (the no-join `ROWS_RANGE` case).
//!
//! The snapshot is written to `target/BENCH_hotpath.json` (override with
//! `BENCH_HOTPATH_JSON`).

use std::fmt::Write as _;

use openmldb_exec::{ScanEntry, WindowAggSet};
use openmldb_online::PreAggregator;
use openmldb_types::{KeyValue, Value};
use openmldb_workload::{micro_rows, MicroConfig};

use crate::alloc_counter;
use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Required allocation reduction of the streaming scan path over the
/// materializing baseline.
pub const MIN_ALLOC_REDUCTION: f64 = 2.0;

const FRAME_MS: i64 = 60_000;

/// Latency + allocation profile of one request variant.
#[derive(Debug, Clone)]
pub struct PathStats {
    pub stats: LatencyStats,
    pub allocs_per_request: f64,
}

#[derive(Debug, Clone)]
pub struct HotpathResult {
    pub requests: usize,
    pub streaming: PathStats,
    pub materialized: PathStats,
    pub preagg: PathStats,
    /// `materialized.allocs_per_request / streaming.allocs_per_request`.
    pub alloc_reduction: f64,
    /// Allocations of one warm scan→view→aggregate stage pass (must be 0).
    pub stage_allocs_after_warm: u64,
    pub gate_failed: bool,
    pub json: String,
}

pub fn run() -> HotpathResult {
    let rows = scaled(20_000);
    let keys = 20usize;
    let requests = scaled(2_000);

    let db = micro_db(rows, keys, 0.0, 0);
    let sql = micro_sql(1, 0, FRAME_MS, false);
    db.deploy(&format!("DEPLOY f_hot AS {sql}")).unwrap();
    let dep = db.deployment("f_hot").unwrap();
    // Anchor requests just past the generated history (ts_step_ms = 10) so
    // every window scan covers real rows, like fig06.
    let max_ts = rows as i64 * 10;
    let request_at = |i: usize| {
        micro_request(
            3_000_000 + i as i64,
            (i % keys) as i64,
            max_ts + (i % 100) as i64,
        )
    };

    // Pre-aggregated variant of the same deployment. `micro_db` seeds t1
    // with seed 42, so regenerating the same config replays its rows.
    let data = micro_rows(&MicroConfig {
        rows,
        distinct_keys: keys,
        key_skew: 0.0,
        seed: 42,
        ..Default::default()
    });
    let q = &dep.query;
    let preagg = PreAggregator::new(&q.windows[0], &q.aggregates, vec![FRAME_MS / 100]).unwrap();
    for row in &data {
        preagg.ingest(row).unwrap();
    }
    let preagg_dep =
        openmldb_online::Deployment::new("f_hot_pre", q.clone()).with_preagg(0, preagg);

    // The three paths agree before anything is measured.
    for i in 0..3 {
        let r = request_at(i * 7);
        let a = openmldb_online::execute_request(&db, &dep, &r).unwrap();
        let b = openmldb_online::execute_request_materialized(&db, &dep, &r).unwrap();
        assert_eq!(a, b, "streaming and materialized paths diverged");
        // Bucketed summation reorders float adds, so the preagg path is
        // compared with a relative tolerance rather than bit equality.
        let c = openmldb_online::execute_request(&db, &preagg_dep, &r).unwrap();
        for (x, y) in a.values().iter().zip(c.values()) {
            match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    assert!(
                        (p - q).abs() / p.abs().max(1.0) < 1e-9,
                        "preagg: {p} vs {q}"
                    )
                }
                _ => assert_eq!(x, y, "preagg path diverged"),
            }
        }
    }

    let measure = |f: &mut dyn FnMut(usize)| -> PathStats {
        // Warm-up: fills scratch pools, histograms, and thread-locals.
        for i in 0..32 {
            f(i);
        }
        let before = alloc_counter::allocations();
        let samples = time_each(requests, &mut *f);
        let allocs = alloc_counter::allocations() - before;
        PathStats {
            stats: LatencyStats::from_samples(samples),
            allocs_per_request: allocs as f64 / requests as f64,
        }
    };

    let streaming = measure(&mut |i| {
        openmldb_online::execute_request(&db, &dep, &request_at(i)).unwrap();
    });
    let materialized = measure(&mut |i| {
        openmldb_online::execute_request_materialized(&db, &dep, &request_at(i)).unwrap();
    });
    let preagg_stats = measure(&mut |i| {
        openmldb_online::execute_request(&db, &preagg_dep, &request_at(i)).unwrap();
    });

    let alloc_reduction = materialized.allocs_per_request / streaming.allocs_per_request.max(1e-9);
    let stage_allocs_after_warm = stage_alloc_pass(&db, q, max_ts);
    let gate_failed = alloc_reduction < MIN_ALLOC_REDUCTION || stage_allocs_after_warm > 0;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"hotpath\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"frame_ms\": {FRAME_MS},");
    for (name, p) in [
        ("streaming", &streaming),
        ("materialized", &materialized),
        ("preagg", &preagg_stats),
    ] {
        let _ = writeln!(
            json,
            "  \"{name}\": {{\"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"mean_ms\": {:.6}, \"qps\": {:.1}, \"allocs_per_request\": {:.2}}},",
            p.stats.p50_ms, p.stats.p99_ms, p.stats.mean_ms, p.stats.qps, p.allocs_per_request
        );
    }
    let _ = writeln!(
        json,
        "  \"p50_speedup_vs_materialized\": {:.3},",
        materialized.stats.p50_ms / streaming.stats.p50_ms.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"p99_speedup_vs_materialized\": {:.3},",
        materialized.stats.p99_ms / streaming.stats.p99_ms.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"alloc_reduction_vs_materialized\": {alloc_reduction:.3},"
    );
    let _ = writeln!(
        json,
        "  \"stage_allocs_after_warm\": {stage_allocs_after_warm},"
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"min_alloc_reduction\": {MIN_ALLOC_REDUCTION:.1}, \"passed\": {}}}",
        !gate_failed
    );
    json.push_str("}\n");

    let path =
        std::env::var("BENCH_HOTPATH_JSON").unwrap_or_else(|_| "target/BENCH_hotpath.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("hotpath snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let table: Vec<Vec<String>> = [
        ("streaming", &streaming),
        ("materialized", &materialized),
        ("preagg", &preagg_stats),
    ]
    .iter()
    .map(|(name, p)| {
        vec![
            name.to_string(),
            fmt(p.stats.p50_ms),
            fmt(p.stats.p99_ms),
            format!("{:.0}", p.stats.qps),
            format!("{:.1}", p.allocs_per_request),
        ]
    })
    .collect();
    print_table(
        &format!(
            "Hotpath: request path allocation discipline ({requests} requests, \
             alloc reduction {alloc_reduction:.1}x, stage allocs {stage_allocs_after_warm})"
        ),
        &["path", "p50 ms", "p99 ms", "qps", "allocs/req"],
        &table,
    );

    HotpathResult {
        requests,
        streaming,
        materialized,
        preagg: preagg_stats,
        alloc_reduction,
        stage_allocs_after_warm,
        gate_failed,
        json,
    }
}

/// One warm pass of the zero-materialization stage — seek-then-visit scan
/// into a byte arena, `(ts, seq)` sort, `RowView` reads feeding
/// `update_view`, `outputs_into` — measured for allocations. Buffers and
/// aggregate state are warmed by two untimed passes first.
fn stage_alloc_pass(
    provider: &dyn openmldb_online::TableProvider,
    q: &openmldb_sql::plan::CompiledQuery,
    max_ts: i64,
) -> u64 {
    let table = provider.table("t1").expect("t1 registered");
    let index = table.find_index(&[1], Some(5)).expect("by_k index");
    let codec = openmldb_types::CompactCodec::new(q.base_schema.clone());
    let refs: Vec<_> = q.aggregates.iter().collect();
    let mut set = WindowAggSet::new(&refs).unwrap();
    let mut arena: Vec<u8> = Vec::new();
    let mut entries: Vec<ScanEntry> = Vec::new();
    let mut outputs: Vec<Value> = Vec::new();
    let key = [KeyValue::Int(0)];

    let mut pass = || {
        set.reset();
        arena.clear();
        entries.clear();
        outputs.clear();
        let mut seq = 0usize;
        table
            .scan_window(
                index,
                &key,
                max_ts - FRAME_MS,
                max_ts,
                None,
                &mut |ts, data| {
                    let start = arena.len();
                    arena.extend_from_slice(data);
                    entries.push(ScanEntry {
                        ts,
                        seq,
                        start,
                        len: data.len(),
                    });
                    seq += 1;
                    true
                },
            )
            .unwrap();
        entries.sort_unstable_by_key(|e| (e.ts, e.seq));
        for e in &entries {
            let view = codec.view(e.bytes(&arena)).unwrap();
            set.update_view(&view).unwrap();
        }
        set.outputs_into(&mut outputs);
        assert!(!entries.is_empty(), "stage pass must scan real rows");
    };
    pass();
    pass();
    alloc_counter::count(pass).1
}

#[cfg(test)]
mod tests {
    #[test]
    fn streaming_path_halves_allocations_and_stage_is_allocation_free() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert!(
            !result.gate_failed,
            "alloc reduction {:.2}x (need >= {:.1}), stage allocs {}",
            result.alloc_reduction,
            super::MIN_ALLOC_REDUCTION,
            result.stage_allocs_after_warm
        );
        assert_eq!(result.stage_allocs_after_warm, 0);
        assert!(result.json.contains("\"experiment\": \"hotpath\""));
    }
}
