//! **Obs cross-check** — the harness measures the fig06-style request loop
//! with wall-clock timers while `openmldb-obs` measures the same requests
//! from inside the engine; this experiment runs one loop, extracts both
//! sets of percentiles, and fails the run when they diverge.
//!
//! Two independent clocks around the same code path agreeing within the
//! histogram's bucket error is the end-to-end proof that the metrics layer
//! reports truthful latencies — the property dashboards depend on. The
//! snapshot (harness numbers, obs-derived percentiles, divergence, and the
//! full registry exposition) is written as `BENCH_obs.json` next to the
//! criterion output (override the path with `BENCH_OBS_JSON`).

use std::fmt::Write as _;

use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Allowed relative divergence between harness and obs percentiles. The
/// log-linear histogram quantizes to ≤1/16 relative error and the harness
/// timer includes call overhead the in-engine timer does not, so the 10%
/// contract from the issue gets the bucket error on top.
pub const REL_TOLERANCE: f64 = 0.10 + 1.0 / 16.0;

/// Absolute floor (milliseconds): below this, timer quantization noise
/// dominates any relative comparison.
pub const ABS_FLOOR_MS: f64 = 0.02;

#[derive(Debug, Clone)]
pub struct ObsComparison {
    /// Wall-clock statistics measured by the harness.
    pub harness: LatencyStats,
    /// Percentiles extracted from the engine-side request histogram delta.
    pub obs_p50_ms: f64,
    pub obs_p90_ms: f64,
    pub obs_p99_ms: f64,
    pub obs_p999_ms: f64,
    /// Requests the obs histogram saw during the loop (0 under `obs-off`).
    pub obs_count: u64,
    /// Any percentile pair diverged beyond tolerance.
    pub diverged: bool,
    /// The JSON document written to `BENCH_obs.json`.
    pub json: String,
}

fn rel_divergence(a_ms: f64, b_ms: f64) -> f64 {
    let scale = a_ms.abs().max(b_ms.abs());
    if scale <= ABS_FLOOR_MS {
        return 0.0;
    }
    (a_ms - b_ms).abs() / scale
}

pub fn run() -> ObsComparison {
    let rows = scaled(8_000);
    let keys = 20usize;
    let requests = scaled(2_000);

    let db = micro_db(rows, keys, 0.0, 1);
    db.deploy(&format!(
        "DEPLOY f_obs AS {}",
        micro_sql(1, 1, 60_000, false)
    ))
    .unwrap();
    // Anchor requests just past the generated history (ts_step_ms = 10) so
    // every window scan covers real rows, like fig06.
    let max_ts = rows as i64 * 10;

    // Warm up outside the measured region so both clocks see steady state.
    for i in 0..16i64 {
        db.request_readonly("f_obs", &micro_request(i, i % keys as i64, max_ts))
            .unwrap();
    }

    let before = openmldb_online::metrics::request_duration().snapshot();
    let samples = time_each(requests, |i| {
        db.request_readonly(
            "f_obs",
            &micro_request(
                2_000_000 + i as i64,
                (i % keys) as i64,
                max_ts + (i % 100) as i64,
            ),
        )
        .unwrap()
    });
    let delta = openmldb_online::metrics::request_duration()
        .snapshot()
        .delta(&before);

    let harness = LatencyStats::from_samples(samples);
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;
    let obs_p50_ms = ns_to_ms(delta.percentile(0.50));
    let obs_p90_ms = ns_to_ms(delta.percentile(0.90));
    let obs_p99_ms = ns_to_ms(delta.percentile(0.99));
    let obs_p999_ms = ns_to_ms(delta.percentile(0.999));

    let pairs = [
        ("p50", harness.p50_ms, obs_p50_ms),
        ("p90", harness.p90_ms, obs_p90_ms),
        ("p99", harness.p99_ms, obs_p99_ms),
        ("p999", harness.p999_ms, obs_p999_ms),
    ];
    // Under obs-off the histogram never fills; there is nothing to compare
    // (and the snapshot records that explicitly).
    let comparable = delta.count() > 0;
    let diverged = comparable
        && pairs
            .iter()
            .any(|(_, h, o)| rel_divergence(*h, *o) > REL_TOLERANCE);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"obs_snapshot\",");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"obs_enabled\": {},", openmldb_obs::enabled());
    let _ = writeln!(json, "  \"obs_count\": {},", delta.count());
    let _ = writeln!(
        json,
        "  \"harness\": {{\"mean_ms\": {:.6}, \"p50_ms\": {:.6}, \"p90_ms\": {:.6}, \"p99_ms\": {:.6}, \"p999_ms\": {:.6}, \"qps\": {:.1}}},",
        harness.mean_ms, harness.p50_ms, harness.p90_ms, harness.p99_ms, harness.p999_ms, harness.qps
    );
    let _ = writeln!(
        json,
        "  \"obs\": {{\"p50_ms\": {obs_p50_ms:.6}, \"p90_ms\": {obs_p90_ms:.6}, \"p99_ms\": {obs_p99_ms:.6}, \"p999_ms\": {obs_p999_ms:.6}}},"
    );
    let mut div = String::new();
    for (i, (name, h, o)) in pairs.iter().enumerate() {
        if i > 0 {
            div.push_str(", ");
        }
        let _ = write!(div, "\"{name}\": {:.4}", rel_divergence(*h, *o));
    }
    let _ = writeln!(json, "  \"divergence\": {{{div}}},");
    let _ = writeln!(json, "  \"tolerance\": {REL_TOLERANCE:.4},");
    let _ = writeln!(json, "  \"diverged\": {diverged},");
    let _ = writeln!(
        json,
        "  \"registry\": {}",
        openmldb_obs::Registry::global().render_json()
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| "target/BENCH_obs.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("obs snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let table: Vec<Vec<String>> = pairs
        .iter()
        .map(|(name, h, o)| {
            vec![
                name.to_string(),
                fmt(*h),
                if comparable { fmt(*o) } else { "-".into() },
                if comparable {
                    format!("{:.1}%", rel_divergence(*h, *o) * 100.0)
                } else {
                    "obs-off".into()
                },
            ]
        })
        .collect();
    print_table(
        &format!("Obs cross-check: harness vs engine histogram ({requests} requests)"),
        &["pct", "harness ms", "obs ms", "divergence"],
        &table,
    );

    ObsComparison {
        harness,
        obs_p50_ms,
        obs_p90_ms,
        obs_p99_ms,
        obs_p999_ms,
        obs_count: delta.count(),
        diverged,
        json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn obs_and_harness_percentiles_agree() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert!(!result.diverged, "{}", result.json);
        if openmldb_obs::enabled() {
            // The histogram saw at least the measured loop (other tests in
            // this process may add more; the delta isolates our window
            // unless they run concurrently, hence >=).
            assert!(result.obs_count >= 16, "count {}", result.obs_count);
            assert!(result.obs_p999_ms >= result.obs_p50_ms);
        } else {
            assert_eq!(result.obs_count, 0);
        }
        assert!(result.json.contains("\"experiment\": \"obs_snapshot\""));
        assert!(result.json.contains("\"registry\":"));
    }
}
