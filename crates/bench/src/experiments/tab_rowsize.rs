//! **Section 7.1's worked example** — encoded row sizes, compact format vs
//! Spark's UnsafeRow layout, over several representative schemas including
//! the paper's exact example (556 B → 255 B, >54% saving).

use openmldb_types::{
    ColumnDef, CompactCodec, DataType, Row, RowCodec, Schema, UnsafeRowCodec, Value,
};

use crate::harness::print_table;

pub struct RowSizeRow {
    pub schema: String,
    pub unsafe_bytes: usize,
    pub compact_bytes: usize,
    pub saving_pct: f64,
}

fn paper_example() -> (Schema, Row) {
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..20 {
        cols.push(ColumnDef::new(format!("i{i}"), DataType::Int));
        vals.push(Value::Int(i));
    }
    for i in 0..20 {
        cols.push(ColumnDef::new(format!("f{i}"), DataType::Float));
        vals.push(Value::Float(i as f32));
    }
    for i in 0..20 {
        cols.push(ColumnDef::new(format!("s{i}"), DataType::String));
        vals.push(Value::string("x"));
    }
    for i in 0..5 {
        cols.push(ColumnDef::new(format!("t{i}"), DataType::Timestamp));
        vals.push(Value::Timestamp(i));
    }
    (Schema::new(cols).unwrap(), Row::new(vals))
}

pub fn run() -> Vec<RowSizeRow> {
    let mut cases: Vec<(String, Schema, Row)> = Vec::new();
    {
        let (s, r) = paper_example();
        cases.push(("paper §7.1 example (65 cols)".into(), s, r));
    }
    cases.push((
        "clickstream (6 cols)".into(),
        Schema::from_pairs(&[
            ("user", DataType::Bigint),
            ("item", DataType::String),
            ("price", DataType::Double),
            ("qty", DataType::Int),
            ("flag", DataType::Bool),
            ("ts", DataType::Timestamp),
        ])
        .unwrap(),
        Row::new(vec![
            Value::Bigint(42),
            Value::string("item_12345"),
            Value::Double(19.5),
            Value::Int(2),
            Value::Bool(true),
            Value::Timestamp(1_700_000_000_000),
        ]),
    ));
    cases.push((
        "numeric-heavy (20 ints)".into(),
        Schema::new(
            (0..20)
                .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int))
                .collect(),
        )
        .unwrap(),
        Row::new((0..20).map(Value::Int).collect()),
    ));

    let mut out = Vec::new();
    for (name, schema, row) in cases {
        let unsafe_bytes = UnsafeRowCodec::new(schema.clone())
            .encoded_size(&row)
            .unwrap();
        let compact_bytes = CompactCodec::new(schema).encoded_size(&row).unwrap();
        out.push(RowSizeRow {
            schema: name,
            unsafe_bytes,
            compact_bytes,
            saving_pct: 100.0 * (1.0 - compact_bytes as f64 / unsafe_bytes as f64),
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.schema.clone(),
                r.unsafe_bytes.to_string(),
                r.compact_bytes.to_string(),
                format!("{:.1}%", r.saving_pct),
            ]
        })
        .collect();
    print_table(
        "§7.1: encoded row size, bytes (Spark UnsafeRow vs compact)",
        &["schema", "UnsafeRow", "compact", "saving"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_numbers_exact() {
        let rows = super::run();
        assert_eq!(rows[0].unsafe_bytes, 556);
        assert_eq!(rows[0].compact_bytes, 255);
        assert!(rows[0].saving_pct > 54.0);
        for r in &rows {
            assert!(r.compact_bytes < r.unsafe_bytes, "{}", r.schema);
        }
    }
}
