//! **Figures 15, 16, 17** — query/data hyper-parameter sweeps.
//!
//! * Fig 15: number of windows 1..16 — latency grows modestly (<10 ms),
//!   throughput declines.
//! * Fig 16: rows per window 100..100K — latency stays ~10 ms-class.
//! * Fig 17: LAST JOIN count 1..8 — latency stays under a few ms, QPS above
//!   thousands.

use crate::harness::{fmt, print_table, scaled, time_each, time_each_budget, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

pub struct SweepPoint {
    pub x: usize,
    pub mean_ms: f64,
    pub p99_ms: f64,
    pub qps: f64,
}

fn measure(db: &openmldb_core::Database, name: &str, requests: usize) -> LatencyStats {
    LatencyStats::from_samples(time_each(requests, |i| {
        db.request_readonly(name, &micro_request(i as i64, (i % 50) as i64, 1_000_000))
            .unwrap()
    }))
}

/// Fig 15: window-count sweep.
pub fn run_window_count() -> Vec<SweepPoint> {
    let db = micro_db(scaled(10_000), 50, 0.0, 0);
    let requests = scaled(300);
    let mut out = Vec::new();
    for windows in [1usize, 2, 4, 8, 16] {
        let name = format!("f15_{windows}");
        db.deploy(&format!(
            "DEPLOY {name} AS {}",
            micro_sql(windows, 0, 2_000, false)
        ))
        .unwrap();
        let stats = measure(&db, &name, requests);
        out.push(SweepPoint {
            x: windows,
            mean_ms: stats.mean_ms,
            p99_ms: stats.p99_ms,
            qps: stats.qps,
        });
    }
    print_sweep("Fig 15: number of windows", "windows", &out);
    out
}

/// Fig 16: rows-per-window sweep (ts step 1 ms; frame = rows).
pub fn run_window_size() -> Vec<SweepPoint> {
    let max_rows = scaled(100_000);
    let db = {
        use openmldb_storage::{IndexSpec, MemTable, Ttl};
        use openmldb_workload::{micro_rows, micro_schema, MicroConfig};
        use std::sync::Arc;
        let db = openmldb_core::Database::new();
        let table = Arc::new(
            MemTable::new(
                "t1",
                micro_schema(),
                vec![IndexSpec {
                    name: "i".into(),
                    key_cols: vec![1],
                    ts_col: Some(5),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        );
        for row in micro_rows(&MicroConfig {
            rows: max_rows,
            distinct_keys: 1,
            ts_step_ms: 1,
            ..Default::default()
        }) {
            table.put(&row).unwrap();
        }
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
        db
    };
    let requests = scaled(200);
    let mut out = Vec::new();
    for rows_in_window in [100usize, 1_000, 10_000, max_rows] {
        let name = format!("f16_{rows_in_window}");
        db.deploy(&format!(
            "DEPLOY {name} AS {}",
            micro_sql(1, 0, rows_in_window as i64, false)
        ))
        .unwrap();
        let stats = LatencyStats::from_samples(time_each_budget(requests, 5_000.0, |i| {
            db.request_readonly(&name, &micro_request(i as i64, 0, max_rows as i64))
                .unwrap()
        }));
        out.push(SweepPoint {
            x: rows_in_window,
            mean_ms: stats.mean_ms,
            p99_ms: stats.p99_ms,
            qps: stats.qps,
        });
    }
    print_sweep("Fig 16: rows per window", "window rows", &out);
    out
}

/// Fig 17: LAST JOIN count sweep.
pub fn run_join_count() -> Vec<SweepPoint> {
    let db = micro_db(scaled(10_000), 50, 0.0, 8);
    let requests = scaled(300);
    let mut out = Vec::new();
    for joins in [1usize, 2, 4, 8] {
        let name = format!("f17_{joins}");
        db.deploy(&format!(
            "DEPLOY {name} AS {}",
            micro_sql(1, joins, 2_000, false)
        ))
        .unwrap();
        let stats = measure(&db, &name, requests);
        out.push(SweepPoint {
            x: joins,
            mean_ms: stats.mean_ms,
            p99_ms: stats.p99_ms,
            qps: stats.qps,
        });
    }
    print_sweep("Fig 17: number of LAST JOINs", "joins", &out);
    out
}

fn print_sweep(title: &str, xlabel: &str, points: &[SweepPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.x.to_string(), fmt(p.mean_ms), fmt(p.p99_ms), fmt(p.qps)])
        .collect();
    print_table(title, &[xlabel, "mean ms", "p99 ms", "qps"], &rows);
}

#[cfg(test)]
mod tests {
    #[test]
    fn window_count_latency_grows_modestly() {
        let points = crate::harness::with_scale(0.1, super::run_window_count);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.mean_ms >= first.mean_ms * 0.8,
            "more windows cost more"
        );
        assert!(last.qps < first.qps * 1.2, "throughput declines");
    }

    #[test]
    fn join_count_latency_stays_low() {
        let points = crate::harness::with_scale(0.1, super::run_join_count);
        for p in &points {
            assert!(
                p.mean_ms < 50.0,
                "join sweep stays fast: {} ms at {}",
                p.mean_ms,
                p.x
            );
        }
    }
}
