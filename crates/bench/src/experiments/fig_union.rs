//! **Section 9.3.2** — Multi-table window union throughput (the in-text
//! figure).
//!
//! Paper result: the static execution approach (Flink-style) collapses to
//! ~1K tuples/s at a 10K-row window, while OpenMLDB's self-adjusting union
//! holds roughly 1M tuples/s across window sizes.

use openmldb_online::{Scheduling, UnionConfig, WindowUnion};
use openmldb_sql::ast::Frame;
use openmldb_types::{KeyValue, Row, Value};
use openmldb_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{fmt, print_table, scaled, time_once};
use crate::scenarios::micro_specs;

pub struct UnionPoint {
    pub window_rows: usize,
    pub static_tps: f64,
    pub self_adjusting_tps: f64,
}

fn drive(config: UnionConfig, tuples: usize, keys: usize) -> f64 {
    let mut union = WindowUnion::new(config, micro_specs()).unwrap();
    let zipf = Zipf::new(keys, 1.1);
    let mut rng = StdRng::seed_from_u64(5);
    let (_, ms) = time_once(|| {
        for i in 0..tuples {
            let key = KeyValue::Int(zipf.sample(&mut rng) as i64);
            // Two "tables" interleaved: the union routes both streams.
            union.push(
                key,
                i as i64,
                Row::new(vec![
                    Value::Bigint(i as i64),
                    Value::Bigint(0),
                    Value::Double(1.0),
                    Value::string("c"),
                    Value::Int(1),
                    Value::Timestamp(i as i64),
                ]),
            );
        }
        union.flush();
    });
    tuples as f64 / (ms / 1_000.0)
}

pub fn run() -> Vec<UnionPoint> {
    let tuples = scaled(60_000);
    let keys = 32;
    let mut out = Vec::new();
    for window_rows in [1_000usize, 10_000, 50_000] {
        let frame = Frame::RowsRange {
            preceding_ms: window_rows as i64,
        };
        let static_tps = drive(
            UnionConfig {
                workers: 4,
                frame,
                scheduling: Scheduling::StaticHash,
                incremental: false, // recompute + re-sort, the Flink model
            },
            tuples,
            keys,
        );
        let dynamic_tps = drive(
            UnionConfig {
                workers: 4,
                frame,
                scheduling: Scheduling::SelfAdjusting {
                    rebalance_every: 2_000,
                },
                incremental: true, // subtract-and-evict
            },
            tuples,
            keys,
        );
        out.push(UnionPoint {
            window_rows,
            static_tps,
            self_adjusting_tps: dynamic_tps,
        });
    }
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.window_rows.to_string(),
                fmt(r.static_tps),
                fmt(r.self_adjusting_tps),
                format!("{:.1}x", r.self_adjusting_tps / r.static_tps),
            ]
        })
        .collect();
    print_table(
        &format!("§9.3.2: window-union throughput, tuples/s ({tuples} tuples, zipf keys)"),
        &["window rows", "static+recompute", "self-adjusting", "gain"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_adjusting_union_outperforms_static() {
        let points = crate::harness::with_scale(0.1, super::run);
        let large = points.last().unwrap();
        assert!(
            large.self_adjusting_tps > large.static_tps,
            "at {} rows: {:.0} vs {:.0} tuples/s",
            large.window_rows,
            large.self_adjusting_tps,
            large.static_tps
        );
        // The static approach degrades as windows grow; self-adjusting holds.
        let small = points.first().unwrap();
        let static_drop = small.static_tps / large.static_tps;
        let dynamic_drop = small.self_adjusting_tps / large.self_adjusting_tps;
        assert!(
            static_drop > dynamic_drop,
            "static drops {static_drop:.1}x vs dynamic {dynamic_drop:.1}x"
        );
    }
}
