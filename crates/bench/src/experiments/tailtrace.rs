//! **Tail-latency attribution** — the fig06-style request loop under
//! injected storage faults and latency spikes, verifying the flight
//! recorder's contract: every anomalous request (typed `Timeout`, failed,
//! `degraded`, or failed-over) leaves a post-mortem in the slow-query log,
//! and each post-mortem's per-stage self-times sum **exactly** to its total
//! duration, naming the stage that consumed the budget. The snapshot is
//! written as `BENCH_tailtrace.json` (override with `BENCH_TAILTRACE_JSON`).
//!
//! Without the `chaos` cargo feature no faults fire; the loop still runs
//! and the gates hold vacuously (coverage of zero anomalies is 100%).

use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::time::Duration;

use openmldb_chaos::{InjectionPoint, Plan};
use openmldb_core::RequestOptions;
use openmldb_obs::{flight, Outcome};
use openmldb_types::Error;

use crate::harness::{print_table, scaled};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Deterministic seed for the injection plan.
pub const SEED: u64 = 0x7A11;

/// Per-request deadline budget. Smaller than the injected latency spike so
/// a spiked seek deterministically blows the budget.
pub const BUDGET: Duration = Duration::from_millis(100);

/// Error rate on the skiplist seek path — high enough that the retry
/// ladder exhausts into replica failover on some requests.
pub const ERROR_RATE: f64 = 0.25;

/// Rate and size of injected latency spikes (spike > budget ⇒ timeout).
pub const SPIKE_RATE: f64 = 0.015;
pub const SPIKE: Duration = Duration::from_millis(150);

#[derive(Debug, Clone)]
pub struct TailTrace {
    pub chaos_enabled: bool,
    pub requests: usize,
    pub ok: usize,
    pub timeouts: usize,
    pub degraded: usize,
    pub failovers: usize,
    pub failed: usize,
    /// Anomalous requests (timeout + failed + degraded + failed-over).
    pub anomalies: usize,
    /// Anomalies whose post-mortem was found in the slow-query log.
    pub matched: usize,
    /// Post-mortems inspected whose stage self-times did not sum exactly
    /// to the recorded total. Must be 0.
    pub sum_mismatches: usize,
    /// Culprit-stage histogram across matched post-mortems.
    pub culprits: BTreeMap<String, usize>,
    /// 100% of anomalies produced a post-mortem and all sums were exact.
    pub gate_failed: bool,
    pub json: String,
}

/// Exact attribution invariant: stage self-times plus unattributed time
/// equal the total, to the nanosecond.
fn sums_exactly(pm: &openmldb_obs::PostMortem) -> bool {
    pm.stage_self_ns.iter().sum::<u64>() + pm.other_ns == pm.total_ns
}

pub fn run() -> TailTrace {
    let rows = scaled(8_000);
    let keys = 20usize;
    let requests = scaled(2_000);

    let db = micro_db(rows, keys, 0.0, 1);
    db.deploy(&format!(
        "DEPLOY f_tail AS {}",
        micro_sql(1, 1, 60_000, false)
    ))
    .unwrap();
    db.enable_failover("t1").unwrap();
    let max_ts = rows as i64 * 10;
    let opts = RequestOptions::with_deadline(BUDGET);

    // Warm-up with no faults installed.
    openmldb_chaos::reset();
    for i in 0..16i64 {
        db.request_readonly("f_tail", &micro_request(i, i % keys as i64, max_ts))
            .unwrap();
    }

    openmldb_chaos::install(
        Plan::new(SEED)
            .error_rate(InjectionPoint::SkiplistSeek, ERROR_RATE)
            .latency(InjectionPoint::SkiplistSeek, SPIKE_RATE, SPIKE),
    );

    let (mut ok, mut timeouts, mut degraded, mut failovers, mut failed) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut anomalies = 0usize;
    let mut matched = 0usize;
    let mut sum_mismatches = 0usize;
    let mut culprits: BTreeMap<String, usize> = BTreeMap::new();
    // Post-mortem trace ids already attributed to one of our anomalies —
    // error outcomes carry no trace id, so they claim the newest unclaimed
    // entry with the right outcome instead.
    let mut claimed: HashSet<u64> = HashSet::new();

    for i in 0..requests {
        let req = micro_request(
            2_000_000 + i as i64,
            (i % keys) as i64,
            max_ts + (i % 100) as i64,
        );
        let before = flight::published_total();
        let out = db.request_readonly_with("f_tail", &req, &opts);
        let published = flight::published_total() > before;

        // Which outcome must the post-mortem carry (None ⇒ no dump owed)?
        let expect = match &out {
            Ok(o) if o.degraded => {
                degraded += 1;
                Some((Outcome::Degraded, Some(o.trace_id)))
            }
            Ok(o) if o.failovers > 0 => {
                failovers += 1;
                Some((Outcome::Failover, Some(o.trace_id)))
            }
            Ok(_) => {
                ok += 1;
                None
            }
            Err(Error::Timeout { .. }) => {
                timeouts += 1;
                Some((Outcome::Timeout, None))
            }
            Err(_) => {
                failed += 1;
                Some((Outcome::Failed, None))
            }
        };
        let Some((want, trace_id)) = expect else {
            continue;
        };
        anomalies += 1;
        if !published {
            continue; // coverage gap — gate fails below
        }
        // Find our post-mortem: by trace id when the response carried one,
        // otherwise the newest unclaimed entry with the expected outcome.
        let log = flight::slow_log();
        let found = match trace_id {
            Some(id) => log.iter().rev().find(|pm| pm.trace_id == id),
            None => log
                .iter()
                .rev()
                .find(|pm| pm.outcome == want && !claimed.contains(&pm.trace_id)),
        };
        if let Some(pm) = found {
            claimed.insert(pm.trace_id);
            matched += 1;
            if !sums_exactly(pm) {
                sum_mismatches += 1;
            }
            *culprits.entry(pm.culprit.to_string()).or_insert(0) += 1;
        }
    }
    openmldb_chaos::reset();

    crate::metrics::tailtrace_anomalies().add(anomalies as u64);
    crate::metrics::tailtrace_matched().add(matched as u64);

    let gate_failed = matched != anomalies || sum_mismatches > 0;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"tailtrace\",");
    let _ = writeln!(json, "  \"chaos_enabled\": {},", openmldb_chaos::enabled());
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"budget_ms\": {},", BUDGET.as_millis());
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"ok\": {ok},");
    let _ = writeln!(json, "  \"timeouts\": {timeouts},");
    let _ = writeln!(json, "  \"degraded\": {degraded},");
    let _ = writeln!(json, "  \"failovers\": {failovers},");
    let _ = writeln!(json, "  \"failed\": {failed},");
    let _ = writeln!(json, "  \"anomalies\": {anomalies},");
    let _ = writeln!(json, "  \"postmortems_matched\": {matched},");
    let _ = writeln!(json, "  \"sum_mismatches\": {sum_mismatches},");
    let _ = writeln!(json, "  \"gate_failed\": {gate_failed},");
    json.push_str("  \"culprits\": {");
    for (i, (stage, n)) in culprits.iter().enumerate() {
        let _ = write!(json, "{}\"{stage}\": {n}", if i == 0 { "" } else { ", " });
    }
    json.push_str("}\n}\n");

    let path = std::env::var("BENCH_TAILTRACE_JSON")
        .unwrap_or_else(|_| "target/BENCH_tailtrace.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("tailtrace snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let culprit_summary = if culprits.is_empty() {
        "-".to_string()
    } else {
        culprits
            .iter()
            .map(|(s, n)| format!("{s}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    print_table(
        &format!(
            "Tail-latency attribution: fig06 loop under faults ({requests} requests, \
             budget {} ms, chaos {})",
            BUDGET.as_millis(),
            if openmldb_chaos::enabled() {
                "on"
            } else {
                "off"
            }
        ),
        &[
            "ok", "timeout", "degraded", "failover", "failed", "anomaly", "matched", "sum_err",
            "culprits",
        ],
        &[vec![
            ok.to_string(),
            timeouts.to_string(),
            degraded.to_string(),
            failovers.to_string(),
            failed.to_string(),
            anomalies.to_string(),
            matched.to_string(),
            sum_mismatches.to_string(),
            culprit_summary,
        ]],
    );

    TailTrace {
        chaos_enabled: openmldb_chaos::enabled(),
        requests,
        ok,
        timeouts,
        degraded,
        failovers,
        failed,
        anomalies,
        matched,
        sum_mismatches,
        culprits,
        gate_failed,
        json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_anomaly_yields_an_exact_post_mortem() {
        let result = crate::harness::with_scale(0.05, super::run);
        assert_eq!(
            result.matched, result.anomalies,
            "every anomalous request must leave a post-mortem: {}",
            result.json
        );
        assert_eq!(result.sum_mismatches, 0, "{}", result.json);
        assert!(!result.gate_failed, "{}", result.json);
        if result.chaos_enabled {
            assert!(
                result.anomalies > 0,
                "a 25% fault rate must produce anomalies: {}",
                result.json
            );
        }
        assert!(result.json.contains("\"experiment\": \"tailtrace\""));
    }
}
