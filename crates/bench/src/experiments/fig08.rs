//! **Figure 8** — Offline MicroBench performance comparison.
//!
//! Paper result vs Spark: 2.6× on single-window queries, 6.3× on
//! multi-window workloads, 7.2× on skewed data with skew optimization
//! (180 s vs 1302 s).

use openmldb_baselines::SparkLikeEngine;
use openmldb_offline::{execute_batch, OfflineOptions, SkewConfig, Tables, WindowExecMode};
use openmldb_sql::{compile_select, parse_select, PlanCache};
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, scaled, time_once};
use crate::scenarios::micro_sql;

pub struct OfflineResult {
    pub workload: String,
    pub spark_ms: f64,
    pub openmldb_ms: f64,
}

struct SchemaCat;
impl openmldb_sql::Catalog for SchemaCat {
    fn table_schema(&self, name: &str) -> Option<openmldb_types::Schema> {
        matches!(name, "t1" | "t2" | "t3").then(micro_schema)
    }
}

fn compile(sql: &str) -> openmldb_sql::CompiledQuery {
    compile_select(&parse_select(sql).unwrap(), &SchemaCat).unwrap()
}

pub fn run() -> Vec<OfflineResult> {
    let _ = PlanCache::new(); // touch to keep the API exercised in benches
    let rows = scaled(30_000);
    let mut out = Vec::new();

    // --- single window ---------------------------------------------------
    {
        let data = micro_rows(&MicroConfig {
            rows,
            distinct_keys: 8,
            ..Default::default()
        });
        let q = compile(&micro_sql(1, 0, 20_000, false));
        let tables = Tables::new();
        let mut spark = SparkLikeEngine::new();
        let (_, spark_ms) =
            time_once(|| spark.compute_windows(&q, &data, &micro_schema()).unwrap());
        let mut t = tables.clone();
        t.insert("t1".into(), data.clone());
        let (_, ours_ms) = time_once(|| {
            execute_batch(
                &q,
                &t,
                &OfflineOptions {
                    mode: WindowExecMode::Incremental,
                    parallel_windows: false,
                    skew: None,
                    threads: 1,
                },
            )
            .unwrap()
        });
        out.push(OfflineResult {
            workload: "single-window".into(),
            spark_ms,
            openmldb_ms: ours_ms,
        });
    }

    // --- multi-window ------------------------------------------------------
    {
        let data = micro_rows(&MicroConfig {
            rows,
            distinct_keys: 8,
            ..Default::default()
        });
        let q = compile(&micro_sql(4, 0, 20_000, false));
        let mut spark = SparkLikeEngine::new();
        let (_, spark_ms) =
            time_once(|| spark.compute_windows(&q, &data, &micro_schema()).unwrap());
        let mut t = Tables::new();
        t.insert("t1".into(), data.clone());
        let (_, ours_ms) = time_once(|| {
            execute_batch(
                &q,
                &t,
                &OfflineOptions {
                    mode: WindowExecMode::Incremental,
                    parallel_windows: true,
                    skew: None,
                    threads: 4,
                },
            )
            .unwrap()
        });
        out.push(OfflineResult {
            workload: "multi-window(4)".into(),
            spark_ms,
            openmldb_ms: ours_ms,
        });
    }

    // --- skewed data ---------------------------------------------------------
    {
        let data = micro_rows(&MicroConfig {
            rows,
            distinct_keys: 16,
            key_skew: 1.4,
            ..Default::default()
        });
        let q = compile(&micro_sql(1, 0, 20_000, false));
        let mut spark = SparkLikeEngine::new();
        let (_, spark_ms) =
            time_once(|| spark.compute_windows(&q, &data, &micro_schema()).unwrap());
        let mut t = Tables::new();
        t.insert("t1".into(), data.clone());
        let (_, ours_ms) = time_once(|| {
            execute_batch(
                &q,
                &t,
                &OfflineOptions {
                    mode: WindowExecMode::Incremental,
                    parallel_windows: true,
                    skew: Some(SkewConfig {
                        factor: 4,
                        hot_threshold: 0.2,
                    }),
                    threads: 4,
                },
            )
            .unwrap()
        });
        out.push(OfflineResult {
            workload: "skewed(zipf 1.4)".into(),
            spark_ms,
            openmldb_ms: ours_ms,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                fmt(r.spark_ms),
                fmt(r.openmldb_ms),
                format!("{:.1}x", r.spark_ms / r.openmldb_ms),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 8: offline MicroBench, ms ({rows} rows)"),
        &["workload", "Spark-like", "OpenMLDB", "speedup"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn openmldb_faster_than_spark_fig08() {
        for r in crate::harness::with_scale(0.05, super::run) {
            assert!(
                r.openmldb_ms < r.spark_ms,
                "{}: OpenMLDB {:.1}ms vs Spark {:.1}ms",
                r.workload,
                r.openmldb_ms,
                r.spark_ms
            );
        }
    }
}
