//! **Figure 6** — Online MicroBench performance comparison.
//!
//! Paper result: OpenMLDB beats MySQL(in-mem) by >68% latency, DuckDB by
//! 87.7%, Trino+Redis by >96%, with >17× throughput over the baselines.
//!
//! Workload: request-mode feature queries (window aggregates + LAST JOIN)
//! over the three MicroBench stream tables; each system stores the same
//! rows and answers the same window.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use openmldb_baselines::{DuckDbLikeTable, MySqlLikeTable, TrinoRedisLike};
use openmldb_types::Value;
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_specs, micro_sql};

const FRAME_MS: i64 = 60_000;

pub fn run() -> Vec<(String, LatencyStats)> {
    let rows = scaled(20_000);
    let keys = 20usize;
    let requests = scaled(2_000);
    let cfg = MicroConfig {
        rows,
        distinct_keys: keys,
        ..Default::default()
    };
    let data = micro_rows(&cfg);
    let max_ts = data.iter().map(|r| r.ts_at(5)).max().unwrap_or(0);
    let specs = micro_specs();
    let spec_refs: Vec<_> = specs.iter().collect();
    let mut rng = StdRng::seed_from_u64(7);
    let mut reqs: Vec<(i64, i64)> = Vec::with_capacity(requests);
    for _ in 0..requests {
        reqs.push((
            rng.gen_range(0..keys as i64),
            max_ts + rng.gen_range(0..100i64),
        ));
    }

    let mut results: Vec<(String, LatencyStats)> = Vec::new();

    // --- OpenMLDB: deployed plan, request mode -------------------------
    {
        let db = micro_db(rows, keys, 0.0, 1);
        db.deploy(&format!(
            "DEPLOY f6 AS {}",
            micro_sql(1, 1, FRAME_MS, false)
        ))
        .unwrap();
        let samples = time_each(requests, |i| {
            let (k, ts) = reqs[i];
            db.request_readonly("f6", &micro_request(1_000_000 + i as i64, k, ts))
                .unwrap()
        });
        results.push(("OpenMLDB".into(), LatencyStats::from_samples(samples)));
    }

    // --- MySQL(in-mem)-like --------------------------------------------
    {
        let mut mysql = MySqlLikeTable::new(micro_schema(), 5);
        for row in &data {
            mysql
                .insert(&row[1].to_string(), row.ts_at(5), row)
                .unwrap();
        }
        // MySQL executes interpreted SQL: every request re-parses the
        // statement (no compiled-plan reuse — the paper's point about
        // missing compilation caching).
        let sql_text = micro_sql(1, 1, FRAME_MS, false);
        let samples = time_each(requests, |i| {
            let parsed = openmldb_sql::parse_select(&sql_text).unwrap();
            std::hint::black_box(&parsed);
            let (k, ts) = reqs[i];
            let out = mysql
                .window_query(&k.to_string(), ts - FRAME_MS, ts, &spec_refs)
                .unwrap();
            let joined = mysql.latest(&k.to_string()).unwrap();
            (out, joined)
        });
        results.push((
            "MySQL(in-mem)-like".into(),
            LatencyStats::from_samples(samples),
        ));
    }

    // --- DuckDB-like -----------------------------------------------------
    {
        let mut duck = DuckDbLikeTable::new(micro_schema());
        for row in &data {
            duck.insert(row).unwrap();
        }
        let samples = time_each(requests, |i| {
            let (k, ts) = reqs[i];
            duck.window_query(1, &Value::Bigint(k), 5, ts - FRAME_MS, ts, &spec_refs)
                .unwrap()
        });
        results.push(("DuckDB-like".into(), LatencyStats::from_samples(samples)));
    }

    // --- Trino+Redis-like --------------------------------------------------
    {
        let mut trino = TrinoRedisLike::new(micro_schema());
        for row in &data {
            trino.put(&row[1].to_string(), row.ts_at(5), row);
        }
        trino.sync();
        let samples = time_each(requests, |i| {
            let (k, ts) = reqs[i];
            trino
                .window_query(&k.to_string(), ts - FRAME_MS, ts, &spec_refs)
                .unwrap()
        });
        results.push((
            "Trino+Redis-like".into(),
            LatencyStats::from_samples(samples),
        ));
    }

    let base_qps = results[0].1.qps;
    let table: Vec<Vec<String>> = results
        .iter()
        .map(|(name, s)| {
            vec![
                name.clone(),
                fmt(s.mean_ms),
                fmt(s.p99_ms),
                fmt(s.qps),
                format!("{:.1}x", base_qps / s.qps),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 6: online MicroBench ({rows} rows/stream, {requests} requests)"),
        &["system", "mean ms", "p99 ms", "qps", "OpenMLDB speedup"],
        &table,
    );
    results
}

#[cfg(test)]
mod tests {
    #[test]
    fn openmldb_wins_fig06() {
        // Large enough that DuckDB's O(table) scan loses to our O(window)
        // path in debug builds too (tiny tables make flat scans free).
        let results = crate::harness::with_scale(0.4, super::run);
        let ours = results[0].1.qps;
        for (name, stats) in &results[1..] {
            assert!(
                ours > stats.qps,
                "OpenMLDB ({ours:.0} qps) should beat {name} ({:.0} qps)",
                stats.qps
            );
        }
    }
}
