//! **Figure 13** — Data-skew optimization.
//!
//! Paper result: OpenMLDB without skew optimization already beats Spark
//! ~4×; skew factor 4 reaches 10.1× over Spark and >2× over the
//! unoptimized engine.

use openmldb_baselines::SparkLikeEngine;
use openmldb_offline::{compute_windows, OfflineOptions, SkewConfig, Tables, WindowExecMode};
use openmldb_sql::{compile_select, parse_select};
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, results_close, scaled, time_once};
use crate::scenarios::micro_sql;

pub struct SkewResult {
    pub config: String,
    pub ms: f64,
}

struct SchemaCat;
impl openmldb_sql::Catalog for SchemaCat {
    fn table_schema(&self, name: &str) -> Option<openmldb_types::Schema> {
        (name == "t1").then(micro_schema)
    }
}

pub fn run() -> Vec<SkewResult> {
    let rows = scaled(60_000);
    // Hot key holds most of the data.
    let data = micro_rows(&MicroConfig {
        rows,
        distinct_keys: 8,
        key_skew: 1.6,
        ts_step_ms: 1,
        ..Default::default()
    });
    let q = compile_select(
        &parse_select(&micro_sql(1, 0, 20_000, false)).unwrap(),
        &SchemaCat,
    )
    .unwrap();
    let tables = Tables::new();
    let mut out = Vec::new();

    let mut spark = SparkLikeEngine::new();
    let (spark_res, spark_ms) =
        time_once(|| spark.compute_windows(&q, &data, &micro_schema()).unwrap());
    out.push(SkewResult {
        config: "Spark-like".into(),
        ms: spark_ms,
    });

    let base = OfflineOptions {
        parallel_windows: true,
        threads: 4,
        skew: None,
        mode: WindowExecMode::Incremental,
    };
    let (no_skew_res, no_skew_ms) =
        time_once(|| compute_windows(&q, &tables, &data, &base).unwrap());
    assert!(
        results_close(&spark_res, &no_skew_res),
        "semantics preserved vs Spark"
    );
    out.push(SkewResult {
        config: "OpenMLDB w/o skew-opt".into(),
        ms: no_skew_ms,
    });

    for factor in [2usize, 4] {
        let opts = OfflineOptions {
            skew: Some(SkewConfig {
                factor,
                hot_threshold: 0.2,
            }),
            ..base.clone()
        };
        let (res, ms) = time_once(|| compute_windows(&q, &tables, &data, &opts).unwrap());
        assert!(
            results_close(&res, &no_skew_res),
            "skew {factor} preserves results"
        );
        out.push(SkewResult {
            config: format!("OpenMLDB skew {factor}"),
            ms,
        });
    }

    let spark_ms = out[0].ms;
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                fmt(r.ms),
                format!("{:.1}x", spark_ms / r.ms),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 13: data-skew optimization, ms ({rows} rows, zipf 1.6)"),
        &["configuration", "time ms", "vs Spark"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn skew_optimization_improves_over_spark_and_baseline() {
        let results = crate::harness::with_scale(0.2, super::run);
        let spark = results[0].ms;
        let no_skew = results[1].ms;
        let skew4 = results[3].ms;
        assert!(
            no_skew < spark,
            "unoptimized OpenMLDB beats Spark: {no_skew:.1} vs {spark:.1}"
        );
        assert!(
            skew4 < spark,
            "skew-4 beats Spark: {skew4:.1} vs {spark:.1}"
        );
    }
}
