//! Design-choice ablations beyond the paper's figures (DESIGN.md §6):
//!
//! * **bucket granularity** — how the pre-aggregation level layout
//!   (fine / coarse / multi-level) trades query latency against bucket
//!   count (Section 5.1's hierarchy-selection discussion);
//! * **rebalance period** — how often the self-adjusting window union
//!   re-maps keys to workers (Section 5.2's scheduler knob).

use openmldb_online::{PreAggregator, Scheduling, UnionConfig, WindowUnion};
use openmldb_sql::ast::Frame;
use openmldb_sql::functions::lookup;
use openmldb_sql::plan::{BoundAggregate, BoundWindow, PhysExpr};
use openmldb_types::{DataType, KeyValue, Row, Value};
use openmldb_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{fmt, print_table, scaled, time_each, time_once, LatencyStats};
use crate::scenarios::micro_specs;

pub struct BucketPoint {
    pub label: String,
    pub query_ms: f64,
    pub bucket_merges: u64,
    /// Total timestamp span the queries had to cover from raw data (the
    /// uncovered edges — smaller is better).
    pub raw_span_ms: u64,
}

fn window() -> BoundWindow {
    BoundWindow {
        name: "w".into(),
        merged_names: vec!["w".into()],
        partition_cols: vec![0],
        order_col: 2,
        order_desc: false,
        frame: Frame::RowsRange {
            preceding_ms: 1 << 40,
        },
        maxsize: None,
        exclude_current_row: false,
        instance_not_in_window: false,
        union_tables: vec![],
    }
}

fn sum_count() -> Vec<BoundAggregate> {
    ["sum", "count"]
        .into_iter()
        .map(|f| BoundAggregate {
            window_id: 0,
            func: lookup(f).unwrap(),
            args: vec![PhysExpr::Column(1)],
            output_type: DataType::Bigint,
        })
        .collect()
}

/// Pre-aggregation bucket-granularity ablation over one large window.
pub fn run_bucket_granularity() -> Vec<BucketPoint> {
    let rows = scaled(500_000);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Bigint(0),
                Value::Bigint((i % 100) as i64),
                Value::Timestamp(i as i64),
            ])
        })
        .collect();
    let span = rows as i64;
    let configs: Vec<(String, Vec<i64>)> = vec![
        ("fine (span/10000)".into(), vec![span / 10_000 + 1]),
        ("coarse (span/50)".into(), vec![span / 50 + 1]),
        ("two-level".into(), vec![span / 10_000 + 1, span / 50 + 1]),
        (
            "three-level".into(),
            vec![span / 10_000 + 1, span / 500 + 1, span / 50 + 1],
        ),
    ];
    let mut out = Vec::new();
    for (label, buckets) in configs {
        let preagg = PreAggregator::new(&window(), &sum_count(), buckets).unwrap();
        for row in &data {
            preagg.ingest(row).unwrap();
        }
        let key = vec![KeyValue::Int(0)];
        let raw_span = std::cell::Cell::new(0u64);
        let samples = time_each(200, |i| {
            // Misaligned windows force edge handling every time.
            let hi = span - 1 - (i as i64 % 37);
            let lo = (i as i64 * 13) % (span / 3);
            preagg
                .query(&key, lo, hi, |l, h| {
                    raw_span.set(raw_span.get() + (h - l + 1) as u64);
                    Ok(Vec::new())
                })
                .unwrap()
        });
        let stats = LatencyStats::from_samples(samples);
        out.push(BucketPoint {
            label,
            query_ms: stats.mean_ms,
            bucket_merges: preagg.level_hits().iter().sum(),
            raw_span_ms: raw_span.get(),
        });
    }
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                fmt(r.query_ms),
                r.bucket_merges.to_string(),
                r.raw_span_ms.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: pre-agg bucket granularity ({rows} rows, 200 queries)"),
        &["levels", "query ms", "bucket merges", "raw edge span"],
        &table,
    );
    out
}

pub struct RebalancePoint {
    pub period: usize,
    pub tuples_per_sec: f64,
    pub rebalances: u64,
    pub imbalance: f64,
}

/// Window-union rebalance-period ablation under zipf keys.
pub fn run_rebalance_period() -> Vec<RebalancePoint> {
    let tuples = scaled(40_000);
    let mut out = Vec::new();
    for period in [500usize, 2_000, 8_000, usize::MAX] {
        let mut union = WindowUnion::new(
            UnionConfig {
                workers: 4,
                frame: Frame::RowsRange {
                    preceding_ms: 5_000,
                },
                scheduling: if period == usize::MAX {
                    Scheduling::StaticHash
                } else {
                    Scheduling::SelfAdjusting {
                        rebalance_every: period,
                    }
                },
                incremental: true,
            },
            micro_specs(),
        )
        .unwrap();
        let zipf = Zipf::new(64, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        let (_, ms) = time_once(|| {
            for i in 0..tuples {
                union.push(
                    KeyValue::Int(zipf.sample(&mut rng) as i64),
                    i as i64,
                    Row::new(vec![
                        Value::Bigint(i as i64),
                        Value::Bigint(0),
                        Value::Double(1.0),
                        Value::string("c"),
                        Value::Int(1),
                        Value::Timestamp(i as i64),
                    ]),
                );
            }
            union.flush();
        });
        out.push(RebalancePoint {
            period,
            tuples_per_sec: tuples as f64 / (ms / 1_000.0),
            rebalances: union.rebalances(),
            imbalance: union.imbalance(),
        });
    }
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                if r.period == usize::MAX {
                    "static".into()
                } else {
                    r.period.to_string()
                },
                fmt(r.tuples_per_sec),
                r.rebalances.to_string(),
                format!("{:.2}", r.imbalance),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: union rebalance period ({tuples} zipf tuples, 4 workers)"),
        &["period", "tuples/s", "rebalances", "max/mean load"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn multi_level_reduces_edge_rows_vs_coarse_only() {
        let points = crate::harness::with_scale(0.05, super::run_bucket_granularity);
        let coarse = points
            .iter()
            .find(|p| p.label.starts_with("coarse"))
            .unwrap();
        let two = points.iter().find(|p| p.label == "two-level").unwrap();
        // Coarse-only pays wide raw scans at the edges every query; adding a
        // fine level shrinks the uncovered span dramatically.
        assert!(
            two.raw_span_ms * 5 < coarse.raw_span_ms,
            "two-level edge span ({}) should be far below coarse-only ({})",
            two.raw_span_ms,
            coarse.raw_span_ms
        );
    }

    #[test]
    fn frequent_rebalancing_reduces_imbalance() {
        let points = crate::harness::with_scale(0.1, super::run_rebalance_period);
        let frequent = &points[0];
        let static_routing = points.last().unwrap();
        assert!(frequent.rebalances > 0);
        assert!(
            frequent.imbalance <= static_routing.imbalance * 1.2,
            "frequent rebalancing ({:.2}) should not be more imbalanced than static ({:.2})",
            frequent.imbalance,
            static_routing.imbalance
        );
    }
}
