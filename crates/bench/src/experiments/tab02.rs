//! **Table 2** — Memory saved by OpenMLDB vs (Trino+)Redis.
//!
//! Paper result on TalkingData-like rows keyed by ip:
//!
//! | tuples | reduction |
//! |---|---|
//! | 10,000 | 74.77% |
//! | 100,000 | 67.79% |
//! | 1,000,000 | 50.90% |
//! | 10,000,000 | 46.86% |
//! | 184,903,890 | 45.66% |
//!
//! The reduction shrinks with scale because Redis's fixed hash-table costs
//! amortize; the per-entry string-encoding tax remains.

use std::sync::Arc;

use openmldb_baselines::RedisLikeStore;
use openmldb_storage::{IndexSpec, MemTable, Ttl};
use openmldb_workload::{talkingdata_rows, talkingdata_schema};

use crate::harness::{print_table, scale};

pub struct MemoryRow {
    pub tuples: usize,
    pub redis_bytes: usize,
    pub openmldb_bytes: usize,
    pub reduction_pct: f64,
}

pub fn run() -> Vec<MemoryRow> {
    // Paper sweeps 10K → 185M; default here 10K → 1M (BENCH_SCALE raises it).
    let mut sizes = vec![10_000usize, 100_000, 1_000_000];
    if scale() > 1.0 {
        sizes.push((10_000_000_f64 * (scale() / 10.0)) as usize);
    }
    run_with_sizes(&sizes)
}

/// The sweep at explicit sizes (tests use small ones).
pub fn run_with_sizes(sizes: &[usize]) -> Vec<MemoryRow> {
    let mut out = Vec::new();
    for &tuples in sizes {
        let distinct_ips = (tuples / 50).max(10); // heavy ip sharing
        let rows = talkingdata_rows(tuples, distinct_ips, 5);

        let table = Arc::new(
            MemTable::new(
                "clicks",
                talkingdata_schema(),
                vec![IndexSpec {
                    name: "by_ip".into(),
                    key_cols: vec![0],
                    ts_col: Some(5),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        );
        let mut redis = RedisLikeStore::new();
        for row in &rows {
            table.put(row).unwrap();
            redis.put(&format!("ip:{}", row[0]), row.ts_at(5), row);
        }
        let openmldb_bytes = table.mem_used();
        let redis_bytes = redis.mem_used();
        out.push(MemoryRow {
            tuples,
            redis_bytes,
            openmldb_bytes,
            reduction_pct: 100.0 * (1.0 - openmldb_bytes as f64 / redis_bytes as f64),
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.tuples.to_string(),
                r.redis_bytes.to_string(),
                r.openmldb_bytes.to_string(),
                format!("{:.2}%", r.reduction_pct),
            ]
        })
        .collect();
    print_table(
        "Table 2: memory, bytes (Redis-like vs OpenMLDB)",
        &["#-tuples", "Redis mem", "OpenMLDB mem", "reduction"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn memory_reduction_over_40_percent() {
        // Small footprint version of the sweep.
        // Serialized with the timing tests (shared CPU budget).
        let rows = crate::harness::with_scale(1.0, || super::run_with_sizes(&[10_000, 50_000]));
        for r in &rows {
            assert!(
                r.reduction_pct > 40.0,
                "paper reports 45–75% reductions; got {:.1}% at {} tuples",
                r.reduction_pct,
                r.tuples
            );
        }
    }
}
