//! **Recovery** — seeded crash-and-restart cycles against the durable WAL +
//! snapshot spine.
//!
//! One golden process per snapshot-interval config writes a durable
//! directory (rows inserted through the normal path, periodic
//! `snapshot_now`, final `sync_durable`). Each seeded cycle then models a
//! process crash: copy the directory, sever the WAL at a schedule-chosen
//! byte offset (any offset — including mid-record torn writes), drop
//! snapshots that could not have existed at that point in time (their
//! covered offset exceeds the surviving durable log), sometimes tear the
//! newest surviving snapshot mid-file, and `Database::recover` the wreck.
//!
//! The oracle is byte identity: the recovered table's binlog digest
//! ([`Database::table_digest`], FNV-1a over the canonical WAL encoding)
//! must equal the digest of exactly the surviving on-disk records — zero
//! lost rows, zero duplicated rows, no corruption — and the row count must
//! match the surviving record count. Any mismatch is a violation; the
//! `run_all` gate exits non-zero on the first one. Results (recovery time
//! vs WAL length, snapshot-interval sweep) land in
//! `target/BENCH_recovery.json` (override with `BENCH_RECOVERY_JSON`).
//!
//! With the `chaos` feature compiled in, the golden run of the densest
//! config additionally arms `WalFsync` and `SnapshotWrite` kills, so the
//! durable watermark lags the written log and some snapshot attempts die
//! mid-write exactly as a crash would leave them.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use openmldb_chaos::{CrashSchedule, InjectionPoint, Plan};
use openmldb_core::{digest_entries, Database};
use openmldb_online::TableProvider;
use openmldb_storage::{snapshot, wal};
use openmldb_types::{Row, Value};

use crate::harness::{fmt, print_table, scaled};

/// Deterministic seed for the crash schedule and chaos plan.
pub const SEED: u64 = 0xD15C_0BE5;

/// Rows the golden run writes per config.
fn golden_rows() -> usize {
    scaled(400)
}

/// Seeded crash/restart cycles per snapshot config (3 configs × this).
fn cycles_per_config() -> usize {
    scaled(170)
}

/// Outcome of one snapshot-interval config.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Rows between snapshots in the golden run (0 = never snapshot).
    pub snapshot_every: usize,
    pub cycles: usize,
    pub violations: usize,
    pub mean_recovery_ms: f64,
    pub max_recovery_ms: f64,
    /// Mean recovery ms for cycles whose surviving WAL length fell in the
    /// bottom / middle / top third of the row range — the recovery-time vs
    /// WAL-length curve.
    pub ms_by_wal_third: [f64; 3],
    /// Snapshots the golden run managed to publish.
    pub snapshots_published: usize,
}

#[derive(Debug, Clone)]
pub struct RecoveryResult {
    pub chaos_enabled: bool,
    pub rows: usize,
    pub cycles: usize,
    pub violations: usize,
    pub gate_failed: bool,
    pub outcomes: Vec<RecoveryOutcome>,
    pub json: String,
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "openmldb-bench-recovery-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mk_row(i: usize) -> Row {
    Row::new(vec![
        Value::Bigint((i % 16) as i64),
        Value::Double(i as f64 * 0.5),
        Value::Timestamp(1_000 + i as i64 * 7),
    ])
}

/// Write the golden durable directory for one config; returns the
/// directory and the number of snapshots that actually published.
fn golden_run(snapshot_every: usize, arm_chaos: bool) -> (PathBuf, usize) {
    let dir = tmp_dir(&format!("golden_{snapshot_every}"));
    if arm_chaos {
        openmldb_chaos::install(
            Plan::new(SEED)
                .kill_rate(InjectionPoint::WalFsync, 0.2)
                .kill_rate(InjectionPoint::SnapshotWrite, 0.2),
        );
    }
    let db = Database::recover(&dir).unwrap();
    db.execute("CREATE TABLE t (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
        .unwrap();
    let mut published = 0usize;
    for i in 0..golden_rows() {
        db.insert_row("t", &mk_row(i)).unwrap();
        if snapshot_every > 0 && (i + 1) % snapshot_every == 0 {
            // Under an armed SnapshotWrite kill this attempt can die
            // mid-write, leaving a partial tmp file — exactly the artifact
            // recovery must shrug off.
            if let Ok(n) = db.snapshot_now() {
                published += n;
            }
        }
    }
    db.sync_durable().unwrap();
    if arm_chaos {
        openmldb_chaos::reset();
    }
    (dir, published)
}

/// One seeded crash/restart cycle. Returns `(recovery_ms, surviving_rows,
/// violation)`.
fn crash_cycle(golden: &Path, schedule: &CrashSchedule, k: u64) -> (f64, u64, Option<String>) {
    let cycle = tmp_dir("cycle");
    if let Err(e) = copy_dir(golden, &cycle) {
        return (0.0, 0, Some(format!("cycle copy failed: {e}")));
    }
    let wal_dir = cycle.join("wal").join("t");
    let snap_dir = cycle.join("snap");

    // Sever the WAL at a seeded byte offset — mid-record cuts included.
    let total = wal::total_bytes(&wal_dir).unwrap_or(0);
    let cut = schedule.crash_bytes(k, total);
    if wal::truncate_to(&wal_dir, cut).is_err() {
        let _ = fs::remove_dir_all(&cycle);
        return (0.0, 0, Some("wal truncate failed".into()));
    }

    // What actually survives on disk: full records before the cut.
    let scan = match wal::read_dir(&wal_dir) {
        Ok(s) => s,
        Err(e) => {
            let _ = fs::remove_dir_all(&cycle);
            return (0.0, 0, Some(format!("wal scan failed: {e}")));
        }
    };
    let n = scan.records.len() as u64;
    let expected = digest_entries(scan.records.iter().map(|r| &r.entry));

    // Time consistency: a snapshot covering offsets past the durable log
    // could not have existed when the process died — drop it. Then maybe
    // tear the newest survivor mid-file (the same crash severed it).
    let mut survivors = Vec::new();
    if let Ok(list) = snapshot::list(&snap_dir, "t") {
        for (covered, path) in list {
            if covered > n {
                let _ = fs::remove_file(&path);
            } else {
                survivors.push(path);
            }
        }
    }
    if schedule.tear_snapshot(k) {
        if let Some(newest) = survivors.first() {
            let _ = snapshot::tear_for_test(newest, 0.5);
        }
    }

    let t0 = Instant::now();
    let recovered = Database::recover(&cycle);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let violation = match recovered {
        Err(e) => Some(format!("cycle {k}: recover failed: {e}")),
        Ok(db) => {
            let rows = db.table("t").map(|t| t.row_count() as u64).unwrap_or(0);
            let digest = db.table_digest("t");
            match digest {
                Err(e) => Some(format!("cycle {k}: digest failed: {e}")),
                Ok(d) if d != expected => Some(format!(
                    "cycle {k}: digest mismatch after recovering {rows} rows \
                     (expected WAL prefix of {n} records): {d:#x} != {expected:#x}"
                )),
                Ok(_) if rows != n => Some(format!(
                    "cycle {k}: row count {rows} != surviving records {n} \
                     (lost or duplicated rows)"
                )),
                Ok(_) => None,
            }
        }
    };
    let _ = fs::remove_dir_all(&cycle);
    (ms, n, violation)
}

pub fn run() -> RecoveryResult {
    let rows = golden_rows();
    let cycles = cycles_per_config();
    // Snapshot interval sweep: never / sparse / dense.
    let configs = [0usize, rows / 4, rows / 16];
    let chaos_enabled = openmldb_chaos::enabled();

    let mut outcomes = Vec::new();
    for (ci, &snapshot_every) in configs.iter().enumerate() {
        // Arm WAL-fsync / snapshot-write kills only on the densest config
        // (and only when the chaos feature is compiled in).
        let arm = chaos_enabled && ci == configs.len() - 1;
        let (golden, published) = golden_run(snapshot_every, arm);
        let schedule = CrashSchedule::new(SEED ^ (ci as u64).wrapping_mul(0x9E37_79B9));

        let mut violations = 0usize;
        let mut first_violation: Option<String> = None;
        let mut samples: Vec<(u64, f64)> = Vec::with_capacity(cycles);
        for k in 0..cycles as u64 {
            let (ms, n, violation) = crash_cycle(&golden, &schedule, k);
            samples.push((n, ms));
            if let Some(v) = violation {
                violations += 1;
                if first_violation.is_none() {
                    eprintln!("recovery violation: {v}");
                    first_violation = Some(v);
                }
            }
        }
        let _ = fs::remove_dir_all(&golden);

        let mean = samples.iter().map(|(_, ms)| ms).sum::<f64>() / samples.len().max(1) as f64;
        let max = samples.iter().map(|(_, ms)| *ms).fold(0.0, f64::max);
        let third = (rows as u64 / 3).max(1);
        let mut ms_by_wal_third = [0.0f64; 3];
        for (b, bucket) in ms_by_wal_third.iter_mut().enumerate() {
            let in_bucket: Vec<f64> = samples
                .iter()
                .filter(|(n, _)| (n / third).min(2) as usize == b)
                .map(|(_, ms)| *ms)
                .collect();
            *bucket = in_bucket.iter().sum::<f64>() / in_bucket.len().max(1) as f64;
        }
        outcomes.push(RecoveryOutcome {
            snapshot_every,
            cycles,
            violations,
            mean_recovery_ms: mean,
            max_recovery_ms: max,
            ms_by_wal_third,
            snapshots_published: published,
        });
    }

    let total_cycles = cycles * configs.len();
    let violations: usize = outcomes.iter().map(|o| o.violations).sum();
    let gate_failed = violations > 0;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"recovery\",");
    let _ = writeln!(json, "  \"chaos_enabled\": {chaos_enabled},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"cycles\": {total_cycles},");
    let _ = writeln!(json, "  \"violations\": {violations},");
    json.push_str("  \"configs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"snapshot_every\": {}, \"cycles\": {}, \"violations\": {}, \
             \"snapshots_published\": {}, \"mean_recovery_ms\": {:.6}, \
             \"max_recovery_ms\": {:.6}, \"ms_by_wal_third\": [{:.6}, {:.6}, {:.6}]}}{}",
            o.snapshot_every,
            o.cycles,
            o.violations,
            o.snapshots_published,
            o.mean_recovery_ms,
            o.max_recovery_ms,
            o.ms_by_wal_third[0],
            o.ms_by_wal_third[1],
            o.ms_by_wal_third[2],
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_RECOVERY_JSON")
        .unwrap_or_else(|_| "target/BENCH_recovery.json".into());
    if let Some(dir) = Path::new(&path).parent() {
        let _ = fs::create_dir_all(dir);
    }
    match fs::write(&path, &json) {
        Ok(()) => println!("recovery snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let table: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                if o.snapshot_every == 0 {
                    "never".into()
                } else {
                    format!("every {}", o.snapshot_every)
                },
                o.cycles.to_string(),
                o.violations.to_string(),
                o.snapshots_published.to_string(),
                fmt(o.mean_recovery_ms),
                fmt(o.max_recovery_ms),
                fmt(o.ms_by_wal_third[0]),
                fmt(o.ms_by_wal_third[2]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Recovery: {total_cycles} seeded crash/restart cycles over {rows} rows \
             (digest oracle, chaos {})",
            if chaos_enabled { "on" } else { "off" }
        ),
        &[
            "snapshots",
            "cycles",
            "violations",
            "published",
            "mean ms",
            "max ms",
            "short-wal ms",
            "long-wal ms",
        ],
        &table,
    );

    RecoveryResult {
        chaos_enabled,
        rows,
        cycles: total_cycles,
        violations,
        gate_failed,
        outcomes,
        json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeded_crash_cycles_recover_byte_identical_state() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert_eq!(result.violations, 0, "{}", result.json);
        assert!(!result.gate_failed);
        assert!(result.json.contains("\"experiment\": \"recovery\""));
        // The dense-snapshot config must actually publish snapshots, so the
        // sweep exercises the snapshot + suffix path, not just full replay.
        let dense = result.outcomes.last().unwrap();
        assert!(
            dense.snapshots_published > 0,
            "dense config published no snapshots: {}",
            result.json
        );
    }
}
