//! **Section 8.1** — storage-engine placement: in-memory vs disk-backed
//! tables behind the same deployment.
//!
//! Paper guidance: the in-memory engine serves ~10 ms-class budgets; when a
//! 20–30 ms budget is acceptable, the disk engine saves ~80% of hardware
//! cost. Both backends sit behind the same `DataTable` surface, so the
//! deployment (and its feature values) are identical — only the latency and
//! the resident-memory profile change.

use std::sync::Arc;

use openmldb_core::Database;
use openmldb_storage::{DataTable, DiskTable, IndexSpec, MemTable, Ttl};
use openmldb_types::Value;
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_request, micro_sql};

pub struct BackendResult {
    pub backend: String,
    pub mean_ms: f64,
    pub p99_ms: f64,
    pub resident_bytes: usize,
}

fn index_spec() -> IndexSpec {
    IndexSpec {
        name: "by_k".into(),
        key_cols: vec![1],
        ts_col: Some(5),
        ttl: Ttl::Unlimited,
    }
}

pub fn run() -> Vec<BackendResult> {
    let rows = scaled(60_000);
    let requests = scaled(400);
    let data = micro_rows(&MicroConfig {
        rows,
        distinct_keys: 50,
        ts_step_ms: 1,
        ..Default::default()
    });
    let max_ts = data.last().map(|r| r.ts_at(5)).unwrap_or(0);
    let sql = micro_sql(1, 0, 2_000, false);

    let mut out = Vec::new();
    let mut reference: Option<openmldb_types::Row> = None;
    for backend in ["memory", "disk"] {
        let db = Database::new();
        let table: Arc<dyn DataTable> = match backend {
            "memory" => Arc::new(MemTable::new("t1", micro_schema(), vec![index_spec()]).unwrap()),
            _ => Arc::new(DiskTable::new("t1", micro_schema(), vec![index_spec()]).unwrap()),
        };
        for row in &data {
            table.put(row).unwrap();
        }
        let resident_bytes = table.mem_used();
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
        db.deploy(&format!("DEPLOY b AS {sql}")).unwrap();
        let stats = LatencyStats::from_samples(time_each(requests, |i| {
            db.request_readonly("b", &micro_request(i as i64, (i % 50) as i64, max_ts))
                .unwrap()
        }));
        // Identical feature values across backends.
        let probe = db
            .request_readonly("b", &micro_request(0, 7, max_ts))
            .unwrap();
        match &reference {
            None => reference = Some(probe),
            Some(r) => {
                for (a, b) in r.values().iter().zip(probe.values()) {
                    match (a, b) {
                        (Value::Double(x), Value::Double(y)) => {
                            assert!((x - y).abs() < 1e-9)
                        }
                        _ => assert_eq!(a, b),
                    }
                }
            }
        }
        out.push(BackendResult {
            backend: backend.into(),
            mean_ms: stats.mean_ms,
            p99_ms: stats.p99_ms,
            resident_bytes,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                fmt(r.mean_ms),
                fmt(r.p99_ms),
                r.resident_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("§8.1: storage-backend placement ({rows} rows, {requests} requests)"),
        &["backend", "mean ms", "p99 ms", "resident bytes"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_backends_serve_and_memory_is_leaner_on_disk() {
        let results = crate::harness::with_scale(0.1, super::run);
        let mem = &results[0];
        let disk = &results[1];
        // Disk trades latency for resident memory (the §8.1 trade).
        assert!(
            disk.resident_bytes < mem.resident_bytes,
            "disk resident {} should undercut memory {}",
            disk.resident_bytes,
            mem.resident_bytes
        );
        // Both stay well under interactive budgets at this scale.
        assert!(mem.mean_ms < 50.0 && disk.mean_ms < 200.0);
    }
}
