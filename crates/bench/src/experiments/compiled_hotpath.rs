//! **Compiled hotpath** — payoff of deploy-time plan specialization.
//!
//! Measures the fig06-style request loop three ways at the same scale: the
//! compiled streaming path (the deployment default — specialized bytecode
//! kernels folding raw row bytes), the interpreted streaming path (the same
//! plan with specialization pinned off via
//! [`Deployment::with_interpreted_windows`]), and the pre-aggregation path —
//! reporting p50/p99 latency and, via the counting global allocator,
//! allocations per request. Two properties gate `run_all`:
//!
//! * the compiled path is **≥2× faster at p50** than interpreted streaming
//!   at full scale ([`MIN_P50_SPEEDUP`]; reduced-scale smoke runs use the
//!   relaxed [`MIN_P50_SPEEDUP_REDUCED`], since fixed scan overhead
//!   dominates tiny windows);
//! * one warm pass of the compiled fold stage — scan→arena→order
//!   detection→kernel `run`→`outputs_into` — performs **zero** allocations.
//!
//! The snapshot is written to `target/BENCH_compiled.json` (override with
//! `BENCH_COMPILED_JSON`).

use std::fmt::Write as _;

use openmldb_exec::{EntryOrder, ScanEntry};
use openmldb_online::{Deployment, PreAggregator};
use openmldb_types::{KeyValue, Value};
use openmldb_workload::{micro_rows, MicroConfig};

use crate::alloc_counter;
use crate::harness::{fmt, print_table, scale, scaled, time_each, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Required p50 speedup of the compiled path over interpreted streaming at
/// full (fig06) scale — the acceptance bar for the specialization tier.
pub const MIN_P50_SPEEDUP: f64 = 2.0;

/// Reduced-scale runs (CI smoke, in-module tests) keep a non-regression
/// bar: windows hold only a handful of rows there, so the shared scan and
/// response-building cost caps the achievable ratio well below 2×.
pub const MIN_P50_SPEEDUP_REDUCED: f64 = 1.05;

const FRAME_MS: i64 = 60_000;

/// Latency + allocation profile of one request variant.
#[derive(Debug, Clone)]
pub struct PathStats {
    pub stats: LatencyStats,
    pub allocs_per_request: f64,
}

#[derive(Debug, Clone)]
pub struct CompiledHotpathResult {
    pub requests: usize,
    pub compiled: PathStats,
    pub interpreted: PathStats,
    pub preagg: PathStats,
    /// `interpreted.p50 / compiled.p50`.
    pub p50_speedup: f64,
    /// `interpreted.p99 / compiled.p99`.
    pub p99_speedup: f64,
    /// Allocations of one warm compiled fold-stage pass (must be 0).
    pub compiled_stage_allocs_after_warm: u64,
    /// The threshold applied at the current scale.
    pub min_p50_speedup: f64,
    pub gate_failed: bool,
    pub json: String,
}

pub fn run() -> CompiledHotpathResult {
    let rows = scaled(20_000);
    let keys = 20usize;
    let requests = scaled(2_000);

    let db = micro_db(rows, keys, 0.0, 0);
    let sql = micro_sql(1, 0, FRAME_MS, false);
    db.deploy(&format!("DEPLOY f_cmp AS {sql}")).unwrap();
    let dep = db.deployment("f_cmp").unwrap();
    // The bench is meaningless if the plan silently fell back: pin that the
    // window actually specialized before measuring anything.
    assert_eq!(
        dep.program().compiled_windows(),
        1,
        "fig06-style plan must specialize: {:?}",
        dep.program().fallback_reason(0)
    );
    // Same plan, specialization pinned off — the interpreted baseline.
    let interp = Deployment::new("f_cmp_interp", dep.query.clone()).with_interpreted_windows();

    // Anchor requests just past the generated history (ts_step_ms = 10) so
    // every window scan covers real rows, like fig06.
    let max_ts = rows as i64 * 10;
    let request_at = |i: usize| {
        micro_request(
            4_000_000 + i as i64,
            (i % keys) as i64,
            max_ts + (i % 100) as i64,
        )
    };

    // Pre-aggregated variant of the same deployment. `micro_db` seeds t1
    // with seed 42, so regenerating the same config replays its rows.
    let data = micro_rows(&MicroConfig {
        rows,
        distinct_keys: keys,
        key_skew: 0.0,
        seed: 42,
        ..Default::default()
    });
    let q = &dep.query;
    let preagg = PreAggregator::new(&q.windows[0], &q.aggregates, vec![FRAME_MS / 100]).unwrap();
    for row in &data {
        preagg.ingest(row).unwrap();
    }
    let preagg_dep = Deployment::new("f_cmp_pre", q.clone()).with_preagg(0, preagg);

    // The three paths agree before anything is measured. Compiled vs
    // interpreted must be bit-identical (same fold order); the preagg path
    // reorders float adds across buckets, so it gets a relative tolerance.
    for i in 0..3 {
        let r = request_at(i * 7);
        let a = openmldb_online::execute_request(&db, &dep, &r).unwrap();
        let b = openmldb_online::execute_request(&db, &interp, &r).unwrap();
        assert_eq!(a, b, "compiled and interpreted paths diverged");
        let c = openmldb_online::execute_request(&db, &preagg_dep, &r).unwrap();
        for (x, y) in a.values().iter().zip(c.values()) {
            match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    assert!(
                        (p - q).abs() / p.abs().max(1.0) < 1e-9,
                        "preagg: {p} vs {q}"
                    )
                }
                _ => assert_eq!(x, y, "preagg path diverged"),
            }
        }
    }

    let measure = |f: &mut dyn FnMut(usize)| -> PathStats {
        // Warm-up: fills scratch pools, histograms, and thread-locals.
        for i in 0..32 {
            f(i);
        }
        let before = alloc_counter::allocations();
        let samples = time_each(requests, &mut *f);
        let allocs = alloc_counter::allocations() - before;
        PathStats {
            stats: LatencyStats::from_samples(samples),
            allocs_per_request: allocs as f64 / requests as f64,
        }
    };

    let compiled = measure(&mut |i| {
        openmldb_online::execute_request(&db, &dep, &request_at(i)).unwrap();
    });
    let interpreted = measure(&mut |i| {
        openmldb_online::execute_request(&db, &interp, &request_at(i)).unwrap();
    });
    let preagg_stats = measure(&mut |i| {
        openmldb_online::execute_request(&db, &preagg_dep, &request_at(i)).unwrap();
    });

    let p50_speedup = interpreted.stats.p50_ms / compiled.stats.p50_ms.max(1e-9);
    let p99_speedup = interpreted.stats.p99_ms / compiled.stats.p99_ms.max(1e-9);
    let compiled_stage_allocs_after_warm = compiled_stage_pass(&db, &dep, max_ts);
    let min_p50_speedup = if scale() >= 1.0 {
        MIN_P50_SPEEDUP
    } else {
        MIN_P50_SPEEDUP_REDUCED
    };
    let gate_failed = p50_speedup < min_p50_speedup || compiled_stage_allocs_after_warm > 0;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"compiled_hotpath\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"frame_ms\": {FRAME_MS},");
    for (name, p) in [
        ("compiled", &compiled),
        ("interpreted", &interpreted),
        ("preagg", &preagg_stats),
    ] {
        let _ = writeln!(
            json,
            "  \"{name}\": {{\"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"mean_ms\": {:.6}, \"qps\": {:.1}, \"allocs_per_request\": {:.2}}},",
            p.stats.p50_ms, p.stats.p99_ms, p.stats.mean_ms, p.stats.qps, p.allocs_per_request
        );
    }
    let _ = writeln!(json, "  \"p50_speedup_vs_interpreted\": {p50_speedup:.3},");
    let _ = writeln!(json, "  \"p99_speedup_vs_interpreted\": {p99_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"compiled_stage_allocs_after_warm\": {compiled_stage_allocs_after_warm},"
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"min_p50_speedup\": {min_p50_speedup:.2}, \"passed\": {}}}",
        !gate_failed
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_COMPILED_JSON")
        .unwrap_or_else(|_| "target/BENCH_compiled.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("compiled hotpath snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let table: Vec<Vec<String>> = [
        ("compiled", &compiled),
        ("interpreted", &interpreted),
        ("preagg", &preagg_stats),
    ]
    .iter()
    .map(|(name, p)| {
        vec![
            name.to_string(),
            fmt(p.stats.p50_ms),
            fmt(p.stats.p99_ms),
            format!("{:.0}", p.stats.qps),
            format!("{:.1}", p.allocs_per_request),
        ]
    })
    .collect();
    print_table(
        &format!(
            "Compiled hotpath: specialized kernels vs interpretation \
             ({requests} requests, p50 speedup {p50_speedup:.2}x, \
             stage allocs {compiled_stage_allocs_after_warm})"
        ),
        &["path", "p50 ms", "p99 ms", "qps", "allocs/req"],
        &table,
    );

    CompiledHotpathResult {
        requests,
        compiled,
        interpreted,
        preagg: preagg_stats,
        p50_speedup,
        p99_speedup,
        compiled_stage_allocs_after_warm,
        min_p50_speedup,
        gate_failed,
        json,
    }
}

/// One warm pass of the compiled fold stage — seek-then-visit scan into a
/// byte arena, scan-order detection (sort only when needed), the hoisted
/// frame guard, monomorphized kernel `run` over raw row bytes with the
/// request row folded last, and `outputs_into` — measured for allocations.
/// Kernel state and buffers are warmed by two untimed passes first.
fn compiled_stage_pass(
    provider: &dyn openmldb_online::TableProvider,
    dep: &Deployment,
    max_ts: i64,
) -> u64 {
    let table = provider.table("t1").expect("t1 registered");
    let index = table.find_index(&[1], Some(5)).expect("by_k index");
    let codec = openmldb_types::CompactCodec::new(dep.query.base_schema.clone());
    let wp = dep.program().window(0).expect("window 0 specialized");
    let mut state = wp.new_state();
    let mut arena: Vec<u8> = Vec::new();
    let mut entries: Vec<ScanEntry> = Vec::new();
    let mut outputs: Vec<Value> = Vec::new();
    let key = [KeyValue::Int(0)];
    let request = micro_request(9_000_000, 0, max_ts);

    let mut pass = || {
        arena.clear();
        entries.clear();
        outputs.clear();
        let mut seq = 0usize;
        table
            .scan_window(
                index,
                &key,
                max_ts - FRAME_MS,
                max_ts,
                None,
                &mut |ts, data| {
                    let start = arena.len();
                    arena.extend_from_slice(data);
                    entries.push(ScanEntry {
                        ts,
                        seq,
                        start,
                        len: data.len(),
                    });
                    seq += 1;
                    true
                },
            )
            .unwrap();
        assert!(!entries.is_empty(), "stage pass must scan real rows");
        // Same order detection the engine runs: a strictly-descending scan
        // replays in reverse without sorting.
        let order = if entries.len() >= 2 && entries.windows(2).all(|w| w[0].ts > w[1].ts) {
            EntryOrder::ReversedScan
        } else {
            entries.sort_unstable_by_key(|e| (e.ts, e.seq));
            EntryOrder::Ascending
        };
        let n = entries.len();
        let first = wp.first_in_frame(n + 1);
        let req = (first < n + 1).then(|| request.values());
        wp.run(
            &mut state,
            &entries,
            first.min(n),
            order,
            &arena,
            req,
            &codec,
            &mut || Ok(()),
        )
        .unwrap();
        wp.outputs_into(&state, &arena, req, &mut outputs).unwrap();
    };
    pass();
    pass();
    alloc_counter::count(pass).1
}

#[cfg(test)]
mod tests {
    #[test]
    fn compiled_path_beats_interpreted_and_stage_is_allocation_free() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert!(
            !result.gate_failed,
            "p50 speedup {:.2}x (need >= {:.2}), stage allocs {}",
            result.p50_speedup, result.min_p50_speedup, result.compiled_stage_allocs_after_warm
        );
        assert_eq!(result.compiled_stage_allocs_after_warm, 0);
        assert!(result.json.contains("\"experiment\": \"compiled_hotpath\""));
    }
}
