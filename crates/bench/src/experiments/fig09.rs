//! **Figure 9** — Offline GLQ (geographic location querying) comparison.
//!
//! Paper result: ~30 ms-class responses from OpenMLDB with 5×→22×+
//! speedups over Spark as the hyper-parameter N grows from 7 to 10;
//! Spark additionally hits OOM on full-table queries.
//!
//! Workload: full-table grid-density statistics at geo precision N — every
//! GPS point is assigned a cell, per-cell occupancy is aggregated, and the
//! densest cells reported. OpenMLDB runs a single in-memory pass over
//! compact rows; the Spark-like engine shuffles `(cell, 1)` pairs between
//! stages through its fat row format, so its cost grows with the number of
//! distinct cells (which grows with N).

use std::collections::HashMap;

use openmldb_exec::scalar::geo_hash;
use openmldb_types::{DataType, Error, Result, Row, RowCodec, Schema, UnsafeRowCodec, Value};
use openmldb_workload::{glq_rows, glq_schema};

use crate::harness::{fmt, print_table, scaled, time_once};

pub struct GlqResult {
    pub n: u32,
    pub openmldb_ms: f64,
    /// None = OOM.
    pub spark_ms: Option<f64>,
    pub distinct_cells: usize,
}

/// OpenMLDB path: one pass, compact decoded rows, in-place hash aggregation.
fn openmldb_grid(rows: &[Row], precision: u32) -> Vec<(i64, u64)> {
    let mut cells: HashMap<i64, u64> = HashMap::new();
    for row in rows {
        let lat = row[1].as_f64().unwrap_or(0.0);
        let lon = row[2].as_f64().unwrap_or(0.0);
        *cells.entry(geo_hash(lat, lon, precision)).or_insert(0) += 1;
    }
    let mut top: Vec<(i64, u64)> = cells.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(32);
    top
}

/// Spark-like path: map stage emits `(cell, 1)` rows serialized through the
/// fat codec into shuffle partitions; reduce stage deserializes and merges;
/// exceeds `budget` → OOM.
fn spark_grid(rows: &[Row], precision: u32, budget: usize) -> Result<Vec<(i64, u64)>> {
    let pair_schema = Schema::from_pairs(&[("cell", DataType::Bigint), ("one", DataType::Bigint)])?;
    let codec = UnsafeRowCodec::new(pair_schema);
    const PARTS: usize = 8;
    let mut shuffle: Vec<Vec<Vec<u8>>> = (0..PARTS).map(|_| Vec::new()).collect();
    let mut bytes = 0usize;
    for row in rows {
        let lat = row[1].as_f64().unwrap_or(0.0);
        let lon = row[2].as_f64().unwrap_or(0.0);
        let cell = geo_hash(lat, lon, precision);
        let buf = codec.encode(&Row::new(vec![Value::Bigint(cell), Value::Bigint(1)]))?;
        bytes += buf.len();
        if budget > 0 && bytes > budget {
            return Err(Error::Storage(format!(
                "spark-like OOM after {bytes} shuffle bytes"
            )));
        }
        shuffle[(cell as u64 % PARTS as u64) as usize].push(buf);
    }
    // Reduce stage: decode + merge, then a second shuffle of the per-cell
    // partials to the collector (cells grow with precision → more volume).
    let mut merged: HashMap<i64, u64> = HashMap::new();
    for part in &shuffle {
        let mut local: HashMap<i64, u64> = HashMap::new();
        for buf in part {
            let row = codec.decode(buf)?;
            *local.entry(row[0].as_i64()?).or_insert(0) += 1;
        }
        for (cell, count) in local {
            let buf = codec.encode(&Row::new(vec![
                Value::Bigint(cell),
                Value::Bigint(count as i64),
            ]))?;
            bytes += buf.len();
            if budget > 0 && bytes > budget {
                return Err(Error::Storage(format!(
                    "spark-like OOM after {bytes} shuffle bytes"
                )));
            }
            let decoded = codec.decode(&buf)?;
            *merged.entry(decoded[0].as_i64()?).or_insert(0) += decoded[1].as_i64()? as u64;
        }
    }
    let mut top: Vec<(i64, u64)> = merged.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(32);
    Ok(top)
}

pub fn run() -> Vec<GlqResult> {
    let rows = glq_rows(scaled(200_000), 12, 17);
    // Budget sized so low N fits and the largest N threatens it when scaled.
    let budget = rows.len() * 40;
    let mut out = Vec::new();
    for n in 7..=10u32 {
        let (ours, ours_ms) = time_once(|| openmldb_grid(&rows, n));
        let (spark, spark_ms) = time_once(|| spark_grid(&rows, n, budget));
        if let Ok(spark_top) = &spark {
            assert_eq!(&ours, spark_top, "same answer at N={n}");
        }
        let glq_schema = glq_schema();
        let _ = glq_schema; // schema documented; rows already conform
        out.push(GlqResult {
            n,
            openmldb_ms: ours_ms,
            spark_ms: spark.is_ok().then_some(spark_ms),
            distinct_cells: ours.first().map(|_| ours.len()).unwrap_or(0),
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("N={}", r.n),
                fmt(r.openmldb_ms),
                r.spark_ms.map(fmt).unwrap_or_else(|| "OOM".into()),
                r.spark_ms
                    .map(|s| format!("{:.1}x", s / r.openmldb_ms))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 9: GLQ full-table geo query, ms ({} tuples)",
            rows.len()
        ),
        &["precision", "OpenMLDB", "Spark-like", "speedup"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn openmldb_faster_on_glq() {
        let results = crate::harness::with_scale(0.25, super::run);
        for r in &results {
            if let Some(spark) = r.spark_ms {
                assert!(
                    r.openmldb_ms < spark,
                    "N={}: OpenMLDB {:.1}ms vs Spark {spark:.1}ms",
                    r.n,
                    r.openmldb_ms
                );
            }
        }
    }
}
