//! **Figure 7** — RTP (item ranking) TopN performance.
//!
//! Paper result: OpenMLDB scales near-linearly from ~0.98 ms (Top1) to
//! ~5 ms (Top8); Flink sits in the sub-100 ms range and GreenPlum worse.
//!
//! The measured unit is one *service step*: ingest `EVENTS_PER_REQUEST` new
//! ranking events, then read the user's TopN. OpenMLDB ingests into the
//! pre-ranked skiplist and computes lazily at request time; the Flink model
//! recomputes the ranking eagerly on every event; the GreenPlum model
//! rescans the full table per read.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use openmldb_baselines::{FlinkLikeTopN, GreenplumLikeRanker};
use openmldb_core::Database;
use openmldb_types::{Row, Value};
use openmldb_workload::{rtp_rows, rtp_schema};

use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};

const WINDOW_MS: i64 = 2_000;
const EVENTS_PER_REQUEST: usize = 20;

pub struct TopNResult {
    pub n: usize,
    pub openmldb_ms: f64,
    pub flink_ms: f64,
    pub greenplum_ms: f64,
}

pub fn run() -> Vec<TopNResult> {
    let events = scaled(50_000);
    let users = 10usize;
    let requests = scaled(500);
    let data = rtp_rows(events, users, 200, 11);
    let max_ts = events as i64;

    // OpenMLDB: a fresh database + deployment per N (matching the fresh
    // baseline state per N) over a `top(score, N)` window.
    let fresh_db = |data: &[Row]| {
        use openmldb_storage::{IndexSpec, MemTable, Ttl};
        use std::sync::Arc;
        let db = Database::new();
        let table = Arc::new(
            MemTable::new(
                "rtp",
                rtp_schema(),
                vec![IndexSpec {
                    name: "by_user".into(),
                    key_cols: vec![0],
                    ts_col: Some(3),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        );
        for row in data {
            table.put(row).unwrap();
        }
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
        db
    };

    let mut rng = StdRng::seed_from_u64(3);
    let reqs: Vec<i64> = (0..requests)
        .map(|_| rng.gen_range(0..users as i64))
        .collect();
    let live_event = |i: usize, j: usize, ts: i64| {
        (reqs[i], format!("live_{i}_{j}"), 0.3 + (j as f64) * 0.1, ts)
    };
    // Each request advances the stream clock so windows slide (live events
    // eventually expire for every system).
    let anchor = |i: usize| max_ts + (i as i64 + 1) * 50;
    let mut out = Vec::new();
    for n in 1..=8usize {
        let db = fresh_db(&data);
        db.deploy(&format!(
            "DEPLOY top{n} AS SELECT user, top(score, {n}) OVER w AS ranked FROM rtp \
             WINDOW w AS (PARTITION BY user ORDER BY ts \
             ROWS_RANGE BETWEEN {WINDOW_MS} PRECEDING AND CURRENT ROW)"
        ))
        .unwrap();
        // Flink and GreenPlum runs are fresh per N (their operators/queries
        // are parameterized by N).
        let mut flink = FlinkLikeTopN::new(WINDOW_MS, n);
        let mut green = GreenplumLikeRanker::new();
        for row in &data {
            flink.insert(
                &row[0].to_string(),
                row.ts_at(3),
                row[1].as_str().unwrap(),
                row[2].as_f64().unwrap(),
            );
            green.insert(
                &row[0].to_string(),
                row.ts_at(3),
                row[1].as_str().unwrap(),
                row[2].as_f64().unwrap(),
            );
        }
        let ours = LatencyStats::from_samples(time_each(requests, |i| {
            let now = anchor(i);
            for j in 0..EVENTS_PER_REQUEST {
                let (user, item, score, ts) = live_event(i, j, now);
                db.insert_row(
                    "rtp",
                    &Row::new(vec![
                        Value::Bigint(user),
                        Value::string(item),
                        Value::Double(score),
                        Value::Timestamp(ts),
                    ]),
                )
                .unwrap();
            }
            let request = Row::new(vec![
                Value::Bigint(reqs[i]),
                Value::string("live"),
                Value::Double(0.5),
                Value::Timestamp(now),
            ]);
            db.request_readonly(&format!("top{n}"), &request).unwrap()
        }));
        let flink_stats = LatencyStats::from_samples(time_each(requests, |i| {
            let now = anchor(i);
            for j in 0..EVENTS_PER_REQUEST {
                let (user, item, score, ts) = live_event(i, j, now);
                flink.insert(&user.to_string(), ts, &item, score);
            }
            flink.query(&reqs[i].to_string(), now, n)
        }));
        // GreenPlum plans every statement: per-request SQL parse + dispatch.
        let gp_sql = format!("SELECT item, score FROM rtp WHERE user = 1 LIMIT {n}");
        let green_stats = LatencyStats::from_samples(time_each(requests, |i| {
            let now = anchor(i);
            for j in 0..EVENTS_PER_REQUEST {
                let (user, item, score, ts) = live_event(i, j, now);
                green.insert(&user.to_string(), ts, &item, score);
            }
            let plan = openmldb_sql::parse_select(&gp_sql).unwrap();
            std::hint::black_box(&plan);
            green.query(&reqs[i].to_string(), now, WINDOW_MS, n)
        }));
        out.push(TopNResult {
            n,
            openmldb_ms: ours.mean_ms,
            flink_ms: flink_stats.mean_ms,
            greenplum_ms: green_stats.mean_ms,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("Top{}", r.n),
                fmt(r.openmldb_ms),
                fmt(r.flink_ms),
                fmt(r.greenplum_ms),
                format!("{:.1}x", r.flink_ms / r.openmldb_ms),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 7: RTP TopN latency, ms ({events} events, {users} users)"),
        &[
            "query",
            "OpenMLDB",
            "Flink-like",
            "GreenPlum-like",
            "vs Flink",
        ],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn openmldb_beats_baselines_fig07() {
        // Deep enough history that the baselines' full-scan costs dominate
        // in debug builds as well.
        let results = crate::harness::with_scale(0.7, super::run);
        // Average across N: OpenMLDB under both baselines.
        let ours: f64 = results.iter().map(|r| r.openmldb_ms).sum();
        let flink: f64 = results.iter().map(|r| r.flink_ms).sum();
        let green: f64 = results.iter().map(|r| r.greenplum_ms).sum();
        assert!(ours < flink, "OpenMLDB {ours:.3} vs Flink {flink:.3}");
        assert!(ours < green, "OpenMLDB {ours:.3} vs GreenPlum {green:.3}");
    }
}
