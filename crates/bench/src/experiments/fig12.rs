//! **Figure 12** — Multi-window parallel optimization.
//!
//! Paper result: 4.8× (small windows), 5.3× (medium), 4.6× (large)
//! improvement from computing independent windows in parallel and
//! concat-joining on the index column, vs serial execution.

use openmldb_offline::{compute_windows, OfflineOptions, Tables, WindowExecMode};
use openmldb_sql::{compile_select, parse_select};
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, results_close, scaled, time_once};
use crate::scenarios::micro_sql;

pub struct MultiWindowResult {
    pub label: String,
    pub serial_ms: f64,
    pub parallel_ms: f64,
}

struct SchemaCat;
impl openmldb_sql::Catalog for SchemaCat {
    fn table_schema(&self, name: &str) -> Option<openmldb_types::Schema> {
        (name == "t1").then(micro_schema)
    }
}

pub fn run() -> Vec<MultiWindowResult> {
    const WINDOWS: usize = 6;
    let mut out = Vec::new();
    for (label, rows, frame_ms) in [
        ("small (1K-row windows)", scaled(20_000), 1_000i64),
        ("medium (10K-row windows)", scaled(40_000), 10_000),
        ("large (40K-row windows)", scaled(80_000), 40_000),
    ] {
        let data = micro_rows(&MicroConfig {
            rows,
            distinct_keys: 8,
            ts_step_ms: 1,
            ..Default::default()
        });
        let q = compile_select(
            &parse_select(&micro_sql(WINDOWS, 0, frame_ms, false)).unwrap(),
            &SchemaCat,
        )
        .unwrap();
        let tables = Tables::new();
        let serial_opts = OfflineOptions {
            parallel_windows: false,
            threads: 1,
            skew: None,
            mode: WindowExecMode::Incremental,
        };
        let parallel_opts = OfflineOptions {
            parallel_windows: true,
            threads: WINDOWS,
            ..serial_opts.clone()
        };
        let (serial_res, serial_ms) =
            time_once(|| compute_windows(&q, &tables, &data, &serial_opts).unwrap());
        let (parallel_res, parallel_ms) =
            time_once(|| compute_windows(&q, &tables, &data, &parallel_opts).unwrap());
        assert!(
            results_close(&serial_res, &parallel_res),
            "index alignment preserves results"
        );
        out.push(MultiWindowResult {
            label: label.into(),
            serial_ms,
            parallel_ms,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                fmt(r.serial_ms),
                fmt(r.parallel_ms),
                format!("{:.1}x", r.serial_ms / r.parallel_ms),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 12: multi-window parallel optimization, ms ({WINDOWS} windows)"),
        &["workload", "serial", "parallel", "speedup"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn parallel_windows_beat_serial() {
        let results = crate::harness::with_scale(0.2, super::run);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            // At least the larger configurations must show a win (tiny
            // inputs can be noise-bound).
            let wins = results
                .iter()
                .filter(|r| r.parallel_ms < r.serial_ms)
                .count();
            assert!(wins >= 2, "parallel should win most sizes: {wins}/3");
        } else {
            // Single/dual-core machine: thread parallelism cannot speed up
            // wall clock; require only that it does not regress badly.
            for r in &results {
                assert!(
                    r.parallel_ms < r.serial_ms * 1.5,
                    "{}: parallel overhead too high ({:.1} vs {:.1} ms) on {cores} cores",
                    r.label,
                    r.parallel_ms,
                    r.serial_ms
                );
            }
        }
    }
}
