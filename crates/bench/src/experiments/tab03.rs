//! **Table 3** — Latency percentiles as feature counts grow.
//!
//! Paper result (ms):
//!
//! | columns | features | TP50 | TP90 | TP95 | TP99 | TP999 |
//! |---|---|---|---|---|---|---|
//! | 10 | 20 | 0.6 | 0.8 | 0.8 | 1.0 | 1.9 |
//! | 100 | 210 | 2.0 | 2.8 | 2.5 | 4.4 | 6.6 |
//! | 1000 | 2100 | 11.7 | 14.7 | 15.9 | 19.8 | 44.8 |

use std::sync::Arc;

use openmldb_core::Database;
use openmldb_storage::{IndexSpec, MemTable, Ttl};
use openmldb_types::{ColumnDef, DataType, Row, Schema, Value};

use crate::harness::{fmt, print_table, scaled, time_each, LatencyStats};

pub struct FeatureCountRow {
    pub columns: usize,
    pub features: usize,
    pub stats: LatencyStats,
}

/// Wide schema: key, ts, then `columns` value columns.
fn wide_schema(columns: usize) -> Schema {
    let mut cols = vec![
        ColumnDef::new("k", DataType::Bigint),
        ColumnDef::new("ts", DataType::Timestamp),
    ];
    for c in 0..columns {
        cols.push(ColumnDef::new(format!("v{c}"), DataType::Double));
    }
    Schema::new(cols).unwrap()
}

fn wide_row(key: i64, ts: i64, columns: usize) -> Row {
    let mut v = vec![Value::Bigint(key), Value::Timestamp(ts)];
    for c in 0..columns {
        v.push(Value::Double((c as f64) + (ts % 97) as f64));
    }
    Row::new(v)
}

/// ~2.1 features per column: sum + avg per column plus a count per 10.
fn feature_script(columns: usize) -> (String, usize) {
    let mut select = vec!["k".to_string()];
    let mut features = 0;
    for c in 0..columns {
        select.push(format!("sum(v{c}) OVER w AS s{c}"));
        select.push(format!("avg(v{c}) OVER w AS a{c}"));
        features += 2;
        if c % 10 == 0 {
            select.push(format!("count(v{c}) OVER w AS c{c}"));
            features += 1;
        }
    }
    let sql = format!(
        "SELECT {} FROM wide WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)",
        select.join(", ")
    );
    (sql, features)
}

pub fn run() -> Vec<FeatureCountRow> {
    let rows_per_key = scaled(2_000);
    let requests = scaled(300);
    let mut out = Vec::new();
    for columns in [10usize, 100, 1_000] {
        let db = Database::new();
        let schema = wide_schema(columns);
        let table = Arc::new(
            MemTable::new(
                "wide",
                schema,
                vec![IndexSpec {
                    name: "i".into(),
                    key_cols: vec![0],
                    ts_col: Some(1),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        );
        for i in 0..rows_per_key {
            table.put(&wide_row(1, i as i64 * 10, columns)).unwrap();
        }
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
        let (sql, features) = feature_script(columns);
        db.deploy(&format!("DEPLOY wide{columns} AS {sql}"))
            .unwrap();
        let stats = LatencyStats::from_samples(time_each(requests, |i| {
            db.request_readonly(
                &format!("wide{columns}"),
                &wide_row(1, (rows_per_key + i) as i64 * 10, columns),
            )
            .unwrap()
        }));
        out.push(FeatureCountRow {
            columns,
            features,
            stats,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.columns.to_string(),
                r.features.to_string(),
                fmt(r.stats.p50_ms),
                fmt(r.stats.p90_ms),
                fmt(r.stats.p95_ms),
                fmt(r.stats.p99_ms),
                fmt(r.stats.p999_ms),
            ]
        })
        .collect();
    print_table(
        "Table 3: latency percentiles by feature count, ms",
        &[
            "#-Column",
            "#-Feature",
            "TP50",
            "TP90",
            "TP95",
            "TP99",
            "TP999",
        ],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn latency_grows_with_feature_count_but_stays_bounded() {
        let rows = crate::harness::with_scale(0.05, super::run);
        assert!(
            rows[0].stats.p50_ms <= rows[2].stats.p50_ms,
            "wider schema costs more"
        );
        assert_eq!(rows[0].features, 21);
        assert_eq!(rows[2].features, 2_100);
    }
}
