//! **Chaos serving** — the fig06-style request loop under deterministic
//! fault injection at rates {0, 0.1%, 1%} on the storage seek path, with a
//! deadline budget, bounded retries, and replica failover enabled.
//!
//! The claim under test is the resilience contract: at every fault rate,
//! **zero requests are lost or hang** — each one resolves to a success
//! (possibly flagged `degraded`), or a typed `Timeout` — and the p99
//! stays bounded by the budget plus scheduling slack. The snapshot is
//! written as `BENCH_chaos.json` (override with `BENCH_CHAOS_JSON`).
//! Without the `chaos` cargo feature the injector is compiled out; the
//! loop still runs (all rates behave like 0) and the snapshot records
//! `chaos_enabled: false`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use openmldb_chaos::{InjectionPoint, Plan};
use openmldb_core::RequestOptions;
use openmldb_types::Error;

use crate::harness::{fmt, print_table, scaled, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Deterministic seed for the injection plan (one of the CI triple).
pub const SEED: u64 = 0xC0FFEE;

/// Per-request deadline budget for the loop.
pub const BUDGET: Duration = Duration::from_millis(250);

/// Scheduling slack allowed on top of the budget for the p99 bound: the
/// deadline is checked between stages, so one stage may overshoot before
/// the check fires — and under a fully loaded test machine (the whole
/// workspace suite in parallel) a descheduled thread can stall well past
/// the stage cost itself. Sized so the bound still catches a hang (requests
/// normally complete in well under a millisecond) without flaking on
/// scheduler noise.
pub const SLACK: Duration = Duration::from_millis(750);

/// Outcome of one fault-rate run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    pub fault_rate: f64,
    pub requests: usize,
    pub ok: usize,
    pub degraded: usize,
    pub timeouts: usize,
    /// Requests resolving to anything else — lost requests. Must be 0.
    pub lost: usize,
    pub retries: u64,
    pub failovers: u64,
    pub faults_injected: u64,
    pub stats: LatencyStats,
}

#[derive(Debug, Clone)]
pub struct ChaosServing {
    pub chaos_enabled: bool,
    pub outcomes: Vec<ChaosOutcome>,
    /// Sum of `lost` across all rates.
    pub lost: usize,
    /// Any rate's p99 exceeded budget + slack.
    pub p99_exceeded: bool,
    pub json: String,
}

pub fn run() -> ChaosServing {
    let rows = scaled(8_000);
    let keys = 20usize;
    let requests = scaled(2_000);
    let rates = [0.0, 0.001, 0.01];

    let db = micro_db(rows, keys, 0.0, 1);
    db.deploy(&format!(
        "DEPLOY f_chaos AS {}",
        micro_sql(1, 1, 60_000, false)
    ))
    .unwrap();
    // A caught-up replica of the base stream: reads fail over to it when
    // the primary keeps faulting.
    db.enable_failover("t1").unwrap();
    let max_ts = rows as i64 * 10;
    let opts = RequestOptions::with_deadline(BUDGET);

    // Warm-up with no faults installed.
    openmldb_chaos::reset();
    for i in 0..16i64 {
        db.request_readonly("f_chaos", &micro_request(i, i % keys as i64, max_ts))
            .unwrap();
    }

    let budget_ms = BUDGET.as_secs_f64() * 1e3 + SLACK.as_secs_f64() * 1e3;
    let mut outcomes = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        // Errors and latency spikes on the skiplist seek every read takes;
        // same seed each round so runs are reproducible end to end.
        openmldb_chaos::install(
            Plan::new(SEED)
                .error_rate(InjectionPoint::SkiplistSeek, rate)
                .latency(
                    InjectionPoint::SkiplistSeek,
                    rate,
                    Duration::from_micros(200),
                ),
        );
        let (mut ok, mut degraded, mut timeouts, mut lost) = (0usize, 0usize, 0usize, 0usize);
        let (mut retries, mut failovers) = (0u64, 0u64);
        let mut samples = Vec::with_capacity(requests);
        for i in 0..requests {
            let req = micro_request(
                (10 + ri) as i64 * 1_000_000 + i as i64,
                (i % keys) as i64,
                max_ts + (i % 100) as i64,
            );
            let t0 = Instant::now();
            let out = db.request_readonly_with("f_chaos", &req, &opts);
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
            match out {
                Ok(o) => {
                    ok += 1;
                    if o.degraded {
                        degraded += 1;
                    }
                    retries += u64::from(o.retries);
                    failovers += u64::from(o.failovers);
                }
                Err(Error::Timeout { .. }) => timeouts += 1,
                Err(_) => lost += 1,
            }
        }
        let faults_injected = openmldb_chaos::stats(InjectionPoint::SkiplistSeek).errors;
        openmldb_chaos::reset();
        outcomes.push(ChaosOutcome {
            fault_rate: rate,
            requests,
            ok,
            degraded,
            timeouts,
            lost,
            retries,
            failovers,
            faults_injected,
            stats: LatencyStats::from_samples(samples),
        });
    }

    let lost: usize = outcomes.iter().map(|o| o.lost).sum();
    let p99_exceeded = outcomes.iter().any(|o| o.stats.p99_ms > budget_ms);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"chaos_serving\",");
    let _ = writeln!(json, "  \"chaos_enabled\": {},", openmldb_chaos::enabled());
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"budget_ms\": {},", BUDGET.as_millis());
    let _ = writeln!(json, "  \"requests_per_rate\": {requests},");
    let _ = writeln!(json, "  \"lost\": {lost},");
    let _ = writeln!(json, "  \"p99_exceeded\": {p99_exceeded},");
    json.push_str("  \"rates\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"fault_rate\": {}, \"ok\": {}, \"degraded\": {}, \"timeouts\": {}, \
             \"lost\": {}, \"retries\": {}, \"failovers\": {}, \"p50_ms\": {:.6}, \
             \"p99_ms\": {:.6}}}{}",
            o.fault_rate,
            o.ok,
            o.degraded,
            o.timeouts,
            o.lost,
            o.retries,
            o.failovers,
            o.stats.p50_ms,
            o.stats.p99_ms,
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("BENCH_CHAOS_JSON").unwrap_or_else(|_| "target/BENCH_chaos.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("chaos snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let table: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                format!("{:.2}%", o.fault_rate * 100.0),
                o.ok.to_string(),
                o.degraded.to_string(),
                o.timeouts.to_string(),
                o.lost.to_string(),
                o.retries.to_string(),
                o.failovers.to_string(),
                fmt(o.stats.p50_ms),
                fmt(o.stats.p99_ms),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Chaos serving: fig06 loop under injected faults ({requests} requests/rate, \
             budget {} ms, chaos {})",
            BUDGET.as_millis(),
            if openmldb_chaos::enabled() {
                "on"
            } else {
                "off"
            }
        ),
        &[
            "rate", "ok", "degraded", "timeout", "lost", "retries", "failover", "p50 ms", "p99 ms",
        ],
        &table,
    );

    ChaosServing {
        chaos_enabled: openmldb_chaos::enabled(),
        outcomes,
        lost,
        p99_exceeded,
        json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_request_is_lost_at_any_fault_rate() {
        let result = crate::harness::with_scale(0.1, super::run);
        assert_eq!(result.lost, 0, "{}", result.json);
        assert!(!result.p99_exceeded, "{}", result.json);
        for o in &result.outcomes {
            assert_eq!(
                o.ok + o.timeouts + o.lost,
                o.requests,
                "every request resolves"
            );
        }
        if result.chaos_enabled {
            let faulted = &result.outcomes[2];
            assert!(
                faulted.retries > 0,
                "1% fault rate must exercise retries: {}",
                result.json
            );
        } else {
            assert!(result.outcomes.iter().all(|o| o.retries == 0));
        }
        assert!(result.json.contains("\"experiment\": \"chaos_serving\""));
    }
}
