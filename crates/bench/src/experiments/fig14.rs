//! **Figure 14** — Performance under different thread counts.
//!
//! Paper result: throughput rises with threads; latency grows slightly but
//! stays single-digit milliseconds beyond 20 threads.

use std::sync::Arc;

use openmldb_core::Database;

use crate::harness::{fmt, print_table, scaled, LatencyStats};
use crate::scenarios::{micro_db, micro_request, micro_sql};

pub struct ThreadPoint {
    pub threads: usize,
    pub mean_ms: f64,
    pub p99_ms: f64,
    pub total_qps: f64,
}

pub fn run() -> Vec<ThreadPoint> {
    let rows = scaled(20_000);
    let db: Arc<Database> = Arc::new(micro_db(rows, 100, 0.0, 0));
    db.deploy(&format!("DEPLOY f14 AS {}", micro_sql(2, 0, 5_000, false)))
        .unwrap();
    let per_thread = scaled(500);

    let mut out = Vec::new();
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut samples = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let key = ((t * per_thread + i) % 100) as i64;
                        let req = micro_request(i as i64, key, 1_000_000);
                        let s = std::time::Instant::now();
                        db.request_readonly("f14", &req).unwrap();
                        samples.push(s.elapsed().as_secs_f64() * 1_000.0);
                    }
                    samples
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let wall = start.elapsed().as_secs_f64();
        let stats = LatencyStats::from_samples(all);
        out.push(ThreadPoint {
            threads,
            mean_ms: stats.mean_ms,
            p99_ms: stats.p99_ms,
            total_qps: (threads * per_thread) as f64 / wall,
        });
    }

    let table: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                fmt(r.mean_ms),
                fmt(r.p99_ms),
                fmt(r.total_qps),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 14: thread-count sweep ({rows} rows, {per_thread} reqs/thread)"),
        &["threads", "mean ms", "p99 ms", "total qps"],
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn throughput_scales_with_threads() {
        let points = crate::harness::with_scale(0.1, super::run);
        let one = points.iter().find(|p| p.threads == 1).unwrap().total_qps;
        let eight = points.iter().find(|p| p.threads == 8).unwrap().total_qps;
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            assert!(
                eight > one * 1.5,
                "8 threads should clearly outpace 1: {eight:.0} vs {one:.0} qps"
            );
        } else {
            // Single-core: concurrency must at least not collapse under
            // contention (lock-free reads keep serving).
            assert!(
                eight > one * 0.5,
                "8 threads must not collapse on {cores} cores: {eight:.0} vs {one:.0} qps"
            );
        }
    }
}
