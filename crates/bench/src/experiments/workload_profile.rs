//! **Per-deployment workload attribution** — a fig06-style request loop
//! spread over three concurrent deployments, verifying the attribution
//! contract: the per-deployment labeled series (requests, rows scanned,
//! staged time) must sum back to the global counters within 1% — nothing
//! the engine serves may escape attribution, and nothing may be counted
//! twice. Both sides are read as before/after deltas so earlier
//! experiments' traffic cancels out. The snapshot is written as
//! `BENCH_profile.json` (override with `BENCH_PROFILE_JSON`).
//!
//! Under `obs-off` every counter reads zero on both sides and the gate
//! holds vacuously.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use openmldb_obs::Registry;
use openmldb_online::metrics as om;

use crate::harness::{print_table, scaled};
use crate::scenarios::{micro_db, micro_request, micro_sql};

/// Maximum relative divergence between attributed and global totals.
pub const TOLERANCE: f64 = 0.01;

const DEPLOYMENTS: [&str; 3] = ["wp_short", "wp_long", "wp_multi"];

#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    pub requests: usize,
    /// Global counter deltas: requests, scan rows, staged ns.
    pub global: [u64; 3],
    /// Sums of the per-deployment labeled series over the same window.
    pub attributed: [u64; 3],
    /// Relative divergence per dimension; all must be <= [`TOLERANCE`].
    pub divergence: [f64; 3],
    /// Per-deployment request-count deltas (the table rows).
    pub per_deployment: BTreeMap<String, u64>,
    pub gate_failed: bool,
    pub json: String,
}

/// Sum of a labeled series' per-label values, and the per-label map.
fn series_totals(name: &str) -> BTreeMap<String, u64> {
    Registry::global()
        .labeled_series(name)
        .into_iter()
        .collect()
}

/// Per-label deltas over the window; labels whose value did not move
/// (deployments from earlier experiments) are dropped — a zero delta
/// contributes nothing to the attributed sums either way.
fn delta(after: &BTreeMap<String, u64>, before: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    after
        .iter()
        .map(|(k, v)| (k.clone(), v - before.get(k).copied().unwrap_or(0)))
        .filter(|&(_, d)| d > 0)
        .collect()
}

pub fn run() -> WorkloadProfile {
    let rows = scaled(4_000);
    let keys = 16usize;
    let requests = scaled(1_500);

    let db = micro_db(rows, keys, 0.0, 1);
    for (name, sql) in [
        (DEPLOYMENTS[0], micro_sql(1, 1, 10_000, false)),
        (DEPLOYMENTS[1], micro_sql(1, 0, 60_000, false)),
        (DEPLOYMENTS[2], micro_sql(2, 1, 30_000, false)),
    ] {
        db.deploy(&format!("DEPLOY {name} AS {sql}")).unwrap();
    }
    let max_ts = rows as i64 * 10;

    const NAMES: [&str; 3] = [
        "openmldb_online_deployment_requests_total",
        "openmldb_online_deployment_scan_rows",
        "openmldb_online_deployment_stage_time_ns",
    ];
    let global_before = [
        om::requests().value(),
        om::scan_rows().value(),
        om::stage_time_ns().value(),
    ];
    let labeled_before: Vec<BTreeMap<String, u64>> =
        NAMES.iter().map(|n| series_totals(n)).collect();

    // Skewed interleave across the three deployments (4:1:1).
    for i in 0..requests {
        let dep = match i % 6 {
            0..=3 => DEPLOYMENTS[0],
            4 => DEPLOYMENTS[1],
            _ => DEPLOYMENTS[2],
        };
        db.request_readonly(
            dep,
            &micro_request(3_000_000 + i as i64, (i % keys) as i64, max_ts),
        )
        .unwrap();
    }

    let global = [
        om::requests().value() - global_before[0],
        om::scan_rows().value() - global_before[1],
        om::stage_time_ns().value() - global_before[2],
    ];
    let labeled_deltas: Vec<BTreeMap<String, u64>> = NAMES
        .iter()
        .zip(&labeled_before)
        .map(|(n, before)| delta(&series_totals(n), before))
        .collect();
    let attributed = [
        labeled_deltas[0].values().sum::<u64>(),
        labeled_deltas[1].values().sum::<u64>(),
        labeled_deltas[2].values().sum::<u64>(),
    ];
    let divergence: Vec<f64> = global
        .iter()
        .zip(&attributed)
        .map(|(&g, &a)| (g as f64 - a as f64).abs() / (g.max(1) as f64))
        .collect();
    let divergence = [divergence[0], divergence[1], divergence[2]];
    let gate_failed = divergence.iter().any(|&d| d > TOLERANCE);
    let per_deployment = labeled_deltas[0].clone();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"workload_profile\",");
    let _ = writeln!(json, "  \"requests_issued\": {requests},");
    let _ = writeln!(json, "  \"tolerance\": {TOLERANCE},");
    for (i, dim) in ["requests", "scan_rows", "stage_time_ns"]
        .iter()
        .enumerate()
    {
        let _ = writeln!(
            json,
            "  \"{dim}\": {{\"global\": {}, \"attributed\": {}, \"divergence\": {:.6}}},",
            global[i], attributed[i], divergence[i]
        );
    }
    json.push_str("  \"per_deployment_requests\": {");
    for (i, (dep, n)) in per_deployment.iter().enumerate() {
        let _ = write!(json, "{}\"{dep}\": {n}", if i == 0 { "" } else { ", " });
    }
    json.push_str("},\n");
    let _ = writeln!(json, "  \"gate_failed\": {gate_failed}");
    json.push_str("}\n");

    let path =
        std::env::var("BENCH_PROFILE_JSON").unwrap_or_else(|_| "target/BENCH_profile.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("workload profile snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    print_table(
        &format!(
            "Workload attribution: {requests} requests over {} deployments \
             (attributed vs global, tolerance {:.0}%)",
            DEPLOYMENTS.len(),
            TOLERANCE * 100.0
        ),
        &["dimension", "global", "attributed", "divergence"],
        &[
            vec![
                "requests".into(),
                global[0].to_string(),
                attributed[0].to_string(),
                format!("{:.4}%", divergence[0] * 100.0),
            ],
            vec![
                "scan_rows".into(),
                global[1].to_string(),
                attributed[1].to_string(),
                format!("{:.4}%", divergence[1] * 100.0),
            ],
            vec![
                "stage_time_ns".into(),
                global[2].to_string(),
                attributed[2].to_string(),
                format!("{:.4}%", divergence[2] * 100.0),
            ],
        ],
    );

    WorkloadProfile {
        requests,
        global,
        attributed,
        divergence,
        per_deployment,
        gate_failed,
        json,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn attribution_reconciles_with_globals() {
        let result = crate::harness::with_scale(0.05, super::run);
        assert!(
            !result.gate_failed,
            "attributed totals diverged from globals: {}",
            result.json
        );
        if openmldb_obs::enabled() {
            assert!(result.global[0] > 0, "{}", result.json);
            // Each of this experiment's deployments must have attributed
            // requests (other tests' deployments may share the window, and
            // label-slot overflow folds extras into `__other`).
            let named: u64 = super::DEPLOYMENTS
                .iter()
                .filter_map(|d| result.per_deployment.get(*d))
                .sum();
            let other = result
                .per_deployment
                .get(openmldb_obs::OVERFLOW_LABEL)
                .copied()
                .unwrap_or(0);
            assert!(named + other > 0, "{}", result.json);
        }
        assert!(result.json.contains("\"experiment\": \"workload_profile\""));
    }
}
