//! **Figure 10** — Pre-aggregation performance over window size.
//!
//! Paper result: without pre-aggregation, latency grows with window size
//! (100K → 5M tuples) and throughput collapses; with pre-aggregation both
//! stay nearly flat.

use std::sync::Arc;

use openmldb_core::Database;
use openmldb_online::PreAggregator;
use openmldb_storage::{IndexSpec, MemTable, Ttl};
use openmldb_types::{CompactCodec, Row, Value};
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

use crate::harness::{fmt, print_table, scale, time_each_budget, LatencyStats};
use crate::scenarios::{micro_request, micro_sql};

pub struct PreaggPoint {
    pub window_rows: usize,
    pub scan_ms: f64,
    pub preagg_ms: f64,
    pub scan_qps: f64,
    pub preagg_qps: f64,
}

pub fn run() -> Vec<PreaggPoint> {
    // Single hot key so window size == table size (the hotspot case).
    let max_rows = ((1_000_000.0 * scale()) as usize).max(20_000);
    let sizes: Vec<usize> = [max_rows / 50, max_rows / 10, max_rows / 2, max_rows]
        .into_iter()
        .collect();
    let data = micro_rows(&MicroConfig {
        rows: max_rows,
        distinct_keys: 1,
        ts_step_ms: 1,
        ..Default::default()
    });
    let max_ts = data.last().map(|r| r.ts_at(5)).unwrap_or(0);

    let db = Database::new();
    let table = Arc::new(
        MemTable::new(
            "t1",
            micro_schema(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![1],
                ts_col: Some(5),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap(),
    );
    for row in &data {
        table.put(row).unwrap();
    }
    db.register_table(table.clone())
        .expect("registering on an in-memory db cannot fail");

    let requests = (200.0 * scale().max(0.2)) as usize;
    let mut out = Vec::new();
    for (i, &window_rows) in sizes.iter().enumerate() {
        // ts step is 1 ms, so a frame of `window_rows` ms covers that many
        // tuples.
        let frame_ms = window_rows as i64;
        let sql = micro_sql(1, 0, frame_ms, false);
        let plain = format!("p10_{i}");
        db.deploy(&format!("DEPLOY {plain} AS {sql}")).unwrap();

        let scan = LatencyStats::from_samples(time_each_budget(requests, 5_000.0, |j| {
            db.request_readonly(&plain, &micro_request(j as i64, 0, max_ts))
                .unwrap()
        }));

        // Pre-aggregated variant of the same deployment: bucket ≈ 1/100 of
        // the window, two levels.
        let dep = db.deployment(&plain).unwrap();
        let q = &dep.query;
        let preagg = PreAggregator::new(
            &q.windows[0],
            &q.aggregates,
            vec![frame_ms / 100 + 1, frame_ms / 10 + 1],
        )
        .unwrap();
        for row in &data {
            preagg.ingest(row).unwrap();
        }
        preagg.attach(table.replicator(), CompactCodec::new(micro_schema()));
        let fast_dep = openmldb_online::Deployment::new("fast", q.clone()).with_preagg(0, preagg);
        let fast = LatencyStats::from_samples(time_each_budget(requests, 5_000.0, |j| {
            openmldb_online::execute_request(&db, &fast_dep, &micro_request(j as i64, 0, max_ts))
                .unwrap()
        }));
        // Both paths agree.
        let a = db
            .request_readonly(&plain, &micro_request(0, 0, max_ts))
            .unwrap();
        let b =
            openmldb_online::execute_request(&db, &fast_dep, &micro_request(0, 0, max_ts)).unwrap();
        assert_agree(&a, &b);

        out.push(PreaggPoint {
            window_rows,
            scan_ms: scan.mean_ms,
            preagg_ms: fast.mean_ms,
            scan_qps: scan.qps,
            preagg_qps: fast.qps,
        });
    }

    let table_rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.window_rows.to_string(),
                fmt(r.scan_ms),
                fmt(r.preagg_ms),
                fmt(r.scan_qps),
                fmt(r.preagg_qps),
                format!("{:.1}x", r.scan_ms / r.preagg_ms),
            ]
        })
        .collect();
    print_table(
        "Fig 10: long-window pre-aggregation sweep",
        &[
            "window rows",
            "scan ms",
            "preagg ms",
            "scan qps",
            "preagg qps",
            "speedup",
        ],
        &table_rows,
    );
    out
}

fn assert_agree(a: &Row, b: &Row) {
    for (x, y) in a.values().iter().zip(b.values()) {
        match (x, y) {
            (Value::Double(p), Value::Double(q)) => {
                assert!((p - q).abs() / p.abs().max(1.0) < 1e-9, "{p} vs {q}")
            }
            _ => assert_eq!(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn preagg_wins_and_stays_flat() {
        let points = crate::harness::with_scale(0.05, super::run);
        let last = points.last().unwrap();
        assert!(
            last.preagg_ms < last.scan_ms,
            "largest window: preagg {:.2}ms vs scan {:.2}ms",
            last.preagg_ms,
            last.scan_ms
        );
        // At the largest window the gap must be decisive (paper: latency
        // grows sharply without pre-aggregation, stays flat with it).
        assert!(
            last.preagg_ms * 3.0 < last.scan_ms,
            "largest window should favor preagg by >3x: {:.2} vs {:.2} ms",
            last.preagg_ms,
            last.scan_ms
        );
    }
}
