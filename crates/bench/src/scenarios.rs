//! Shared experiment scenarios: the MicroBench database (three stream
//! tables + dimension tables, mirroring the paper's Java testing tool) and
//! SQL generators parameterized by window count, join count and frame size.

use std::sync::Arc;

use openmldb_core::Database;
use openmldb_storage::{IndexSpec, MemTable, Ttl};
use openmldb_types::{Row, Value};
use openmldb_workload::{micro_rows, micro_schema, MicroConfig};

/// Stream table names of the MicroBench scenario.
pub const STREAMS: [&str; 3] = ["t1", "t2", "t3"];

/// Build the MicroBench database: three schema-identical stream tables plus
/// `dims` dimension tables (for LAST JOIN sweeps), loaded with `rows` rows
/// per stream table.
pub fn micro_db(rows: usize, distinct_keys: usize, key_skew: f64, dims: usize) -> Database {
    let db = Database::new();
    for (ti, name) in STREAMS.iter().enumerate() {
        let table = Arc::new(
            MemTable::new(
                *name,
                micro_schema(),
                vec![IndexSpec {
                    name: "by_k".into(),
                    key_cols: vec![1],
                    ts_col: Some(5),
                    ttl: Ttl::Unlimited,
                }],
            )
            .expect("valid spec"),
        );
        let cfg = MicroConfig {
            rows,
            distinct_keys,
            key_skew,
            seed: 42 + ti as u64,
            ..Default::default()
        };
        for row in micro_rows(&cfg) {
            table.put(&row).expect("load");
        }
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
    }
    for d in 0..dims {
        db.execute(&format!(
            "CREATE TABLE dim{d} (k BIGINT, w{d} DOUBLE, updated TIMESTAMP, \
             INDEX(KEY=k, TS=updated))"
        ))
        .expect("dim ddl");
        for k in 0..distinct_keys {
            db.execute(&format!("INSERT INTO dim{d} VALUES ({k}, {k}.5, 1)"))
                .expect("dim row");
        }
    }
    db
}

/// A request tuple for the micro schema.
pub fn micro_request(id: i64, key: i64, ts: i64) -> Row {
    Row::new(vec![
        Value::Bigint(id),
        Value::Bigint(key),
        Value::Double(7.5),
        Value::string("shoes"),
        Value::Int(2),
        Value::Timestamp(ts),
    ])
}

/// Generate a MicroBench feature script with `windows` distinct windows
/// (different frames so the optimizer cannot merge them), `joins` LAST
/// JOINs, and `aggs_per_window` aggregates per window.
pub fn micro_sql(windows: usize, joins: usize, frame_ms: i64, union_t2: bool) -> String {
    let mut select = vec!["t1.id".to_string(), "t1.k".to_string()];
    for w in 0..windows {
        select.push(format!("sum(v) OVER w{w} AS sum_{w}"));
        select.push(format!("count(v) OVER w{w} AS cnt_{w}"));
        select.push(format!("max(v) OVER w{w} AS max_{w}"));
    }
    for j in 0..joins {
        select.push(format!("dim{j}.w{j}"));
    }
    let mut sql = format!("SELECT {} FROM t1", select.join(", "));
    for j in 0..joins {
        sql.push_str(&format!(
            " LAST JOIN dim{j} ORDER BY dim{j}.updated ON t1.k = dim{j}.k"
        ));
    }
    if windows > 0 {
        sql.push_str(" WINDOW ");
        let defs: Vec<String> = (0..windows)
            .map(|w| {
                let union = if union_t2 { "UNION t2, t3 " } else { "" };
                format!(
                    "w{w} AS ({union}PARTITION BY k ORDER BY ts \
                     ROWS_RANGE BETWEEN {} PRECEDING AND CURRENT ROW)",
                    frame_ms * (w as i64 + 1)
                )
            })
            .collect();
        sql.push_str(&defs.join(", "));
    }
    sql
}

/// The MicroBench aggregate specs (sum/count/max over `v`), pre-bound for
/// baselines that have no SQL front-end. Column 2 is `v` in
/// [`micro_schema`].
pub fn micro_specs() -> Vec<openmldb_sql::plan::BoundAggregate> {
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::{BoundAggregate, PhysExpr};
    ["sum", "count", "max"]
        .into_iter()
        .map(|f| BoundAggregate {
            window_id: 0,
            func: lookup(f).expect("builtin"),
            args: vec![PhysExpr::Column(2)],
            output_type: openmldb_types::DataType::Double,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_core::ExecResult;

    #[test]
    fn micro_db_serves_generated_sql() {
        crate::harness::with_scale(1.0, micro_db_check);
    }

    fn micro_db_check() {
        let db = micro_db(200, 10, 0.0, 2);
        let sql = micro_sql(2, 2, 1_000, true);
        let ExecResult::Batch(b) = db.execute(&sql).unwrap() else {
            panic!()
        };
        assert_eq!(b.rows.len(), 200);
        db.deploy(&format!("DEPLOY t AS {sql}")).unwrap();
        let out = db
            .request_readonly("t", &micro_request(9_999, 3, 50_000))
            .unwrap();
        assert_eq!(out.len(), 2 + 2 * 3 + 2);
    }
}
