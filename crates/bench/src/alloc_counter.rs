//! Counting global allocator for the hotpath experiment.
//!
//! Wraps the system allocator and counts every `alloc`/`realloc` with a
//! relaxed atomic, so experiments can report allocations-per-request and the
//! zero-allocation steady-state proof can assert an exact delta of 0. The
//! counter costs one relaxed `fetch_add` per allocation — noise next to the
//! allocation itself — and is installed for every binary and test that links
//! this crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The counting wrapper. Deallocations are forwarded uncounted: the
/// experiments measure allocation pressure, not live bytes.
pub struct CountingAllocator;

// SAFETY: every method forwards to `System`, which upholds the `GlobalAlloc`
// contract; the wrapper adds only an atomic counter.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: defers to `System` under the caller's layout contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: defers to `System` under the caller's layout contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: defers to `System` under the caller's layout contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by this allocator with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: defers to `System` under the caller's layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was produced by this allocator with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total allocations (alloc + alloc_zeroed + realloc) since process start.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Run `f` and return its result plus the number of allocations it made.
/// Single-threaded measurement: concurrent allocations on other threads
/// count too, so measure with background work quiesced.
pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let value = f();
    (value, allocations() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_heap_allocations() {
        let (_, none) = count(|| std::hint::black_box(7u64 + 35));
        assert_eq!(none, 0, "arithmetic must not allocate");
        let (v, some) = count(|| vec![1u8; 4096]);
        assert!(some >= 1, "a fresh Vec allocates");
        assert_eq!(v.len(), 4096);
    }
}
