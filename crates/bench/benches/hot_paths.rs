//! Criterion micro-benchmarks over the hot paths behind the paper's
//! figures, including the ablations DESIGN.md calls out:
//!
//! * compact vs UnsafeRow codec (encode/decode) — §7.1;
//! * skiplist insert/scan/latest — §7.2;
//! * incremental (subtract-and-evict) vs recompute sliding windows — §5.2;
//! * cyclic binding (shared state) vs independent aggregates — §4.2;
//! * pre-aggregated vs raw long-window queries — §5.1;
//! * SQL parse + plan, with and without the compilation cache — §4.2;
//! * observability overhead: the fig06-style request loop plus raw metric
//!   primitives. Run once with default features and once with
//!   `--features obs-off`; the `obs_overhead/request` delta between the two
//!   runs is the instrumentation cost (budget: <2%).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use openmldb_exec::{SlidingWindow, WindowAggSet};
use openmldb_online::PreAggregator;
use openmldb_sql::ast::Frame;
use openmldb_sql::functions::lookup;
use openmldb_sql::plan::{BoundAggregate, BoundWindow, PhysExpr};
use openmldb_sql::{Catalog, PlanCache};
use openmldb_storage::TimeList;
use openmldb_types::{
    CompactCodec, DataType, KeyValue, Row, RowCodec, Schema, UnsafeRowCodec, Value,
};

fn bench_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Bigint),
        ("k", DataType::Bigint),
        ("v", DataType::Double),
        ("cat", DataType::String),
        ("q", DataType::Int),
        ("ts", DataType::Timestamp),
    ])
    .unwrap()
}

fn bench_row(i: i64) -> Row {
    Row::new(vec![
        Value::Bigint(i),
        Value::Bigint(i % 10),
        Value::Double(i as f64 * 0.5),
        Value::string("category"),
        Value::Int((i % 5) as i32),
        Value::Timestamp(i),
    ])
}

fn spec(func: &str, col: usize) -> BoundAggregate {
    BoundAggregate {
        window_id: 0,
        func: lookup(func).unwrap(),
        args: vec![PhysExpr::Column(col)],
        output_type: DataType::Double,
    }
}

fn codecs(c: &mut Criterion) {
    let schema = bench_schema();
    let compact = CompactCodec::new(schema.clone());
    let unsafe_row = UnsafeRowCodec::new(schema);
    let row = bench_row(42);
    let compact_buf = compact.encode(&row).unwrap();
    let unsafe_buf = unsafe_row.encode(&row).unwrap();

    let mut g = c.benchmark_group("codec");
    g.bench_function("compact_encode", |b| {
        b.iter(|| compact.encode(&row).unwrap())
    });
    g.bench_function("unsafe_encode", |b| {
        b.iter(|| unsafe_row.encode(&row).unwrap())
    });
    g.bench_function("compact_decode", |b| {
        b.iter(|| compact.decode(&compact_buf).unwrap())
    });
    g.bench_function("unsafe_decode", |b| {
        b.iter(|| unsafe_row.decode(&unsafe_buf).unwrap())
    });
    g.finish();
}

/// Pins the borrowed `RowView` read path against the owning decoders: a
/// full-row scan through `get_value` versus materializing every column via
/// `decode` / `decode_projected`. The view reads fields in place from the
/// encoded buffer, so this group is the per-row cost the streaming
/// scan→aggregate pipeline saves.
fn rowview_decode(c: &mut Criterion) {
    let schema = bench_schema();
    let width = schema.len();
    let compact = CompactCodec::new(schema);
    let row = bench_row(42);
    let buf = compact.encode(&row).unwrap();
    let wanted = vec![true; width];

    let mut g = c.benchmark_group("rowview_decode");
    g.bench_function("view_all_columns", |b| {
        b.iter(|| {
            let view = compact.view(&buf).unwrap();
            let mut acc = 0i64;
            for i in 0..width {
                match view.get_value(i).unwrap() {
                    Value::Bigint(v) | Value::Timestamp(v) => acc += v,
                    Value::Int(v) => acc += v as i64,
                    Value::Double(v) => acc += v as i64,
                    Value::Str(s) => acc += s.len() as i64,
                    _ => {}
                }
            }
            acc
        })
    });
    g.bench_function("owning_decode", |b| {
        b.iter(|| compact.decode(&buf).unwrap())
    });
    g.bench_function("owning_decode_projected", |b| {
        b.iter(|| compact.decode_projected(&buf, Some(&wanted)).unwrap())
    });
    g.finish();
}

fn skiplist(c: &mut Criterion) {
    let mut g = c.benchmark_group("skiplist");
    g.bench_function("timelist_insert_inorder", |b| {
        b.iter_batched(
            TimeList::new,
            |list| {
                for i in 0..1_000i64 {
                    list.insert(i, Arc::from(vec![0u8; 32].into_boxed_slice()));
                }
                list
            },
            BatchSize::SmallInput,
        )
    });
    let list = TimeList::new();
    for i in 0..10_000i64 {
        list.insert(i, Arc::from(vec![0u8; 32].into_boxed_slice()));
    }
    g.bench_function("timelist_latest", |b| b.iter(|| list.latest().unwrap()));
    g.bench_function("timelist_range_1000", |b| {
        b.iter(|| list.range(9_000, 9_999))
    });
    g.finish();
}

fn sliding_windows(c: &mut Criterion) {
    let specs = [spec("sum", 2), spec("count", 2), spec("max", 2)];
    let refs: Vec<&BoundAggregate> = specs.iter().collect();
    let rows: Vec<Row> = (0..2_000).map(bench_row).collect();

    let mut g = c.benchmark_group("sliding_window");
    g.bench_function("incremental_2k_rows", |b| {
        b.iter(|| {
            let mut w = SlidingWindow::new(Frame::RowsRange { preceding_ms: 200 }, &refs).unwrap();
            for (i, row) in rows.iter().enumerate() {
                w.push(i as i64, row.values()).unwrap();
            }
            w.len()
        })
    });
    g.bench_function("recompute_2k_rows", |b| {
        b.iter(|| {
            // The baseline: rebuild the aggregate set per tuple.
            let mut buffer: Vec<(i64, &Row)> = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                let ts = i as i64;
                buffer.push((ts, row));
                let cut = buffer.partition_point(|(t, _)| ts - t > 200);
                buffer.drain(..cut);
                let mut set = WindowAggSet::new(&refs).unwrap();
                for (_, r) in &buffer {
                    set.update(r.values()).unwrap();
                }
                std::hint::black_box(set.outputs());
            }
        })
    });
    g.finish();
}

fn cyclic_binding(c: &mut Criterion) {
    // sum/avg/count/min/max over the same column: shared state vs five
    // independent aggregators.
    let shared_specs: Vec<BoundAggregate> = ["sum", "avg", "count", "min", "max"]
        .iter()
        .map(|f| spec(f, 2))
        .collect();
    let refs: Vec<&BoundAggregate> = shared_specs.iter().collect();
    let rows: Vec<Row> = (0..1_000).map(bench_row).collect();

    let mut g = c.benchmark_group("cyclic_binding");
    g.bench_function("shared_state_5aggs", |b| {
        b.iter(|| {
            let mut set = WindowAggSet::new(&refs).unwrap();
            for row in &rows {
                set.update(row.values()).unwrap();
            }
            set.outputs()
        })
    });
    g.bench_function("independent_5aggs", |b| {
        b.iter(|| {
            let mut aggs: Vec<Box<dyn openmldb_exec::Aggregator>> = shared_specs
                .iter()
                .map(|s| openmldb_exec::create_aggregator(s.func, &s.args).unwrap())
                .collect();
            for row in &rows {
                for (a, s) in aggs.iter_mut().zip(&shared_specs) {
                    let v = openmldb_exec::evaluate(&s.args[0], row.values(), &[]).unwrap();
                    a.update(&[v]).unwrap();
                }
            }
            aggs.iter().map(|a| a.output()).collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn preagg_query(c: &mut Criterion) {
    let window = BoundWindow {
        name: "w".into(),
        merged_names: vec!["w".into()],
        partition_cols: vec![1],
        order_col: 5,
        order_desc: false,
        frame: Frame::RowsRange {
            preceding_ms: 100_000,
        },
        maxsize: None,
        exclude_current_row: false,
        instance_not_in_window: false,
        union_tables: vec![],
    };
    let specs = vec![spec("sum", 2), spec("count", 2)];
    let preagg = PreAggregator::new(&window, &specs, vec![1_000, 10_000]).unwrap();
    let rows: Vec<Row> = (0..100_000)
        .map(|i| {
            Row::new(vec![
                Value::Bigint(i),
                Value::Bigint(0),
                Value::Double(1.0),
                Value::string("c"),
                Value::Int(1),
                Value::Timestamp(i),
            ])
        })
        .collect();
    for row in &rows {
        preagg.ingest(row).unwrap();
    }
    let key = vec![KeyValue::Int(0)];

    let mut g = c.benchmark_group("long_window");
    g.bench_function("preagg_query_100k_window", |b| {
        b.iter(|| {
            preagg
                .query(&key, 0, 99_999, |_l, _h| Ok(Vec::new()))
                .unwrap()
        })
    });
    g.bench_function("raw_scan_100k_window", |b| {
        let refs: Vec<&BoundAggregate> = specs.iter().collect();
        b.iter(|| {
            let mut set = WindowAggSet::new(&refs).unwrap();
            for row in &rows {
                set.update(row.values()).unwrap();
            }
            set.outputs()
        })
    });
    g.finish();
}

fn plan_compilation(c: &mut Criterion) {
    struct Cat(Schema);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            (name == "t1").then(|| self.0.clone())
        }
    }
    let cat = Cat(bench_schema());
    let sql = "SELECT id, sum(v) OVER w1 AS s, avg(v) OVER w1 AS a, \
               count_where(v, q > 1) OVER w2 AS cw FROM t1 \
               WINDOW w1 AS (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW), \
                      w2 AS (PARTITION BY k ORDER BY ts ROWS BETWEEN 100 PRECEDING AND CURRENT ROW)";

    let mut g = c.benchmark_group("plan");
    g.bench_function("parse_and_compile", |b| {
        b.iter(|| {
            let stmt = openmldb_sql::parse_select(sql).unwrap();
            openmldb_sql::compile_select(&stmt, &cat).unwrap()
        })
    });
    let cache = PlanCache::new();
    cache.compile(sql, &cat).unwrap();
    g.bench_function("plan_cache_hit", |b| {
        b.iter(|| cache.compile(sql, &cat).unwrap())
    });
    g.finish();
}

fn obs_overhead(c: &mut Criterion) {
    use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};

    let mut g = c.benchmark_group("obs_overhead");

    // End-to-end: the fig06-style request loop the obs/obs-off comparison
    // targets — requests anchored at the end of the generated history
    // (ts_step_ms = 10) so every window scan covers real rows. All
    // instrumentation (request counter, duration histogram, spans,
    // seek/scan/aggregate metrics) sits inside this call.
    let db = micro_db(20_000, 20, 0.0, 1);
    db.deploy(&format!("DEPLOY hp AS {}", micro_sql(1, 1, 60_000, false)))
        .unwrap();
    let mut i = 0i64;
    g.bench_function("request", |b| {
        b.iter(|| {
            i += 1;
            db.request_readonly(
                "hp",
                &micro_request(1_000_000 + i, i % 20, 200_000 + i % 100),
            )
            .unwrap()
        })
    });

    // Raw primitive costs: what one increment / one record / one sampled-out
    // span costs on the hot path (all no-ops under obs-off).
    let counter = openmldb_obs::Registry::global().counter(
        "openmldb_bench_hot_ops_total",
        "hot-path counter cost probe",
    );
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = openmldb_obs::Registry::global().histogram(
        "openmldb_bench_hot_record_ns",
        "hot-path histogram cost probe",
    );
    let mut v = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(v % 1_000_000);
        })
    });
    g.bench_function("span_untraced", |b| {
        // No active trace on this thread: the common fast path.
        b.iter(|| openmldb_obs::span(openmldb_obs::Stage::Aggregate, || std::hint::black_box(1)))
    });

    // Workload-attribution primitives added by the labeled-metrics layer:
    // one labeled increment, one full profile scope (enter + a scan-row
    // record + finish), one heavy-hitter offer. All no-ops under obs-off.
    let labeled = openmldb_obs::Registry::global().labeled_counter(
        "openmldb_bench_hot_labeled_total",
        "hot-path labeled-counter cost probe",
    );
    let label = openmldb_obs::LabelRegistry::deployments().resolve("hp");
    g.bench_function("labeled_counter_inc", |b| b.iter(|| labeled.inc(label)));
    g.bench_function("profile_scope", |b| {
        b.iter(|| {
            let scope = openmldb_obs::ProfileScope::enter();
            openmldb_obs::profile::record_scan_rows(1);
            scope.finish()
        })
    });
    g.bench_function("spacesaving_offer", |b| {
        b.iter(|| openmldb_obs::SpaceSaving::hot_deployments().offer("hp"))
    });
    g.finish();
}

fn chaos_overhead(c: &mut Criterion) {
    use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
    use openmldb_core::RequestOptions;

    let mut g = c.benchmark_group("chaos_overhead");

    // The resilient request path with a deadline budget and the default
    // retry policy, against the same fig06-style loop `obs_overhead`
    // measures. Run once with default features and once with
    // `--features chaos` (no plan installed): the delta between the two is
    // the cost of compiled-in injection points plus deadline checks on the
    // hot path — the zero-overhead-when-off contract.
    let db = micro_db(20_000, 20, 0.0, 1);
    db.deploy(&format!("DEPLOY hc AS {}", micro_sql(1, 1, 60_000, false)))
        .unwrap();
    let mut i = 0i64;
    g.bench_function("request_with_deadline", |b| {
        b.iter(|| {
            i += 1;
            // The deadline anchors when the options are built, so they must
            // be rebuilt per request — a single long bench run would
            // otherwise outlive one shared 250 ms budget and time out.
            let opts = RequestOptions::with_deadline(std::time::Duration::from_millis(250));
            db.request_readonly_with(
                "hc",
                &micro_request(2_000_000 + i, i % 20, 200_000 + i % 100),
                &opts,
            )
            .unwrap()
        })
    });

    // Raw cost of one injection-point crossing: a compiled-out no-op
    // without the feature, one unarmed-state load with it.
    g.bench_function("inject_unarmed", |b| {
        b.iter(|| openmldb_chaos::inject(openmldb_chaos::InjectionPoint::SkiplistSeek))
    });
    g.finish();
}

/// The deploy-time specialization payoff, isolated and end to end: one warm
/// window fold over the same pre-scanned, pre-sorted entries through the
/// compiled kernels (raw-byte reads, monomorphized accumulators, hoisted
/// frame guards) versus the interpreted `WindowAggSet` (`RowView` reads +
/// per-row `Value` dispatch), then the same contrast through the full
/// request path with specialization on versus pinned off.
fn compiled_eval(c: &mut Criterion) {
    use openmldb_bench::scenarios::{micro_db, micro_request, micro_sql};
    use openmldb_exec::{EntryOrder, ScanEntry};
    use openmldb_online::TableProvider;

    let db = micro_db(20_000, 20, 0.0, 0);
    db.deploy(&format!("DEPLOY ce AS {}", micro_sql(1, 0, 60_000, false)))
        .unwrap();
    let dep = db.deployment("ce").unwrap();
    assert_eq!(dep.program().compiled_windows(), 1, "plan must specialize");
    let interp =
        openmldb_online::Deployment::new("ce_interp", dep.query.clone()).with_interpreted_windows();
    let codec = CompactCodec::new(dep.query.base_schema.clone());

    // Pre-scan one key's frame into an arena so the fold benches measure
    // only per-row aggregate work, not the shared scan.
    let table = db.table("t1").unwrap();
    let index = table.find_index(&[1], Some(5)).unwrap();
    let max_ts = 20_000i64 * 10;
    let mut arena: Vec<u8> = Vec::new();
    let mut entries: Vec<ScanEntry> = Vec::new();
    let mut seq = 0usize;
    table
        .scan_window(
            index,
            &[KeyValue::Int(0)],
            max_ts - 60_000,
            max_ts,
            None,
            &mut |ts, data| {
                let start = arena.len();
                arena.extend_from_slice(data);
                entries.push(ScanEntry {
                    ts,
                    seq,
                    start,
                    len: data.len(),
                });
                seq += 1;
                true
            },
        )
        .unwrap();
    entries.sort_unstable_by_key(|e| (e.ts, e.seq));
    assert!(!entries.is_empty(), "fold benches need real rows");

    let mut g = c.benchmark_group("compiled_eval");
    let wp = dep.program().window(0).unwrap();
    let mut state = wp.new_state();
    let first = wp.first_in_frame(entries.len());
    let mut out: Vec<Value> = Vec::new();
    g.bench_function("window_fold_compiled", |b| {
        b.iter(|| {
            wp.run(
                &mut state,
                &entries,
                first,
                EntryOrder::Ascending,
                &arena,
                None,
                &codec,
                &mut || Ok(()),
            )
            .unwrap();
            out.clear();
            wp.outputs_into(&state, &arena, None, &mut out).unwrap();
            out.len()
        })
    });

    let refs: Vec<_> = dep.query.aggregates.iter().collect();
    let mut set = WindowAggSet::new(&refs).unwrap();
    let mut out_i: Vec<Value> = Vec::new();
    g.bench_function("window_fold_interpreted", |b| {
        b.iter(|| {
            set.reset();
            for e in &entries[first..] {
                let view = codec.view(e.bytes(&arena)).unwrap();
                set.update_view(&view).unwrap();
            }
            out_i.clear();
            set.outputs_into(&mut out_i);
            out_i.len()
        })
    });

    let mut i = 0i64;
    g.bench_function("request_compiled", |b| {
        b.iter(|| {
            i += 1;
            openmldb_online::execute_request(
                &db,
                &dep,
                &micro_request(5_000_000 + i, i % 20, max_ts + i % 100),
            )
            .unwrap()
        })
    });
    g.bench_function("request_interpreted", |b| {
        b.iter(|| {
            i += 1;
            openmldb_online::execute_request(
                &db,
                &interp,
                &micro_request(6_000_000 + i, i % 20, max_ts + i % 100),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    codecs,
    rowview_decode,
    skiplist,
    sliding_windows,
    cyclic_binding,
    preagg_query,
    plan_compilation,
    compiled_eval,
    obs_overhead,
    chaos_overhead
);
criterion_main!(benches);
