//! Memory management mechanisms (paper Section 8).
//!
//! * [`estimate_memory`] — the empirical table-level estimation model of
//!   Section 8.1, verified against the paper's worked example (a `latest`
//!   table with 1M rows, 300-byte rows, two indexes, two replicas and
//!   16-byte keys estimates ≈ 1.568 GB);
//! * [`recommend_engine`] — the storage-engine guidance built on it
//!   (in-memory for ~10 ms latency budgets when the estimate fits, disk for
//!   20–30 ms budgets at ~80% hardware saving);
//! * [`MemoryMonitor`] — runtime isolation and alerting (Section 8.2):
//!   per-table `max_memory` limits under which **writes fail but reads
//!   continue**, plus a threshold alert callback.

use std::sync::Arc;

use parking_lot::RwLock;

use openmldb_storage::DataTable;
#[cfg(test)]
use openmldb_storage::MemTable;

/// Table types of the Section 8.1 model, fixing the per-entry constant `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableType {
    /// Recent data per key.
    Latest,
    /// Recent entries with combination logic.
    AbsOrLat,
    /// Keyed by absolute timestamp.
    Absolute,
    /// Accessible by absolute timestamps and latest counts.
    AbsAndLat,
}

impl TableType {
    /// The paper's `C`: 70 for latest/absorlat, 74 for absolute/absandlat.
    pub fn c(self) -> u64 {
        match self {
            TableType::Latest | TableType::AbsOrLat => 70,
            TableType::Absolute | TableType::AbsAndLat => 74,
        }
    }
}

/// Per-index statistics feeding the model.
#[derive(Debug, Clone)]
pub struct IndexMemProfile {
    /// Unique primary keys on this index column (`n_pk`).
    pub unique_keys: u64,
    /// Average key length in bytes (`|pk|`).
    pub avg_key_len: u64,
}

/// Per-table statistics feeding the model.
#[derive(Debug, Clone)]
pub struct TableMemProfile {
    pub replicas: u64,
    pub indexes: Vec<IndexMemProfile>,
    pub rows: u64,
    pub avg_row_len: u64,
    pub table_type: TableType,
    /// `K`: data copies stored, between 1 and the index count.
    pub data_copies: u64,
}

/// The Section 8.1 estimation:
///
/// ```text
/// mem_total = Σ_i n_replica_i · [ Σ_j n_pk_ij · (|pk_ij| + 156)
///                               + n_index_i · n_row_i · C
///                               + K · n_row_i · |row_i| ]
/// ```
pub fn estimate_memory(tables: &[TableMemProfile]) -> u64 {
    tables
        .iter()
        .map(|t| {
            let key_term: u64 = t
                .indexes
                .iter()
                .map(|i| i.unique_keys * (i.avg_key_len + 156))
                .sum();
            let entry_term = t.indexes.len() as u64 * t.rows * t.table_type.c();
            let data_term =
                t.data_copies.clamp(1, t.indexes.len().max(1) as u64) * t.rows * t.avg_row_len;
            t.replicas * (key_term + entry_term + data_term)
        })
        .sum()
}

/// Storage-engine recommendation (Section 8.1's deployment guidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Estimate fits in memory and the latency budget is tight (~10 ms).
    InMemory,
    /// Budget allows 20–30 ms: disk saves ~80% hardware cost.
    OnDisk,
    /// Estimate exceeds memory — disk is the only option.
    DiskRequired,
}

/// Pick a storage engine for a table given its estimate, the memory
/// available, and the request latency budget.
///
/// The budget boundary is **20 ms**: a budget of 19 ms or less picks the
/// in-memory engine (when the estimate fits); 20 ms or more accepts the
/// disk engine's latency for its ~80% hardware saving. Every decision is
/// recorded in a per-tier counter (`openmldb_core_tier_*_total`).
pub fn recommend_engine(
    estimated_bytes: u64,
    available_bytes: u64,
    latency_budget_ms: u64,
) -> EngineChoice {
    let choice = if estimated_bytes > available_bytes {
        EngineChoice::DiskRequired
    } else if latency_budget_ms >= 20 {
        EngineChoice::OnDisk
    } else {
        EngineChoice::InMemory
    };
    match choice {
        EngineChoice::InMemory => crate::metrics::tier_inmemory().inc(),
        EngineChoice::OnDisk => crate::metrics::tier_ondisk().inc(),
        EngineChoice::DiskRequired => crate::metrics::tier_diskrequired().inc(),
    }
    choice
}

/// [`recommend_engine`] driven by a live [`Deadline`](openmldb_types::Deadline):
/// the latency budget is whatever remains on the request's clock (unbounded
/// deadlines read as `u64::MAX`, i.e. disk latency is acceptable). Tests pin
/// the remaining budget exactly with
/// [`deadline::clock`](openmldb_types::deadline::clock).
pub fn recommend_engine_for_deadline(
    estimated_bytes: u64,
    available_bytes: u64,
    deadline: &openmldb_types::Deadline,
) -> EngineChoice {
    let budget_ms = match deadline.remaining() {
        None => u64::MAX,
        Some(rem) => rem.as_millis().min(u64::MAX as u128) as u64,
    };
    recommend_engine(estimated_bytes, available_bytes, budget_ms)
}

/// A fired memory alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryAlert {
    pub table: String,
    pub used_bytes: usize,
    pub threshold_bytes: usize,
}

type AlertHandler = Box<dyn Fn(&MemoryAlert) + Send + Sync>;

struct Watch {
    table: Arc<dyn DataTable>,
    threshold_bytes: usize,
    fired: bool,
}

/// Runtime memory isolation + alerting (Section 8.2). Tables are registered
/// with a hard limit (enforced by the table itself: writes fail, reads
/// continue) and an alert threshold checked by [`MemoryMonitor::poll`].
#[derive(Default)]
pub struct MemoryMonitor {
    watches: RwLock<Vec<Watch>>,
    handlers: RwLock<Vec<AlertHandler>>,
}

impl MemoryMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Watch a table: `max_memory_bytes` is the hard write limit (0 = none);
    /// `alert_at` ∈ (0, 1] fires the alert at that fraction of the limit.
    pub fn watch(&self, table: Arc<dyn DataTable>, max_memory_bytes: usize, alert_at: f64) {
        table.set_max_memory_bytes(max_memory_bytes);
        let threshold_bytes = (max_memory_bytes as f64 * alert_at.clamp(0.0, 1.0)) as usize;
        self.watches.write().push(Watch {
            table,
            threshold_bytes,
            fired: false,
        });
    }

    /// Register an alert callback (notification hook of Section 8.2).
    pub fn on_alert(&self, f: impl Fn(&MemoryAlert) + Send + Sync + 'static) {
        self.handlers.write().push(Box::new(f));
    }

    /// Check every watched table; fire alerts that newly crossed their
    /// thresholds (re-arming once usage drops below again). Returns alerts
    /// fired this round.
    pub fn poll(&self) -> Vec<MemoryAlert> {
        let mut fired = Vec::new();
        let mut total_used = 0usize;
        {
            let mut watches = self.watches.write();
            for w in watches.iter_mut() {
                if w.threshold_bytes == 0 {
                    continue;
                }
                let used = w.table.mem_used();
                total_used += used;
                if used >= w.threshold_bytes {
                    if !w.fired {
                        w.fired = true;
                        fired.push(MemoryAlert {
                            table: w.table.name().to_string(),
                            used_bytes: used,
                            threshold_bytes: w.threshold_bytes,
                        });
                    }
                } else {
                    w.fired = false;
                }
            }
        }
        crate::metrics::memory_used().set(total_used as f64);
        crate::metrics::memory_watermark().set_max(total_used as f64);
        crate::metrics::memory_alerts().add(fired.len() as u64);
        let handlers = self.handlers.read();
        for alert in &fired {
            for h in handlers.iter() {
                h(alert);
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_storage::{IndexSpec, Ttl};
    use openmldb_types::{DataType, Row, Schema, Value};

    /// The paper's worked example: "latest" table, 1M rows, 300-byte rows,
    /// two indexes, 2 replicas, 16-byte keys, C=70, K=1 → about 1.568 GB.
    #[test]
    fn paper_example_estimates_1_568_gb() {
        let profile = TableMemProfile {
            replicas: 2,
            indexes: vec![
                IndexMemProfile {
                    unique_keys: 1_000_000,
                    avg_key_len: 16,
                },
                IndexMemProfile {
                    unique_keys: 1_000_000,
                    avg_key_len: 16,
                },
            ],
            rows: 1_000_000,
            avg_row_len: 300,
            table_type: TableType::Latest,
            data_copies: 1,
        };
        let bytes = estimate_memory(&[profile]);
        let gb = bytes as f64 / 1e9;
        assert!((gb - 1.568).abs() < 0.001, "estimated {gb} GB");
    }

    #[test]
    fn c_constant_by_table_type() {
        assert_eq!(TableType::Latest.c(), 70);
        assert_eq!(TableType::AbsOrLat.c(), 70);
        assert_eq!(TableType::Absolute.c(), 74);
        assert_eq!(TableType::AbsAndLat.c(), 74);
    }

    #[test]
    fn k_is_clamped_to_index_count() {
        let mk = |k: u64| TableMemProfile {
            replicas: 1,
            indexes: vec![IndexMemProfile {
                unique_keys: 10,
                avg_key_len: 8,
            }],
            rows: 100,
            avg_row_len: 10,
            table_type: TableType::Absolute,
            data_copies: k,
        };
        assert_eq!(estimate_memory(&[mk(1)]), estimate_memory(&[mk(5)]));
    }

    /// The 20 ms boundary driven by a live deadline, pinned on the virtual
    /// clock: the remaining budget is exact, so the decision cannot flake on
    /// scheduler stalls the way wall-clock `remaining()` readings can.
    #[test]
    fn deadline_driven_boundary_is_exact_on_the_virtual_clock() {
        use openmldb_types::deadline::clock;
        use openmldb_types::Deadline;
        use std::time::Duration;

        clock::freeze();
        let d = Deadline::within_ms(45);
        // 45 ms remain: disk latency is acceptable.
        assert_eq!(
            recommend_engine_for_deadline(10, 100, &d),
            EngineChoice::OnDisk
        );
        clock::advance(Duration::from_millis(25));
        // Exactly 20 ms remain — the documented boundary stays on disk.
        assert_eq!(
            recommend_engine_for_deadline(10, 100, &d),
            EngineChoice::OnDisk
        );
        clock::advance(Duration::from_millis(1));
        // 19 ms remain: only the in-memory engine can answer in time.
        assert_eq!(
            recommend_engine_for_deadline(10, 100, &d),
            EngineChoice::InMemory
        );
        // Unbounded deadline: budget reads as MAX, disk accepted.
        assert_eq!(
            recommend_engine_for_deadline(10, 100, &Deadline::none()),
            EngineChoice::OnDisk
        );
        // Over-budget estimate still forces disk regardless of the clock.
        assert_eq!(
            recommend_engine_for_deadline(101, 100, &d),
            EngineChoice::DiskRequired
        );
        clock::thaw();
    }

    #[test]
    fn engine_recommendation() {
        assert_eq!(recommend_engine(10, 100, 10), EngineChoice::InMemory);
        assert_eq!(recommend_engine(10, 100, 25), EngineChoice::OnDisk);
        assert_eq!(recommend_engine(200, 100, 10), EngineChoice::DiskRequired);
    }

    /// The documented 20 ms budget boundary: 19 ms stays in memory, 20 ms
    /// moves to disk — and each decision lands in its tier counter.
    #[test]
    fn tier_boundary_at_20ms_and_counters_record_decisions() {
        let inmem0 = crate::metrics::tier_inmemory().value();
        let ondisk0 = crate::metrics::tier_ondisk().value();
        let forced0 = crate::metrics::tier_diskrequired().value();

        assert_eq!(recommend_engine(10, 100, 19), EngineChoice::InMemory);
        assert_eq!(recommend_engine(10, 100, 20), EngineChoice::OnDisk);
        assert_eq!(recommend_engine(10, 100, 0), EngineChoice::InMemory);
        assert_eq!(recommend_engine(10, 100, u64::MAX), EngineChoice::OnDisk);
        // over-budget estimate wins regardless of latency budget
        assert_eq!(recommend_engine(101, 100, 19), EngineChoice::DiskRequired);
        assert_eq!(recommend_engine(101, 100, 20), EngineChoice::DiskRequired);

        if openmldb_obs::enabled() {
            // counters are global and other tests run in parallel, so only
            // lower bounds are safe to assert
            assert!(crate::metrics::tier_inmemory().value() >= inmem0 + 2);
            assert!(crate::metrics::tier_ondisk().value() >= ondisk0 + 2);
            assert!(crate::metrics::tier_diskrequired().value() >= forced0 + 2);
        }
    }

    fn small_table() -> Arc<dyn DataTable> {
        let schema =
            Schema::from_pairs(&[("k", DataType::Bigint), ("ts", DataType::Timestamp)]).unwrap();
        Arc::new(
            MemTable::new(
                "t",
                schema,
                vec![IndexSpec {
                    name: "i".into(),
                    key_cols: vec![0],
                    ts_col: Some(1),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        )
    }

    #[test]
    fn monitor_fires_once_per_crossing() {
        let table = small_table();
        let monitor = MemoryMonitor::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        monitor.on_alert(move |a| s.lock().push(a.clone()));
        monitor.watch(table.clone(), 1_000_000, 0.001);
        assert!(monitor.poll().is_empty(), "empty table below threshold");
        for i in 0..50 {
            table
                .put(&Row::new(vec![Value::Bigint(i), Value::Timestamp(i)]))
                .unwrap();
        }
        assert_eq!(monitor.poll().len(), 1, "alert fires on crossing");
        assert!(monitor.poll().is_empty(), "does not re-fire while above");
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn monitor_enforces_write_limit() {
        let table = small_table();
        let monitor = MemoryMonitor::new();
        monitor.watch(table.clone(), 1_000, 0.5);
        let mut rejected = false;
        for i in 0..200 {
            if table
                .put(&Row::new(vec![Value::Bigint(i), Value::Timestamp(i)]))
                .is_err()
            {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "hard limit rejects writes");
        // Reads continue.
        assert!(table
            .latest(0, &[openmldb_types::KeyValue::Int(0)])
            .unwrap()
            .is_some());
    }
}
