//! Durability and crash recovery for the embedded [`Database`].
//!
//! The paper's tablets persist every write to a binlog and periodically
//! snapshot table state so a restarted node can rebuild itself from
//! `snapshot + binlog suffix` (§5.1). This module is that spine for the
//! embedded engine:
//!
//! * a durable directory holds a `MANIFEST` (schemas, indexes, deployments),
//!   one WAL directory per table (`wal/<table>/seg-*.wal`) mirrored from the
//!   table's replicator, and atomically-published snapshots
//!   (`snap/<table>-<offset>.snap`);
//! * [`Database::recover`] rebuilds a process from that directory: manifest
//!   → empty tables → latest valid snapshot rows → WAL suffix replay →
//!   deployments (pre-aggregates backfill through the ordinary catch-up
//!   subscription) — every put flows through the normal write path, so
//!   skiplists, binlog offsets, replica feeds and pre-aggregate state come
//!   back exactly as the ordinary write path would have built them;
//! * [`Database::table_digest`] folds the canonical WAL encoding of every
//!   binlog entry into an FNV-1a digest — the byte-identity oracle the
//!   crash harness compares across kill/restart cycles.
//!
//! ## Recovery state machine
//!
//! ```text
//! open MANIFEST ──(absent)──▶ fresh empty durable database
//!   │
//!   ▼ per table
//! create empty table (no WAL attached)
//!   ▼
//! latest *valid* snapshot (CRC + commit marker; torn files skipped)
//!   ▼ decode + put rows [0, covered)
//! WAL scan (torn tail truncated) ─ replay entries with offset ≥ covered
//!   ▼
//! attach WAL: re-append any binlog suffix the disk is missing, then
//! mirror all future appends (write-through under the offset lock)
//!   ▼ after all tables
//! re-run stored DEPLOY statements (plan compile, index builds,
//! pre-aggregate backfill via catch-up subscription)
//! ```
//!
//! The WAL is never pruned by this module, so a torn or missing snapshot
//! always degrades to a longer replay, never to data loss: everything a
//! snapshot could hold is still in the log.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use openmldb_online::TableProvider;
use openmldb_storage::{
    snapshot, wal, Backend, DataTable, DiskTable, IndexSpec, LogEntry, MemTable, Ttl, Wal,
    WalOptions,
};
use openmldb_types::{ColumnDef, CompactCodec, DataType, Error, Result, RowCodec, Schema};

use crate::database::Database;

/// Tuning knobs for a durable database directory.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// WAL segment size and group-commit batching.
    pub wal: WalOptions,
    /// Published snapshots retained per table (older ones are pruned after
    /// each successful snapshot; the WAL keeps full history regardless).
    pub snapshot_keep: usize,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            wal: WalOptions::default(),
            snapshot_keep: 2,
        }
    }
}

/// An attached durable directory: layout helpers plus the options it was
/// opened with.
pub struct DurabilityCtx {
    dir: PathBuf,
    opts: DurabilityOptions,
}

impl DurabilityCtx {
    pub(crate) fn wal_dir(&self, table: &str) -> PathBuf {
        self.dir.join("wal").join(table)
    }

    pub(crate) fn snap_dir(&self) -> PathBuf {
        self.dir.join("snap")
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Storage(format!("durability {context} {}: {e}", path.display()))
}

// ------------------------------------------------------------ manifest ---

struct TableManifest {
    name: String,
    backend: Backend,
    cols: Vec<ColumnDef>,
    indexes: Vec<IndexSpec>,
}

struct Manifest {
    tables: Vec<TableManifest>,
    deploys: Vec<(String, String)>,
}

fn ttl_to_str(ttl: &Ttl) -> String {
    match ttl {
        Ttl::Unlimited => "unlimited".into(),
        Ttl::Latest(n) => format!("latest={n}"),
        Ttl::AbsoluteMs(ms) => format!("abs={ms}"),
        Ttl::AbsAndLat { ms, latest } => format!("absandlat={ms},{latest}"),
        Ttl::AbsOrLat { ms, latest } => format!("absorlat={ms},{latest}"),
    }
}

fn ttl_from_str(s: &str) -> Result<Ttl> {
    let bad = || Error::Storage(format!("manifest: malformed ttl `{s}`"));
    if s == "unlimited" {
        return Ok(Ttl::Unlimited);
    }
    let (kind, args) = s.split_once('=').ok_or_else(bad)?;
    match kind {
        "latest" => Ok(Ttl::Latest(args.parse().map_err(|_| bad())?)),
        "abs" => Ok(Ttl::AbsoluteMs(args.parse().map_err(|_| bad())?)),
        "absandlat" | "absorlat" => {
            let (ms, latest) = args.split_once(',').ok_or_else(bad)?;
            let ms = ms.parse().map_err(|_| bad())?;
            let latest = latest.parse().map_err(|_| bad())?;
            Ok(if kind == "absandlat" {
                Ttl::AbsAndLat { ms, latest }
            } else {
                Ttl::AbsOrLat { ms, latest }
            })
        }
        _ => Err(bad()),
    }
}

fn datatype_from_str(s: &str) -> Result<DataType> {
    Ok(match s {
        "BOOL" => DataType::Bool,
        "INT" => DataType::Int,
        "BIGINT" => DataType::Bigint,
        "FLOAT" => DataType::Float,
        "DOUBLE" => DataType::Double,
        "TIMESTAMP" => DataType::Timestamp,
        "STRING" => DataType::String,
        other => {
            return Err(Error::Storage(format!(
                "manifest: unknown column type `{other}`"
            )))
        }
    })
}

fn parse_manifest(text: &str, path: &Path) -> Result<Manifest> {
    let bad = |line: &str, why: &str| {
        Error::Storage(format!("manifest {}: {why}: `{line}`", path.display()))
    };
    let mut lines = text.lines();
    match lines.next() {
        Some("openmldb-manifest v1") => {}
        _ => return Err(bad("", "missing version header")),
    }
    let mut tables = Vec::new();
    let mut deploys = Vec::new();
    let mut current: Option<TableManifest> = None;
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, ' ');
        let tag = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("");
        match tag {
            "table" => {
                if current.is_some() {
                    return Err(bad(line, "table before previous `end`"));
                }
                let (name, backend) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(line, "expected `table <name> <mem|disk>`"))?;
                let backend = match backend {
                    "mem" => Backend::Memory,
                    "disk" => Backend::Disk,
                    _ => return Err(bad(line, "unknown backend")),
                };
                current = Some(TableManifest {
                    name: name.to_string(),
                    backend,
                    cols: Vec::new(),
                    indexes: Vec::new(),
                });
            }
            "col" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| bad(line, "col outside table"))?;
                let fields: Vec<&str> = rest.split(' ').collect();
                let [name, dt, null] = fields[..] else {
                    return Err(bad(line, "expected `col <name> <TYPE> <null|notnull>`"));
                };
                let col = ColumnDef::new(name.to_string(), datatype_from_str(dt)?);
                t.cols
                    .push(if null == "null" { col } else { col.not_null() });
            }
            "index" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| bad(line, "index outside table"))?;
                let fields: Vec<&str> = rest.split(' ').collect();
                let [name, keys, ts, ttl] = fields[..] else {
                    return Err(bad(line, "expected `index <name> <keys> <ts|-> <ttl>`"));
                };
                let key_cols = keys
                    .split(',')
                    .map(|k| k.parse::<usize>())
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|_| bad(line, "malformed key columns"))?;
                let ts_col = if ts == "-" {
                    None
                } else {
                    Some(ts.parse().map_err(|_| bad(line, "malformed ts column"))?)
                };
                t.indexes.push(IndexSpec {
                    name: name.to_string(),
                    key_cols,
                    ts_col,
                    ttl: ttl_from_str(ttl)?,
                });
            }
            "end" => {
                let t = current
                    .take()
                    .ok_or_else(|| bad(line, "end outside table"))?;
                tables.push(t);
            }
            "deploy" => {
                let (name, sql) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(line, "expected `deploy <name> <sql>`"))?;
                deploys.push((name.to_string(), sql.to_string()));
            }
            _ => return Err(bad(line, "unknown manifest tag")),
        }
    }
    if current.is_some() {
        return Err(bad("", "unterminated table block"));
    }
    Ok(Manifest { tables, deploys })
}

// ---------------------------------------------------------- digest oracle ---

/// FNV-1a 64-bit fold.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Digest a sequence of binlog entries: FNV-1a over each entry's canonical
/// WAL encoding (offset, timestamp, table, key, payload). Two logs digest
/// equal iff they are byte-identical entry for entry — the oracle the crash
/// harness evaluates: it computes the expected value from the golden run's
/// durable WAL prefix and compares it against the recovered process's
/// [`Database::table_digest`].
pub fn digest_entries<'a>(entries: impl IntoIterator<Item = &'a LogEntry>) -> u64 {
    let mut h = Fnv64::new();
    for e in entries {
        h.eat(&wal::encode_entry(e));
    }
    h.0
}

// ------------------------------------------------------------- database ---

impl Database {
    /// Open (or create) a durable database at `dir` with default options:
    /// recover everything the directory holds, then keep mirroring every
    /// write into the per-table WALs.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<Database> {
        Self::recover_with(dir, DurabilityOptions::default())
    }

    /// [`Database::recover`] with explicit WAL / snapshot tuning.
    pub fn recover_with(dir: impl Into<PathBuf>, opts: DurabilityOptions) -> Result<Database> {
        let started = std::time::Instant::now();
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        let ctx = Arc::new(DurabilityCtx { dir, opts });
        let db = Database::new();
        *db.durability.write() = Some(ctx.clone());

        let manifest_path = ctx.manifest_path();
        let mut recovered_rows = 0u64;
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)
                .map_err(|e| io_err("read", &manifest_path, e))?;
            let manifest = parse_manifest(&text, &manifest_path)?;
            for spec in &manifest.tables {
                recovered_rows += db.recover_table(spec, &ctx)?;
            }
            for (_, sql) in &manifest.deploys {
                db.deploy(sql)?;
            }
        }
        // Fresh directories get an empty manifest; recovered ones converge
        // to the same content they already had.
        db.write_manifest()?;
        crate::metrics::recoveries().inc();
        crate::metrics::recovered_rows().add(recovered_rows);
        crate::metrics::recovery_duration().record(started.elapsed().as_millis() as u64);
        Ok(db)
    }

    /// Rebuild one table: empty shell, snapshot prefix, WAL suffix, then
    /// attach the WAL (healing any binlog suffix the disk is missing).
    fn recover_table(&self, spec: &TableManifest, ctx: &DurabilityCtx) -> Result<u64> {
        let schema = Schema::new(spec.cols.clone())?;
        let table: Arc<dyn DataTable> = match spec.backend {
            Backend::Memory => Arc::new(MemTable::new(
                spec.name.clone(),
                schema.clone(),
                spec.indexes.clone(),
            )?),
            Backend::Disk => Arc::new(DiskTable::new(
                spec.name.clone(),
                schema.clone(),
                spec.indexes.clone(),
            )?),
        };
        let (wal, scan) = Wal::open(ctx.wal_dir(&spec.name), ctx.opts.wal)?;
        let codec = CompactCodec::new(schema);
        let mut covered = 0u64;
        let mut rows = 0u64;
        if let Some(snap) = snapshot::latest_valid(&ctx.snap_dir(), &spec.name)? {
            covered = snap.covered_offset;
            for data in &snap.rows {
                table.put(&codec.decode(data)?)?;
                rows += 1;
            }
        }
        for rec in &scan.records {
            if rec.entry.offset >= covered {
                table.put(&codec.decode(&rec.entry.data)?)?;
                rows += 1;
            }
        }
        // Attach last: the recovery puts above must not write through (the
        // WAL already holds them); attaching heals any suffix the snapshot
        // covered beyond the surviving log, then mirrors future appends.
        table.replicator().attach_wal(Arc::new(wal))?;
        self.tables.write().insert(spec.name.clone(), table);
        Ok(rows)
    }

    /// The durable directory this database mirrors into, if any.
    pub fn durable_path(&self) -> Option<PathBuf> {
        self.durability.read().as_ref().map(|c| c.dir.clone())
    }

    /// Force every table's WAL group-commit buffer to disk. After this
    /// returns, every accepted write survives a crash.
    pub fn sync_durable(&self) -> Result<()> {
        let tables: Vec<Arc<dyn DataTable>> = self.tables.read().values().cloned().collect();
        for t in tables {
            t.replicator().sync_wal()?;
        }
        Ok(())
    }

    /// Snapshot every table's durable prefix and prune old snapshots.
    /// Returns the number of snapshots published. Each table's WAL is
    /// synced first, so a snapshot never covers offsets the disk does not
    /// hold (the time-consistency invariant recovery relies on).
    pub fn snapshot_now(&self) -> Result<usize> {
        let ctx = self
            .durability
            .read()
            .clone()
            .ok_or_else(|| Error::Storage("database has no durable directory".into()))?;
        let mut published = 0;
        for name in self.table_names() {
            if self.snapshot_table(&name, &ctx)? {
                published += 1;
            }
        }
        Ok(published)
    }

    fn snapshot_table(&self, name: &str, ctx: &DurabilityCtx) -> Result<bool> {
        let table = self
            .table(name)
            .ok_or_else(|| Error::Storage(format!("unknown table `{name}`")))?;
        let replicator = table.replicator();
        replicator.sync_wal()?;
        let Some(wal) = replicator.wal() else {
            return Ok(false);
        };
        let covered = wal.durable_offset();
        if covered == 0 {
            return Ok(false);
        }
        let mut rows = Vec::with_capacity(covered as usize);
        replicator.replay(0, |e| {
            if e.offset < covered {
                rows.push(e.data.clone());
            }
        });
        snapshot::write(&ctx.snap_dir(), name, covered, &rows)?;
        snapshot::prune(&ctx.snap_dir(), name, ctx.opts.snapshot_keep)?;
        Ok(true)
    }

    /// FNV-1a digest of `table`'s full binlog in canonical WAL encoding —
    /// byte-identity oracle for crash/recovery testing.
    pub fn table_digest(&self, table: &str) -> Result<u64> {
        let t = self
            .table(table)
            .ok_or_else(|| Error::Storage(format!("unknown table `{table}`")))?;
        let mut h = Fnv64::new();
        t.replicator().replay(0, |e| h.eat(&wal::encode_entry(e)));
        Ok(h.0)
    }

    /// Durable re-wire after a catalog swap (index rebuild, replica
    /// promotion, programmatic registration): the new table's replicator
    /// was rebuilt outside binlog order, so the old WAL and snapshots are
    /// stale — wipe them, write a fresh WAL from the new log, and republish
    /// the manifest. No-op on a non-durable database.
    pub(crate) fn rewire_durable_table(&self, name: &str) -> Result<()> {
        let Some(ctx) = self.durability.read().clone() else {
            return Ok(());
        };
        let table = self
            .table(name)
            .ok_or_else(|| Error::Storage(format!("unknown table `{name}`")))?;
        let wal_dir = ctx.wal_dir(name);
        let _ = fs::remove_dir_all(&wal_dir);
        snapshot::prune(&ctx.snap_dir(), name, 1)?;
        for (_, path) in snapshot::list(&ctx.snap_dir(), name)? {
            let _ = fs::remove_file(path);
        }
        let (wal, _) = Wal::open(wal_dir, ctx.opts.wal)?;
        table.replicator().attach_wal(Arc::new(wal))?;
        self.write_manifest()
    }

    /// Atomically publish the manifest (schemas, indexes, deployments).
    /// No-op on a non-durable database.
    pub(crate) fn write_manifest(&self) -> Result<()> {
        let Some(ctx) = self.durability.read().clone() else {
            return Ok(());
        };
        let mut out = String::from("openmldb-manifest v1\n");
        {
            let tables = self.tables.read();
            let mut names: Vec<&String> = tables.keys().collect();
            names.sort();
            for name in names {
                let t = &tables[name.as_str()];
                let backend = match t.backend() {
                    Backend::Memory => "mem",
                    Backend::Disk => "disk",
                };
                out.push_str(&format!("table {name} {backend}\n"));
                for c in t.schema().columns() {
                    let null = if c.nullable { "null" } else { "notnull" };
                    out.push_str(&format!(
                        "col {} {} {null}\n",
                        c.name,
                        c.data_type.sql_name()
                    ));
                }
                for idx in t.index_specs() {
                    let keys = idx
                        .key_cols
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    let ts = idx.ts_col.map_or_else(|| "-".into(), |i| i.to_string());
                    out.push_str(&format!(
                        "index {} {keys} {ts} {}\n",
                        idx.name,
                        ttl_to_str(&idx.ttl)
                    ));
                }
                out.push_str("end\n");
            }
        }
        for (name, sql) in self.deploy_sql.read().iter() {
            out.push_str(&format!(
                "deploy {name} {}\n",
                sql.replace(['\n', '\r'], " ")
            ));
        }
        let path = ctx.manifest_path();
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp).map_err(|e| io_err("create manifest tmp", &tmp, e))?;
        f.write_all(out.as_bytes())
            .map_err(|e| io_err("write manifest", &tmp, e))?;
        f.sync_data()
            .map_err(|e| io_err("fsync manifest", &tmp, e))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(|e| io_err("rename manifest", &path, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ExecResult;
    use openmldb_types::{Row, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "openmldb_durable_{tag}_{}_{seq}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed(db: &Database, n: i64) {
        db.execute(
            "CREATE TABLE actions (userid BIGINT, category STRING, price DOUBLE, \
             quantity INT, ts TIMESTAMP, INDEX(KEY=userid, TS=ts))",
        )
        .unwrap();
        for i in 0..n {
            db.execute(&format!(
                "INSERT INTO actions VALUES ({}, 'c{}', {}.5, 1, {})",
                i % 3,
                i % 5,
                i,
                1_000 + i * 37
            ))
            .unwrap();
        }
    }

    #[test]
    fn clean_restart_recovers_byte_identical_tables() {
        let dir = tmp_dir("clean");
        let digest = {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 40);
            db.sync_durable().unwrap();
            db.table_digest("actions").unwrap()
        };
        let db = Database::recover(&dir).unwrap();
        assert_eq!(db.table_digest("actions").unwrap(), digest);
        assert_eq!(db.table("actions").unwrap().row_count(), 40);
        // The recovered process keeps accepting durable writes.
        db.execute("INSERT INTO actions VALUES (9, 'z', 1.0, 1, 99999)")
            .unwrap();
        db.sync_durable().unwrap();
        let db2 = Database::recover(&dir).unwrap();
        assert_eq!(db2.table("actions").unwrap().row_count(), 41);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_wal_suffix_covers_all_rows() {
        let dir = tmp_dir("snapwal");
        let digest = {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 30);
            assert_eq!(db.snapshot_now().unwrap(), 1, "one table snapshotted");
            for i in 30..50 {
                db.execute(&format!(
                    "INSERT INTO actions VALUES (1, 'c', {i}.5, 1, {})",
                    1_000 + i * 37
                ))
                .unwrap();
            }
            db.sync_durable().unwrap();
            db.table_digest("actions").unwrap()
        };
        let db = Database::recover(&dir).unwrap();
        assert_eq!(db.table("actions").unwrap().row_count(), 50);
        assert_eq!(db.table_digest("actions").unwrap(), digest);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deployments_and_preaggs_survive_recovery() {
        let dir = tmp_dir("deploy");
        let expected = {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 50);
            db.deploy(
                "DEPLOY demo OPTIONS(long_windows=\"w:10s\") AS \
                 SELECT userid, sum(price) OVER w AS s FROM actions \
                 WINDOW w AS (PARTITION BY userid ORDER BY ts \
                 ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
            )
            .unwrap();
            db.sync_durable().unwrap();
            let req = Row::new(vec![
                Value::Bigint(1),
                Value::string("c"),
                Value::Double(0.0),
                Value::Int(1),
                Value::Timestamp(1_000_000),
            ]);
            db.request_readonly("demo", &req).unwrap()
        };
        let db = Database::recover(&dir).unwrap();
        assert!(db.deployment("demo").is_some(), "deployment restored");
        let req = Row::new(vec![
            Value::Bigint(1),
            Value::string("c"),
            Value::Double(0.0),
            Value::Int(1),
            Value::Timestamp(1_000_000),
        ]);
        let out = db.request_readonly("demo", &req).unwrap();
        assert_eq!(out, expected, "pre-aggregate state rebuilt identically");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_loses_only_unsynced_suffix() {
        let dir = tmp_dir("torn");
        {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 20);
            db.sync_durable().unwrap();
        }
        // Sever the WAL mid-record: the torn record and everything after it
        // is dropped, every fully-synced record before it survives.
        let wal_dir = dir.join("wal").join("actions");
        let total = wal::total_bytes(&wal_dir).unwrap();
        wal::truncate_to(&wal_dir, total - 3).unwrap();
        let db = Database::recover(&dir).unwrap();
        assert_eq!(
            db.table("actions").unwrap().row_count(),
            19,
            "exactly the torn record is lost"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_survives_disk_tables_and_sql_roundtrip() {
        let dir = tmp_dir("manifest");
        {
            let db = Database::recover(&dir).unwrap();
            db.create_disk_table(
                "CREATE TABLE cold (k BIGINT, v DOUBLE, ts TIMESTAMP, \
                 INDEX(KEY=k, TS=ts, TTL=100, TTL_TYPE=latest))",
            )
            .unwrap();
            db.execute("INSERT INTO cold VALUES (7, 1.5, 123)").unwrap();
            db.sync_durable().unwrap();
        }
        let db = Database::recover(&dir).unwrap();
        let t = db.table("cold").expect("disk table restored");
        assert_eq!(t.backend(), Backend::Disk);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.index_specs()[0].ttl, Ttl::Latest(100));
        let ExecResult::Batch(b) = db.execute("SELECT k FROM cold").unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(b.rows.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ttl_specs_roundtrip_through_manifest_encoding() {
        for ttl in [
            Ttl::Unlimited,
            Ttl::Latest(7),
            Ttl::AbsoluteMs(123_456),
            Ttl::AbsAndLat { ms: 10, latest: 3 },
            Ttl::AbsOrLat { ms: 99, latest: 1 },
        ] {
            assert_eq!(ttl_from_str(&ttl_to_str(&ttl)).unwrap(), ttl);
        }
        assert!(ttl_from_str("bogus=1").is_err());
    }

    #[test]
    fn index_rebuild_rewrites_the_wal_for_recovery() {
        let dir = tmp_dir("rebuild");
        let digest = {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 25);
            // Deploy partitioned by a non-indexed column: triggers an index
            // rebuild that swaps the table (and its replicator) out from
            // under the durable mirror.
            db.deploy(
                "DEPLOY by_cat AS SELECT count(price) OVER w AS c FROM actions \
                 WINDOW w AS (PARTITION BY category ORDER BY ts \
                 ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
            )
            .unwrap();
            db.sync_durable().unwrap();
            db.table_digest("actions").unwrap()
        };
        let db = Database::recover(&dir).unwrap();
        assert_eq!(db.table_digest("actions").unwrap(), digest);
        assert_eq!(db.table("actions").unwrap().row_count(), 25);
        assert!(
            db.table("actions")
                .unwrap()
                .index_specs()
                .iter()
                .any(|i| i.name.starts_with("idx_auto")),
            "rebuilt index preserved across recovery"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_replicators_report_zero_undelivered() {
        let dir = tmp_dir("undeliv");
        {
            let db = Database::recover(&dir).unwrap();
            seed(&db, 15);
            db.sync_durable().unwrap();
        }
        let db = Database::recover(&dir).unwrap();
        let t = db.table("actions").unwrap();
        t.replicator().flush();
        assert_eq!(
            t.replicator().undelivered(),
            0,
            "no phantom undelivered after recovery"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
