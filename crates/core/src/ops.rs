//! The live ops plane: a background driver thread (metric trend ticks +
//! consistency-sentinel audits) and the optional HTTP exposition endpoint,
//! both owned by one [`OpsPlane`] handle.
//!
//! [`Database::start_ops`] wires everything together:
//!
//! * enables 1-in-N request sampling for the consistency sentinel;
//! * spawns the driver thread, which every [`OpsConfig::tick_every`]
//!   advances [`Registry::tick`] (so `/metrics` trends move while the
//!   process serves) and drains a bounded batch of sentinel audits;
//! * when [`OpsConfig::http_addr`] is set, binds the dependency-free
//!   HTTP/1.1 responder from [`openmldb_obs::ops`] with the
//!   database-specific routes `/healthz` and `/explain/<deployment>`
//!   registered next to the built-in `/metrics` and `/report`.
//!
//! The driver holds only a [`Weak`] database reference: dropping the last
//! `Arc<Database>` ends the thread on its next tick, and dropping the
//! [`OpsPlane`] stops both the driver and the listener deterministically.
//!
//! Under `obs-off` there is nothing to expose; [`Database::start_ops`]
//! returns [`Error::Unsupported`] without spawning anything.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use openmldb_obs::ops::{OpsResponse, OpsServer};
use openmldb_obs::Registry;
use openmldb_online::sentinel;
use openmldb_online::AuditStats;
use openmldb_types::{Error, Result};

use crate::database::Database;

/// Environment variable consulted for the default HTTP bind address.
pub const OPS_ADDR_ENV: &str = "OPENMLDB_OPS_ADDR";

/// Configuration for [`Database::start_ops`].
#[derive(Clone, Debug)]
pub struct OpsConfig {
    /// Bind address for the HTTP exposition endpoint (e.g.
    /// `"127.0.0.1:9527"`; use port `0` to let the kernel pick). `None`
    /// runs the driver without a listener. Defaults to the
    /// [`OPS_ADDR_ENV`] environment variable when set.
    pub http_addr: Option<String>,
    /// Consistency-sentinel sampling rate: audit one in N served requests
    /// (`0` disables sampling).
    pub sample_every: u32,
    /// Driver cadence: each iteration advances the metric trend rings and
    /// drains one audit batch.
    pub tick_every: Duration,
    /// Maximum sentinel samples audited per driver iteration (bounds
    /// background CPU per tick).
    pub audit_batch: usize,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            http_addr: std::env::var(OPS_ADDR_ENV).ok(),
            sample_every: 64,
            tick_every: Duration::from_millis(250),
            audit_batch: 256,
        }
    }
}

/// A running ops plane. Dropping it stops the driver thread and the HTTP
/// listener (if any) and joins both.
pub struct OpsPlane {
    stop: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
    server: Option<OpsServer>,
}

impl OpsPlane {
    /// The bound HTTP address, when a listener was configured.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Stop the driver and the listener and join both threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.driver.take() {
            let _ = t.join();
        }
        if let Some(mut s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for OpsPlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Database {
    /// Start the live ops plane: sentinel sampling, the periodic driver
    /// (trend ticks + audit drains), and — when configured — the HTTP
    /// exposition endpoint. Returns [`Error::Unsupported`] under
    /// `obs-off`, where every surface this plane would expose is compiled
    /// to a no-op.
    pub fn start_ops(self: &Arc<Self>, cfg: OpsConfig) -> Result<OpsPlane> {
        if !openmldb_obs::enabled() {
            return Err(Error::Unsupported(
                "ops plane unavailable: observability is compiled out (obs-off)".into(),
            ));
        }
        sentinel::set_sample_every(cfg.sample_every);
        let stop = Arc::new(AtomicBool::new(false));

        let weak: Weak<Database> = Arc::downgrade(self);
        let driver = {
            let stop = Arc::clone(&stop);
            let weak = Weak::clone(&weak);
            let tick_every = cfg.tick_every;
            let batch = cfg.audit_batch;
            std::thread::Builder::new()
                .name("openmldb-ops-driver".into())
                .spawn(move || loop {
                    std::thread::sleep(tick_every);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Some(db) = weak.upgrade() else { break };
                    Registry::global().tick();
                    db.sentinel_drain(batch);
                })
                .map_err(|e| Error::Storage(format!("ops driver spawn failed: {e}")))?
        };

        let server = match &cfg.http_addr {
            Some(addr) => {
                let handler: openmldb_obs::OpsHandler = Arc::new(move |path: &str| {
                    let db = weak.upgrade()?;
                    if path == "/healthz" {
                        return Some(OpsResponse::ok("application/json", db.healthz_json()));
                    }
                    if let Some(name) = path.strip_prefix("/explain/") {
                        if name.is_empty() {
                            return None;
                        }
                        return Some(OpsResponse::ok("text/plain", db.explain_analyze(name)));
                    }
                    None
                });
                Some(
                    openmldb_obs::ops::serve(addr, handler)
                        .map_err(|e| Error::Storage(format!("ops listener bind failed: {e}")))?,
                )
            }
            None => None,
        };

        Ok(OpsPlane {
            stop,
            driver: Some(driver),
            server,
        })
    }

    /// Drain up to `max` queued consistency-sentinel samples through the
    /// oracle replays, synchronously (the driver thread calls this; tests
    /// and benchmarks call it directly for deterministic audits).
    pub fn sentinel_drain(&self, max: usize) -> AuditStats {
        sentinel::drain(self, &|name| self.deployment(name), max)
    }

    /// The sentinel health verdict as a one-line JSON object: cumulative
    /// sample/audit/divergence counters, queue lag, and resilience
    /// counters, plus `"ok"` — `true` iff no divergence has ever been
    /// confirmed in this process.
    pub fn healthz_json(&self) -> String {
        let s = sentinel::stats();
        let timeouts = openmldb_online::metrics::timeouts().value();
        let degraded = openmldb_online::metrics::degraded().value();
        format!(
            "{{\"ok\":{},\"divergences\":{},\"samples\":{},\"audits\":{},\
             \"stale_skips\":{},\"dropped\":{},\"errors\":{},\"queue_lag\":{},\
             \"sample_every\":{},\"timeouts\":{},\"degraded\":{}}}",
            s.divergences == 0,
            s.divergences,
            s.samples,
            s.audits,
            s.stale_skips,
            s.dropped,
            s.errors,
            s.queue,
            sentinel::sample_every(),
            timeouts,
            degraded,
        )
    }
}
