//! The OpenMLDB database facade: one object wiring the unified plan
//! generator, the online request engine, the offline batch engine, storage,
//! pre-aggregation and memory management together (paper Figure 2).
//!
//! The three execution modes of Section 3.2 map to:
//!
//! * **offline execution** — [`Database::offline_query`];
//! * **online preview** — [`Database::preview`] (bounded scans over online
//!   data, limited query complexity);
//! * **online request** — [`Database::request`] against a deployment made
//!   with [`Database::execute`]`("DEPLOY ...")`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use openmldb_offline::{execute_batch, OfflineOptions, Tables};
use openmldb_online::{
    execute_request, execute_request_with, Deployment, PreAggregator, RequestOptions,
    RequestOutput, TableProvider,
};
use openmldb_sql::ast::{
    CreateTableStatement, DeployStatement, InsertStatement, Literal, Statement, TtlSpec,
};
use openmldb_sql::plan::{Catalog, CompiledQuery};
use openmldb_sql::{interval, parse_statement, PlanCache};
use openmldb_storage::{Backend, DataTable, DiskTable, IndexSpec, MemTable, Ttl};
use openmldb_types::{CompactCodec, DataType, Error, Result, Row, RowBatch, Schema, Value};

use crate::memory::MemoryMonitor;

/// Result of [`Database::execute`].
#[derive(Debug)]
pub enum ExecResult {
    /// DDL/DML acknowledged (CREATE TABLE, INSERT).
    Ok,
    /// A SELECT's offline-mode result.
    Batch(RowBatch),
    /// A deployment was created with this name.
    Deployed(String),
    /// An EXPLAIN's rendered plan tree.
    Plan(String),
}

/// Pre-aggregator registration: which table streams feed it (needed to
/// re-attach after an index rebuild swaps a table's replicator).
struct PreAggAttachment {
    table: String,
    preagg: Arc<PreAggregator>,
}

/// An embedded OpenMLDB instance.
#[derive(Default)]
pub struct Database {
    pub(crate) tables: RwLock<HashMap<String, Arc<dyn DataTable>>>,
    deployments: RwLock<HashMap<String, Arc<Deployment>>>,
    attachments: RwLock<Vec<PreAggAttachment>>,
    cache: PlanCache,
    monitor: MemoryMonitor,
    /// Preview-mode result cache (Section 3.2: preview "retrieves results
    /// from a data cache"): normalized SQL + a table-version signature →
    /// the bounded result. Any insert to a referenced table changes its
    /// row count and naturally invalidates the entry.
    preview_cache: RwLock<HashMap<(String, u64), Arc<RowBatch>>>,
    preview_hits: std::sync::atomic::AtomicU64,
    /// Failover replicas by primary table name ([`Database::enable_failover`]).
    /// The request path reads from one (after a catch-up sync) when the
    /// primary keeps faulting.
    replicas: RwLock<HashMap<String, Arc<openmldb_storage::ReplicaTable>>>,
    /// DEPLOY statements in execution order, kept verbatim so the durable
    /// manifest can replay them at recovery (rebuilding compiled plans,
    /// auto-indexes and pre-aggregate state through the normal path).
    pub(crate) deploy_sql: RwLock<Vec<(String, String)>>,
    /// Durable directory attachment ([`Database::recover`]); `None` for a
    /// purely in-memory instance.
    pub(crate) durability: RwLock<Option<Arc<crate::durability::DurabilityCtx>>>,
}

impl Catalog for Database {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.tables.read().get(name).map(|t| t.schema().clone())
    }
}

impl TableProvider for Database {
    fn table(&self, name: &str) -> Option<Arc<dyn DataTable>> {
        self.tables.read().get(name).cloned()
    }

    /// Sync-then-serve: catch the replica up with everything the leader has
    /// accepted, then hand it out for the read. Only tables registered via
    /// [`Database::enable_failover`] have one.
    fn fallback_table(&self, name: &str) -> Option<Arc<dyn DataTable>> {
        let replica = self.replicas.read().get(name).cloned()?;
        Some(replica.promote() as Arc<dyn DataTable>)
    }
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// The runtime memory monitor (Section 8.2).
    pub fn memory_monitor(&self) -> &MemoryMonitor {
        &self.monitor
    }

    /// Plan-cache statistics `(hits, misses)` (Section 4.2).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Execute one SQL statement (CREATE TABLE / INSERT / DEPLOY / SELECT).
    /// SELECT runs in offline execution mode; use [`Database::request`] for
    /// online request mode and [`Database::preview`] for preview mode.
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        match parse_statement(sql)? {
            Statement::CreateTable(stmt) => {
                self.create_table_stmt(&stmt)?;
                Ok(ExecResult::Ok)
            }
            Statement::Insert(stmt) => {
                self.insert_stmt(&stmt)?;
                Ok(ExecResult::Ok)
            }
            Statement::Deploy(stmt) => {
                let name = self.deploy_stmt(&stmt, sql)?;
                Ok(ExecResult::Deployed(name))
            }
            Statement::Select(_) => Ok(ExecResult::Batch(self.offline_query(sql)?)),
            Statement::Explain(select) => {
                let query = openmldb_sql::compile_select(&select, self)?;
                Ok(ExecResult::Plan(query.explain()))
            }
        }
    }

    // ------------------------------------------------------------- DDL ---

    fn create_table_stmt(&self, stmt: &CreateTableStatement) -> Result<()> {
        if self.tables.read().contains_key(&stmt.name) {
            return Err(Error::Storage(format!(
                "table `{}` already exists",
                stmt.name
            )));
        }
        let (schema, indexes) = schema_and_indexes(stmt)?;
        let table: Arc<dyn DataTable> =
            Arc::new(MemTable::new(stmt.name.clone(), schema, indexes)?);
        self.tables.write().insert(stmt.name.clone(), table);
        self.cache.invalidate_all();
        self.rewire_durable_table(&stmt.name)?;
        Ok(())
    }

    /// Create a table on the disk engine (Section 8.1 placement guidance:
    /// the estimate exceeds memory, or a 20–30 ms budget trades latency for
    /// ~80% hardware savings). Same DDL semantics as CREATE TABLE.
    pub fn create_disk_table(&self, sql: &str) -> Result<()> {
        let Statement::CreateTable(stmt) = parse_statement(sql)? else {
            return Err(Error::Unsupported("expected CREATE TABLE".into()));
        };
        if self.tables.read().contains_key(&stmt.name) {
            return Err(Error::Storage(format!(
                "table `{}` already exists",
                stmt.name
            )));
        }
        let (schema, indexes) = schema_and_indexes(&stmt)?;
        let table: Arc<dyn DataTable> =
            Arc::new(DiskTable::new(stmt.name.clone(), schema, indexes)?);
        self.tables.write().insert(stmt.name.clone(), table);
        self.cache.invalidate_all();
        self.rewire_durable_table(&stmt.name)?;
        Ok(())
    }

    /// Register a pre-built table of either backend (programmatic path used
    /// by benches and tests). On a durable database the table's binlog is
    /// written out as a fresh WAL so it survives restarts like any other.
    pub fn register_table(&self, table: Arc<dyn DataTable>) -> Result<()> {
        let name = table.name().to_string();
        self.tables.write().insert(name.clone(), table);
        self.cache.invalidate_all();
        self.rewire_durable_table(&name)
    }

    // ------------------------------------------------------------- DML ---

    fn insert_stmt(&self, stmt: &InsertStatement) -> Result<()> {
        let table = self
            .table(&stmt.table)
            .ok_or_else(|| Error::Storage(format!("unknown table `{}`", stmt.table)))?;
        for literals in &stmt.rows {
            let row = literals_to_row(literals, table.schema())?;
            table.put(&row)?;
        }
        Ok(())
    }

    /// Insert one decoded row.
    pub fn insert_row(&self, table: &str, row: &Row) -> Result<u64> {
        // Chaos hook: an admission fault models the Section 8.2 memory
        // guard rejecting the write (writes fail, reads continue).
        openmldb_chaos::inject(openmldb_chaos::InjectionPoint::MemoryAdmission)?;
        let table = self
            .table(table)
            .ok_or_else(|| Error::Storage(format!("unknown table `{table}`")))?;
        table.put(row)
    }

    // ---------------------------------------------------------- DEPLOY ---

    fn deploy_stmt(&self, stmt: &DeployStatement, raw_sql: &str) -> Result<String> {
        if self.deployments.read().contains_key(&stmt.name) {
            return Err(Error::Deployment(format!(
                "deployment `{}` already exists",
                stmt.name
            )));
        }
        // Route through the plan cache: redeploying an equivalent feature
        // script (same AST) reuses the compiled plan, and the hit/miss
        // outcome is attributed to the deployment's label slot.
        let (query, cache_hit) = self.cache.compile_stmt_traced(&stmt.select, self)?;
        self.ensure_indexes(&query)?;
        let mut deployment = Deployment::new(stmt.name.clone(), query.clone());
        if cache_hit {
            crate::metrics::deploy_plan_hits().inc(deployment.label());
        } else {
            crate::metrics::deploy_plan_misses().inc(deployment.label());
        }

        // long_windows option: build + backfill + attach a pre-aggregator
        // per named window (Section 5.1 / Figure 11's deploy OPTIONS).
        for (window_name, bucket) in stmt.long_windows() {
            let bucket_ms = interval::parse_interval(&bucket)?;
            let wid = query
                .windows
                .iter()
                .position(|w| w.merged_names.contains(&window_name))
                .ok_or_else(|| {
                    Error::Deployment(format!("long_windows names unknown window `{window_name}`"))
                })?;
            let agg_ids = query.aggregates_by_window();
            let aggs: Vec<_> = agg_ids[wid]
                .iter()
                .map(|&i| query.aggregates[i].clone())
                .collect();
            if aggs.is_empty() {
                continue;
            }
            // The Figure 4 hierarchy around the requested granularity: a
            // 24× finer level keeps the window's raw edges small (an hour
            // when the user asked for days), the requested level carries the
            // bulk, and a 30× coarser level compresses long spans.
            let levels = vec![
                (bucket_ms / 24).max(1),
                bucket_ms,
                bucket_ms.saturating_mul(30),
            ];
            let preagg = PreAggregator::new(&query.windows[wid], &aggs, levels)?;
            let window = &query.windows[wid];
            for table_name in std::iter::once(query.base_table.as_str())
                .chain(window.union_tables.iter().map(String::as_str))
            {
                let table = self
                    .table(table_name)
                    .ok_or_else(|| Error::Storage(format!("unknown table `{table_name}`")))?;
                // Exactly-once bootstrap: replay the binlog into the
                // buckets, then continue asynchronously (Section 5.1).
                preagg.attach_with_catchup(
                    table.replicator(),
                    CompactCodec::new(table.schema().clone()),
                );
                self.attachments.write().push(PreAggAttachment {
                    table: table_name.to_string(),
                    preagg: preagg.clone(),
                });
            }
            deployment = deployment.with_preagg(wid, preagg);
        }

        let name = stmt.name.clone();
        self.deployments
            .write()
            .insert(name.clone(), Arc::new(deployment));
        // Keep the statement text so a durable manifest can replay it at
        // recovery, rebuilding the plan and pre-aggregate state.
        self.deploy_sql
            .write()
            .push((name.clone(), raw_sql.trim().to_string()));
        self.write_manifest()?;
        Ok(name)
    }

    /// Deploy from SQL text (`DEPLOY name [OPTIONS(...)] AS SELECT ...`).
    pub fn deploy(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Deploy(stmt) => self.deploy_stmt(&stmt, sql),
            _ => Err(Error::Deployment("expected a DEPLOY statement".into())),
        }
    }

    pub fn deployment(&self, name: &str) -> Option<Arc<Deployment>> {
        self.deployments.read().get(name).cloned()
    }

    /// Names of every deployment currently installed, sorted.
    pub fn deployment_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.deployments.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// EXPLAIN ANALYZE-style render of the accumulated per-request cost
    /// profile attributed to `deployment` (stage times, rows scanned, bytes
    /// decoded, pre-agg hit rate, resilience events). Reads the process-wide
    /// profile store; a deployment that never served a request renders a
    /// "(no samples)" section.
    pub fn explain_analyze(&self, deployment: &str) -> String {
        openmldb_obs::ProfileStore::global().render_explain_analyze(deployment)
    }

    /// Make sure every index the plan wants exists; tables missing one are
    /// rebuilt with the extra index (data re-indexed, pre-aggregators
    /// re-attached to the new replicator).
    fn ensure_indexes(&self, query: &CompiledQuery) -> Result<()> {
        for (table_name, key_cols, ts_col) in query.index_hints() {
            let table = self
                .table(&table_name)
                .ok_or_else(|| Error::Storage(format!("unknown table `{table_name}`")))?;
            let schema = table.schema().clone();
            let key_idx = key_cols
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<Vec<_>>>()?;
            let ts_idx = ts_col.as_deref().map(|c| schema.index_of(c)).transpose()?;
            if table.find_index(&key_idx, ts_idx).is_some() {
                continue;
            }
            // Rebuild with the extra index, on the same backend.
            let mut specs = table.index_specs();
            specs.push(IndexSpec {
                name: format!("idx_auto_{}", specs.len()),
                key_cols: key_idx,
                ts_col: ts_idx,
                ttl: Ttl::Unlimited,
            });
            let rebuilt: Arc<dyn DataTable> = match table.backend() {
                Backend::Memory => Arc::new(MemTable::new(table.name(), schema.clone(), specs)?),
                Backend::Disk => Arc::new(DiskTable::new(table.name(), schema.clone(), specs)?),
            };
            for row in table.scan_all(0)? {
                rebuilt.put(&row)?;
            }
            // Re-subscribe existing pre-aggregators to the new replicator
            // (their buckets already contain the re-put rows via backfill at
            // their own deploy time; subscription only delivers new puts).
            for att in self.attachments.read().iter() {
                if att.table == table_name {
                    att.preagg
                        .attach(rebuilt.replicator(), CompactCodec::new(schema.clone()));
                }
            }
            self.tables.write().insert(table_name.clone(), rebuilt);
            // The rebuilt replicator re-put rows in scan order, not binlog
            // order: the old WAL and snapshots no longer describe this
            // table. Rewrite the durable state from the new log.
            self.rewire_durable_table(&table_name)?;
        }
        Ok(())
    }

    // --------------------------------------------------- execution modes --

    /// Online request mode: compute one feature row for `request`, then
    /// persist the request tuple into its table (it becomes history for the
    /// next request).
    pub fn request(&self, deployment: &str, request: &Row) -> Result<Row> {
        let out = self.request_readonly(deployment, request)?;
        let dep = self
            .deployment(deployment)
            // analysis:allow(panic-path): the deployment was looked up two
            // lines above; a concurrent undeploy API does not exist.
            .expect("checked in request_readonly");
        self.insert_row(&dep.query.base_table.clone(), request)?;
        Ok(out)
    }

    /// Online request mode without persisting the request tuple.
    pub fn request_readonly(&self, deployment: &str, request: &Row) -> Result<Row> {
        let dep = self
            .deployment(deployment)
            .ok_or_else(|| Error::Deployment(format!("unknown deployment `{deployment}`")))?;
        execute_request(self, &dep, request)
    }

    /// [`Database::request_readonly`] with explicit resilience options:
    /// deadline budget, transient-fault retry policy, replica failover (for
    /// tables with [`Database::enable_failover`]) and the buckets-only
    /// degradation tier.
    pub fn request_readonly_with(
        &self,
        deployment: &str,
        request: &Row,
        opts: &RequestOptions,
    ) -> Result<RequestOutput> {
        let dep = self
            .deployment(deployment)
            .ok_or_else(|| Error::Deployment(format!("unknown deployment `{deployment}`")))?;
        execute_request_with(self, &dep, request, opts)
    }

    /// Offline execution mode: run a feature script over full historical
    /// snapshots with the batch engine.
    pub fn offline_query(&self, sql: &str) -> Result<RowBatch> {
        self.offline_query_with(sql, &OfflineOptions::default())
    }

    /// Offline execution with explicit engine options (benchmarks use this
    /// to toggle parallel windows / skew handling / execution mode).
    pub fn offline_query_with(&self, sql: &str, opts: &OfflineOptions) -> Result<RowBatch> {
        let query = self.cache.compile(sql, self)?;
        let tables = self.snapshot(&query)?;
        execute_batch(&query, &tables, opts)
    }

    /// Online preview mode: bounded evaluation over current online data.
    /// Complexity is constrained — a row cap is always applied and at most
    /// `MAX_PREVIEW_KEYS` partition columns are allowed — and results come
    /// from a data cache keyed by the tables' current versions
    /// (Section 3.2).
    pub fn preview(&self, sql: &str, max_rows: usize) -> Result<RowBatch> {
        const MAX_PREVIEW_KEYS: usize = 2;
        let query = self.cache.compile(sql, self)?;
        for w in &query.windows {
            if w.partition_cols.len() > MAX_PREVIEW_KEYS {
                return Err(Error::Unsupported(format!(
                    "preview mode allows at most {MAX_PREVIEW_KEYS} key columns per window"
                )));
            }
        }
        let key = (
            openmldb_sql::normalize_sql(sql)?,
            self.table_version_signature(&query),
        );
        if let Some(cached) = self.preview_cache.read().get(&key) {
            self.preview_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            crate::metrics::preview_cache_hits().inc();
            let mut batch = (**cached).clone();
            batch
                .rows
                .truncate(max_rows.min(query.limit.unwrap_or(usize::MAX)));
            return Ok(batch);
        }
        let tables = self.snapshot(&query)?;
        let full = Arc::new(execute_batch(&query, &tables, &OfflineOptions::default())?);
        self.preview_cache.write().insert(key, full.clone());
        let mut batch = (*full).clone();
        batch
            .rows
            .truncate(max_rows.min(query.limit.unwrap_or(usize::MAX)));
        Ok(batch)
    }

    /// Preview cache hits served so far.
    pub fn preview_cache_hits(&self) -> u64 {
        self.preview_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A signature of the current versions of every table `query` reads
    /// (their binlog lengths — any write bumps it).
    fn table_version_signature(&self, query: &CompiledQuery) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let tables = self.tables.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for name in names {
            if name == &query.base_table
                || query.joins.iter().any(|j| &j.table == name)
                || query.windows.iter().any(|w| w.union_tables.contains(name))
            {
                name.hash(&mut h);
                tables[name.as_str()].replicator().len().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Snapshot the tables a query reads into batch inputs.
    fn snapshot(&self, query: &CompiledQuery) -> Result<Tables> {
        let mut names = vec![query.base_table.clone()];
        for j in &query.joins {
            names.push(j.table.clone());
        }
        for w in &query.windows {
            names.extend(w.union_tables.iter().cloned());
        }
        let mut tables = Tables::new();
        for name in names {
            if tables.contains_key(&name) {
                continue;
            }
            let table = self
                .table(&name)
                .ok_or_else(|| Error::Storage(format!("unknown table `{name}`")))?;
            tables.insert(name, table.scan_all(0)?);
        }
        Ok(tables)
    }

    /// Run TTL garbage collection across all tables.
    pub fn gc(&self, now_ms: i64) -> usize {
        self.tables.read().values().map(|t| t.gc(now_ms)).sum()
    }

    /// Create a binlog-fed replica of `table` (the paper's tablet replicas;
    /// the replica catches up exactly-once and then follows live writes).
    /// The returned handle owns the follower; it is not registered in the
    /// catalog — promote it with [`Database::register_table`] on failover.
    pub fn replicate_table(&self, table: &str) -> Result<openmldb_storage::ReplicaTable> {
        let t = self
            .table(table)
            .ok_or_else(|| Error::Storage(format!("unknown table `{table}`")))?;
        openmldb_storage::ReplicaTable::follow(&*t)
    }

    /// Create and register a failover replica for `table`: the request path
    /// will fail reads over to it (after a catch-up sync) when the primary
    /// keeps returning transient faults. Idempotent per table.
    pub fn enable_failover(&self, table: &str) -> Result<()> {
        if self.replicas.read().contains_key(table) {
            return Ok(());
        }
        let replica = Arc::new(self.replicate_table(table)?);
        self.replicas.write().insert(table.to_string(), replica);
        Ok(())
    }

    /// Permanent failover: promote `table`'s replica into the catalog as the
    /// new primary (sync first, so no accepted write is lost) and drop the
    /// replica registration. Subsequent writes go to the promoted table.
    pub fn promote_replica(&self, table: &str) -> Result<()> {
        let replica = self
            .replicas
            .write()
            .remove(table)
            .ok_or_else(|| Error::Storage(format!("no failover replica for `{table}`")))?;
        let promoted = replica.promote();
        self.tables.write().insert(table.to_string(), promoted);
        self.cache.invalidate_all();
        self.rewire_durable_table(table)?;
        Ok(())
    }

    /// Replica lag in rows for a table with failover enabled.
    pub fn replica_lag(&self, table: &str) -> Option<u64> {
        self.replicas.read().get(table).map(|r| r.lag())
    }

    /// Table names currently registered.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// Resolve a CREATE TABLE statement into a schema and index specs (adding
/// the default first-column index when none is declared).
fn schema_and_indexes(stmt: &CreateTableStatement) -> Result<(Schema, Vec<IndexSpec>)> {
    let schema = Schema::new(
        stmt.columns
            .iter()
            .map(|(name, dt, nullable)| {
                let col = openmldb_types::ColumnDef::new(name.clone(), *dt);
                if *nullable {
                    col
                } else {
                    col.not_null()
                }
            })
            .collect(),
    )?;
    let mut indexes = Vec::new();
    for (i, idx) in stmt.indexes.iter().enumerate() {
        let key_cols = idx
            .key_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<Vec<_>>>()?;
        let ts_col = idx
            .ts_column
            .as_deref()
            .map(|c| schema.index_of(c))
            .transpose()?;
        indexes.push(IndexSpec {
            name: format!("idx_{i}"),
            key_cols,
            ts_col,
            ttl: convert_ttl(idx.ttl),
        });
    }
    if indexes.is_empty() {
        // Default index: first column as key, first timestamp column as the
        // order column (matching the system's default behaviour).
        let ts_col = schema
            .columns()
            .iter()
            .position(|c| c.data_type == DataType::Timestamp);
        indexes.push(IndexSpec {
            name: "idx_default".into(),
            key_cols: vec![0],
            ts_col,
            ttl: Ttl::Unlimited,
        });
    }
    Ok((schema, indexes))
}

fn convert_ttl(spec: TtlSpec) -> Ttl {
    match spec {
        TtlSpec::Unlimited => Ttl::Unlimited,
        TtlSpec::Latest(n) => Ttl::Latest(n),
        TtlSpec::AbsoluteMs(ms) => Ttl::AbsoluteMs(ms),
        TtlSpec::AbsAndLat { ms, latest } => Ttl::AbsAndLat { ms, latest },
        TtlSpec::AbsOrLat { ms, latest } => Ttl::AbsOrLat { ms, latest },
    }
}

fn literals_to_row(literals: &[Literal], schema: &Schema) -> Result<Row> {
    if literals.len() != schema.len() {
        return Err(Error::Schema(format!(
            "INSERT arity {} does not match schema arity {}",
            literals.len(),
            schema.len()
        )));
    }
    let values = literals
        .iter()
        .zip(schema.columns())
        .map(|(lit, col)| {
            let v = match lit {
                Literal::Null => Value::Null,
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Int(i) => Value::Bigint(*i),
                Literal::Float(f) => Value::Double(*f),
                Literal::Str(s) => Value::string(s.as_str()),
            };
            v.cast_to(col.data_type)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Row::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_actions() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE actions (userid BIGINT, category STRING, price DOUBLE, \
             quantity INT, ts TIMESTAMP, INDEX(KEY=userid, TS=ts))",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let db = db_with_actions();
        db.execute(
            "INSERT INTO actions VALUES (1, 'shoes', 20.0, 2, 1000), (1, 'bags', 35.0, 1, 2000)",
        )
        .unwrap();
        let ExecResult::Batch(batch) = db.execute("SELECT userid, price FROM actions").unwrap()
        else {
            panic!("expected batch");
        };
        assert_eq!(batch.rows.len(), 2);
        assert_eq!(batch.schema.len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db_with_actions();
        assert!(db
            .execute("CREATE TABLE actions (a INT)")
            .unwrap_err()
            .to_string()
            .contains("already exists"));
    }

    #[test]
    fn deploy_and_request_mode() {
        let db = db_with_actions();
        for i in 0..10 {
            db.execute(&format!(
                "INSERT INTO actions VALUES (1, 'c', {}.0, 1, {})",
                i,
                1_000 + i * 100
            ))
            .unwrap();
        }
        db.deploy(
            "DEPLOY demo AS SELECT userid, sum(price) OVER w AS total FROM actions \
             WINDOW w AS (PARTITION BY userid ORDER BY ts \
             ROWS_RANGE BETWEEN 250 PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        let request = Row::new(vec![
            Value::Bigint(1),
            Value::string("c"),
            Value::Double(100.0),
            Value::Int(1),
            Value::Timestamp(2_000),
        ]);
        let out = db.request("demo", &request).unwrap();
        // Rows at ts 1800 (8.0), 1900 (9.0) + request 100.0.
        assert_eq!(out[1], Value::Double(117.0));
        // The request row was persisted: a second identical request sees it.
        let out2 = db.request_readonly("demo", &request).unwrap();
        assert_eq!(out2[1], Value::Double(217.0));
    }

    #[test]
    fn offline_and_online_results_are_consistent() {
        // The paper's core guarantee: one plan, identical results.
        let db = db_with_actions();
        for i in 0..50 {
            db.execute(&format!(
                "INSERT INTO actions VALUES ({}, 'c', {}.0, 1, {})",
                i % 3,
                i % 7,
                1_000 + i * 37
            ))
            .unwrap();
        }
        let sql = "SELECT userid, sum(price) OVER w AS s, count(price) OVER w AS c, \
                   avg(price) OVER w AS a FROM actions \
                   WINDOW w AS (PARTITION BY userid ORDER BY ts \
                   ROWS_RANGE BETWEEN 500 PRECEDING AND CURRENT ROW)";
        db.deploy(&format!("DEPLOY consistency AS {sql}")).unwrap();
        let offline = db.offline_query(sql).unwrap();

        // For each historical row, online request-mode (readonly, with the
        // stored row excluded... the row IS stored, so the online window
        // already contains it; readonly request of the same tuple would
        // double-count. Instead verify the *next* tuple matches.)
        let probe = Row::new(vec![
            Value::Bigint(1),
            Value::string("c"),
            Value::Double(3.0),
            Value::Int(1),
            Value::Timestamp(9_999),
        ]);
        let online = db.request_readonly("consistency", &probe).unwrap();
        // Offline equivalent: append the probe row and re-run the batch.
        db.insert_row("actions", &probe).unwrap();
        let offline2 = db.offline_query(sql).unwrap();
        let last = offline2
            .rows
            .iter()
            .find(|r| r[0] == Value::Bigint(1) && r[2] == online[2])
            .expect("probe row present in batch output");
        assert_eq!(&online, last, "offline and online agree on the same tuple");
        assert!(offline.rows.len() < offline2.rows.len());
    }

    #[test]
    fn deploy_auto_creates_missing_index() {
        let db = Database::new();
        // Table with only the default index on userid; the query partitions
        // by category.
        db.execute(
            "CREATE TABLE actions (userid BIGINT, category STRING, price DOUBLE, \
             quantity INT, ts TIMESTAMP, INDEX(KEY=userid, TS=ts))",
        )
        .unwrap();
        db.execute("INSERT INTO actions VALUES (1, 'x', 5.0, 1, 100)")
            .unwrap();
        db.deploy(
            "DEPLOY by_cat AS SELECT count(price) OVER w AS c FROM actions \
             WINDOW w AS (PARTITION BY category ORDER BY ts \
             ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        let request = Row::new(vec![
            Value::Bigint(2),
            Value::string("x"),
            Value::Double(1.0),
            Value::Int(1),
            Value::Timestamp(200),
        ]);
        let out = db.request_readonly("by_cat", &request).unwrap();
        assert_eq!(
            out[0],
            Value::Bigint(2),
            "pre-existing row found via rebuilt index"
        );
    }

    #[test]
    fn deploy_with_long_windows_builds_preagg() {
        let db = db_with_actions();
        for i in 0..100 {
            db.execute(&format!(
                "INSERT INTO actions VALUES (1, 'c', 1.0, 1, {})",
                i * 1_000
            ))
            .unwrap();
        }
        db.deploy(
            "DEPLOY lw OPTIONS(long_windows=\"w1:10s\") AS \
             SELECT sum(price) OVER w1 AS s FROM actions \
             WINDOW w1 AS (PARTITION BY userid ORDER BY ts \
             ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        let dep = db.deployment("lw").unwrap();
        let preagg = dep.preaggs[0].as_ref().expect("preagg created");
        let request = Row::new(vec![
            Value::Bigint(1),
            Value::string("c"),
            Value::Double(0.0),
            Value::Int(1),
            Value::Timestamp(100_000),
        ]);
        let out = db.request_readonly("lw", &request).unwrap();
        assert_eq!(
            out[0],
            Value::Double(100.0),
            "backfilled buckets cover history"
        );
        assert!(
            preagg.queries() > 0,
            "request used the pre-aggregation path"
        );
    }

    #[test]
    fn preview_mode_caps_rows_and_complexity() {
        let db = db_with_actions();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO actions VALUES (1, 'c', 1.0, 1, {i})"))
                .unwrap();
        }
        let batch = db.preview("SELECT userid FROM actions", 5).unwrap();
        assert_eq!(batch.rows.len(), 5);
        let err = db
            .preview(
                "SELECT count(price) OVER w AS c FROM actions WINDOW w AS \
                 (PARTITION BY userid, category, quantity ORDER BY ts \
                 ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
                5,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn plan_cache_reuses_compilations() {
        let db = db_with_actions();
        db.execute("INSERT INTO actions VALUES (1, 'c', 1.0, 1, 100)")
            .unwrap();
        db.offline_query("SELECT userid FROM actions").unwrap();
        db.offline_query("select userid  from actions;").unwrap();
        let (hits, misses) = db.plan_cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn insert_coerces_literals_to_schema_types() {
        let db = db_with_actions();
        // INT literal into DOUBLE column, etc.
        db.execute("INSERT INTO actions VALUES (1, 'c', 5, 1, 100)")
            .unwrap();
        let ExecResult::Batch(b) = db.execute("SELECT price FROM actions").unwrap() else {
            panic!()
        };
        assert_eq!(b.rows[0][0], Value::Double(5.0));
        // Arity mismatch is an error.
        assert!(db.execute("INSERT INTO actions VALUES (1, 'c')").is_err());
    }

    #[test]
    fn gc_applies_ttl() {
        let db = Database::new();
        db.execute(
            "CREATE TABLE ev (k BIGINT, ts TIMESTAMP, \
             INDEX(KEY=k, TS=ts, TTL=100, TTL_TYPE=absolute))",
        )
        .unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO ev VALUES (1, {})", i * 50))
                .unwrap();
        }
        let removed = db.gc(1_000);
        assert!(removed > 0);
    }
}

#[cfg(test)]
mod explain_and_cache_tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE t (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
            .unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES (1, {i}.0, {i})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn explain_renders_plan_tree() {
        let db = db();
        let ExecResult::Plan(plan) = db
            .execute(
                "EXPLAIN SELECT k, sum(v) OVER w1 AS a, count(v) OVER w2 AS b FROM t \
                 WINDOW w1 AS (PARTITION BY k ORDER BY ts ROWS BETWEEN 5 PRECEDING AND CURRENT ROW), \
                        w2 AS (PARTITION BY v ORDER BY ts ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
            )
            .unwrap()
        else {
            panic!("expected plan")
        };
        assert!(plan.contains("ConcatJoin"), "{plan}");
        assert!(plan.contains("TableScan t"), "{plan}");
    }

    #[test]
    fn replicate_and_promote_on_failover() {
        let db = db();
        let replica = db.replicate_table("t").unwrap();
        db.execute("INSERT INTO t VALUES (1, 99.0, 99)").unwrap();
        replica.sync();
        assert_eq!(replica.applied_rows(), 11);
        // "Failover": promote the replica into a fresh catalog and serve.
        let standby = Database::new();
        standby.register_table(replica.table()).unwrap();
        let ExecResult::Batch(b) = standby.execute("SELECT k FROM t_replica").unwrap() else {
            panic!()
        };
        assert_eq!(b.rows.len(), 11);
    }

    #[test]
    fn enable_failover_registers_fallback_and_promotes() {
        let db = db();
        db.enable_failover("t").unwrap();
        db.enable_failover("t").unwrap(); // idempotent
        db.execute("INSERT INTO t VALUES (1, 50.0, 50)").unwrap();

        // The provider hands out a caught-up replica for the read path.
        let fb = db.fallback_table("t").expect("failover replica registered");
        assert_eq!(fb.row_count(), 11, "fallback synced before serving");
        assert_eq!(db.replica_lag("t"), Some(0));
        assert!(db.fallback_table("unknown").is_none());

        // Permanent promotion swaps the catalog entry; reads and writes
        // keep working against the promoted table.
        db.promote_replica("t").unwrap();
        assert!(
            db.fallback_table("t").is_none(),
            "registration dropped after promotion"
        );
        db.execute("INSERT INTO t VALUES (2, 60.0, 60)").unwrap();
        let ExecResult::Batch(b) = db.execute("SELECT k FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(b.rows.len(), 12);
        assert!(db.promote_replica("t").is_err(), "no replica left");
    }

    #[test]
    fn request_readonly_with_defaults_matches_plain_request() {
        let db = db();
        db.deploy(
            "DEPLOY r AS SELECT k, sum(v) OVER w AS s FROM t \
             WINDOW w AS (PARTITION BY k ORDER BY ts \
             ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        let request = Row::new(vec![
            Value::Bigint(1),
            Value::Double(5.0),
            Value::Timestamp(20),
        ]);
        let plain = db.request_readonly("r", &request).unwrap();
        let out = db
            .request_readonly_with("r", &request, &RequestOptions::default())
            .unwrap();
        assert_eq!(out.row, plain);
        assert!(!out.degraded);
        assert_eq!(out.retries, 0);
        assert_eq!(out.failovers, 0);
    }

    #[test]
    fn bounded_deadline_request_succeeds_within_budget() {
        let db = db();
        db.deploy(
            "DEPLOY d AS SELECT count(v) OVER w AS c FROM t \
             WINDOW w AS (PARTITION BY k ORDER BY ts \
             ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        let request = Row::new(vec![
            Value::Bigint(1),
            Value::Double(5.0),
            Value::Timestamp(20),
        ]);
        let opts = RequestOptions::with_deadline(std::time::Duration::from_secs(5));
        let out = db.request_readonly_with("d", &request, &opts).unwrap();
        assert!(!out.degraded, "healthy path never degrades");
    }

    #[test]
    fn preview_cache_hits_until_write_invalidates() {
        let db = db();
        let sql = "SELECT k, v FROM t";
        let a = db.preview(sql, 5).unwrap();
        assert_eq!(db.preview_cache_hits(), 0);
        let b = db.preview(sql, 5).unwrap();
        assert_eq!(
            db.preview_cache_hits(),
            1,
            "second preview served from cache"
        );
        assert_eq!(a.rows, b.rows);
        // Different cap reuses the same cached full result.
        let c = db.preview(sql, 2).unwrap();
        assert_eq!(c.rows.len(), 2);
        assert_eq!(db.preview_cache_hits(), 2);
        // A write bumps the table version and invalidates.
        db.execute("INSERT INTO t VALUES (2, 99.0, 99)").unwrap();
        let d = db.preview(sql, 20).unwrap();
        assert_eq!(db.preview_cache_hits(), 2, "post-write preview recomputes");
        assert_eq!(d.rows.len(), 11);
    }
}
