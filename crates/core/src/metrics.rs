//! Global observability handles for the database facade and the memory
//! manager.

use openmldb_obs::{Counter, Gauge, Histogram, LabeledCounter, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

fn gauge(cell: &'static OnceLock<Arc<Gauge>>, name: &str, help: &str) -> &'static Gauge {
    cell.get_or_init(|| Registry::global().gauge(name, help))
}

/// Tier decisions that picked the in-memory engine.
pub fn tier_inmemory() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_tier_inmemory_total",
        "Engine recommendations that chose the in-memory tier",
    )
}

/// Tier decisions that picked the disk engine on latency-budget grounds.
pub fn tier_ondisk() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_tier_ondisk_total",
        "Engine recommendations that chose disk for a relaxed latency budget",
    )
}

/// Tier decisions forced to disk because the estimate exceeded memory.
pub fn tier_diskrequired() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_tier_diskrequired_total",
        "Engine recommendations forced to disk by the memory estimate",
    )
}

/// Bytes used by monitored tables at the last poll.
pub fn memory_used() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    gauge(
        &M,
        "openmldb_core_memory_used_bytes",
        "Bytes used by monitored tables at the last poll",
    )
}

/// High watermark of monitored memory usage across all polls.
pub fn memory_watermark() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    gauge(
        &M,
        "openmldb_core_memory_watermark_bytes",
        "High watermark of monitored table memory usage",
    )
}

/// Threshold-crossing alerts fired by the memory monitor.
pub fn memory_alerts() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_memory_alerts_total",
        "Memory threshold alerts fired by the monitor",
    )
}

/// DEPLOY compilations answered from the plan cache, per deployment.
pub fn deploy_plan_hits() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().labeled_counter(
            "openmldb_core_deploy_plan_hits_total",
            "DEPLOY compilations served from the plan cache, per deployment",
        )
    })
}

/// DEPLOY compilations that compiled from scratch, per deployment.
pub fn deploy_plan_misses() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().labeled_counter(
            "openmldb_core_deploy_plan_misses_total",
            "DEPLOY compilations that compiled from scratch, per deployment",
        )
    })
}

/// Offline preview executions answered from the preview cache.
pub fn preview_cache_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_preview_cache_hits_total",
        "Offline previews answered from the preview cache",
    )
}

/// Completed `Database::recover` runs (fresh opens count too).
pub fn recoveries() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_recoveries_total",
        "Database::recover runs completed against a durable directory",
    )
}

/// Rows rebuilt during recovery (snapshot rows + WAL suffix replays).
pub fn recovered_rows() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_core_recovered_rows_total",
        "Rows rebuilt by recovery from snapshots and WAL replay",
    )
}

/// Wall-clock duration of each recovery, in milliseconds.
pub fn recovery_duration() -> &'static Histogram {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().histogram(
            "openmldb_core_recovery_duration_ms",
            "Wall-clock milliseconds per Database::recover run",
        )
    })
}
