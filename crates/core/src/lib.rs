//! # openmldb-core
//!
//! The top-level OpenMLDB system: an embedded [`Database`] facade wiring the
//! unified query plan generator, the online request-mode engine, the
//! offline batch engine, compact time-series storage, long-window
//! pre-aggregation and the memory-management mechanisms of the paper into
//! one object (paper Figure 2), plus the Section 8 memory estimation model.

pub mod database;
pub mod durability;
pub mod memory;
pub mod metrics;
pub mod ops;

pub use database::{Database, ExecResult};
pub use durability::{digest_entries, DurabilityOptions};
pub use memory::{
    estimate_memory, recommend_engine, EngineChoice, IndexMemProfile, MemoryAlert, MemoryMonitor,
    TableMemProfile, TableType,
};
pub use openmldb_online::{RequestOptions, RequestOutput, RetryPolicy};
pub use ops::{OpsConfig, OpsPlane};
