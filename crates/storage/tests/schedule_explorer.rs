//! Deterministic schedule exploration of the lock-free storage structures.
//!
//! Run with: `cargo test -p openmldb-storage --features model-check`
//!
//! Each test drives small thread scenarios through the cooperative
//! scheduler in `openmldb_storage::sync::model`: every access to a skiplist
//! link pointer (or shared counter) is a schedule point where a seeded RNG
//! picks the next thread, so one seed = one exact interleaving, replayable
//! forever. Invariants (no lost inserts, no torn prefix walks, exactly-once
//! flush claims) are asserted after every run, and the model's
//! use-after-evict detector screens every pointer load against nodes the
//! epoch scheme has reclaimed.

#![cfg(feature = "model-check")]

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize as RawUsize, Ordering as RawOrdering};
use std::sync::{Arc, Mutex};

use openmldb_storage::skiplist::{SkipMap, TimeList};
use openmldb_storage::sync::atomic::{AtomicUsize, Ordering};
use openmldb_storage::sync::model::explore;
use openmldb_storage::FlushTrigger;

fn payload(v: u8) -> Arc<[u8]> {
    Arc::from(vec![v].into_boxed_slice())
}

/// Two threads race `get_or_insert_with` on the same key: linearizability
/// demands exactly one creation and a single agreed value. Returns the
/// schedule trace.
fn run_skipmap_same_key(seed: u64) -> Vec<u8> {
    let map: Arc<SkipMap<u64, u64>> = Arc::new(SkipMap::new());
    let outcomes: Arc<Mutex<Vec<(u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for t in 0..2u64 {
        let map = map.clone();
        let outcomes = outcomes.clone();
        threads.push(Box::new(move || {
            let (v, created) = map.get_or_insert_with(7, || 100 + t);
            outcomes.lock().unwrap().push((*v, created));
        }));
    }
    let trace = explore(seed, threads);

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 2);
    let created: usize = outcomes.iter().filter(|(_, c)| *c).count();
    assert_eq!(created, 1, "exactly one creation must win (seed {seed})");
    let winner = outcomes.iter().find(|(_, c)| *c).unwrap().0;
    for (v, _) in outcomes.iter() {
        assert_eq!(
            *v, winner,
            "all threads agree on the stored value (seed {seed})"
        );
    }
    assert_eq!(map.len(), 1, "lost insert or phantom key (seed {seed})");
    assert_eq!(map.get(&7), Some(&winner));
    trace
}

/// Three threads insert distinct keys; all must land, sorted and unique.
fn run_skipmap_distinct_keys(seed: u64) -> Vec<u8> {
    let map: Arc<SkipMap<u64, u64>> = Arc::new(SkipMap::new());
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for t in 0..3u64 {
        let map = map.clone();
        threads.push(Box::new(move || {
            map.get_or_insert_with(t * 10, || t);
        }));
    }
    let trace = explore(seed, threads);
    assert_eq!(map.len(), 3, "lost insert (seed {seed})");
    assert_eq!(map.keys(), vec![0, 10, 20], "order violated (seed {seed})");
    trace
}

/// Two threads insert distinct timestamps into a TimeList; both must be
/// visible afterwards, newest first.
fn run_timelist_concurrent_inserts(seed: u64) -> Vec<u8> {
    let list = Arc::new(TimeList::new());
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for t in 0..2i64 {
        let list = list.clone();
        threads.push(Box::new(move || {
            list.insert(10 + t, payload(t as u8));
        }));
    }
    let trace = explore(seed, threads);
    let mut seen = Vec::new();
    list.scan(|ts, _| {
        seen.push(ts);
        true
    });
    assert_eq!(
        seen,
        vec![11, 10],
        "lost insert or order violation (seed {seed})"
    );
    assert_eq!(list.len(), 2);
    trace
}

/// TTL suffix truncation racing a writer and a reader. The list starts as
/// [6,5,4,3,2,1]; one thread truncates everything below 4, one inserts a
/// fresh newest entry, one scans. Invariants:
/// * the reader's walk is never torn: timestamps strictly descend and every
///   element was genuinely inserted;
/// * entries at/above the cutoff survive;
/// * the use-after-evict detector (armed automatically) proves no walk
///   entered reclaimed memory even though eviction frees concurrently.
fn run_timelist_truncate_race(seed: u64) -> Vec<u8> {
    let list = Arc::new(TimeList::new());
    for ts in 1..=6i64 {
        list.insert(ts, payload(ts as u8));
    }
    let scanned: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        let list = list.clone();
        threads.push(Box::new(move || {
            list.truncate(Some(4), None, false);
        }));
    }
    {
        let list = list.clone();
        threads.push(Box::new(move || {
            list.insert(9, payload(9));
        }));
    }
    {
        let list = list.clone();
        let scanned = scanned.clone();
        threads.push(Box::new(move || {
            let mut out = Vec::new();
            list.scan(|ts, data| {
                assert_eq!(data[0] as i64, ts, "payload torn from its timestamp");
                out.push(ts);
                true
            });
            *scanned.lock().unwrap() = out;
        }));
    }
    let trace = explore(seed, threads);

    let scanned = scanned.lock().unwrap();
    assert!(
        scanned.windows(2).all(|w| w[0] > w[1]),
        "torn prefix walk: {scanned:?} (seed {seed})"
    );
    for ts in scanned.iter() {
        assert!(
            (1..=6).contains(ts) || *ts == 9,
            "phantom entry {ts} (seed {seed})"
        );
    }
    // Post-conditions on the final list: 6,5,4 survive, 9 is present, and
    // anything below the cutoff is gone after a final truncation pass.
    list.truncate(Some(4), None, false);
    let mut final_view = Vec::new();
    list.scan(|ts, _| {
        final_view.push(ts);
        true
    });
    assert_eq!(
        final_view,
        vec![9, 6, 5, 4],
        "lost or resurrected entries (seed {seed})"
    );
    trace
}

/// The paper-motivated core: ≥1,000 *distinct* interleavings across the
/// SkipMap/TimeList scenarios, every one passing its linearizability
/// assertions and the use-after-evict screen.
#[test]
#[cfg_attr(
    miri,
    ignore = "schedule exploration spawns many OS threads; run natively"
)]
fn explorer_covers_1000_distinct_interleavings() {
    // Traces are tagged per scenario: two scenarios can legitimately yield
    // the same thread-id byte sequence without being the same interleaving.
    let mut distinct: HashSet<(u8, Vec<u8>)> = HashSet::new();
    let mut runs = 0usize;
    for seed in 0..400u64 {
        distinct.insert((0, run_skipmap_same_key(seed)));
        distinct.insert((1, run_skipmap_distinct_keys(seed)));
        distinct.insert((2, run_timelist_concurrent_inserts(seed)));
        distinct.insert((3, run_timelist_truncate_race(seed)));
        runs += 4;
        if distinct.len() >= 1_000 && seed >= 99 {
            break;
        }
    }
    assert!(
        distinct.len() >= 1_000,
        "only {} distinct interleavings over {} runs",
        distinct.len(),
        runs
    );
}

/// Same seed ⇒ same schedule: failures replay exactly.
#[test]
#[cfg_attr(
    miri,
    ignore = "schedule exploration spawns many OS threads; run natively"
)]
fn explorer_is_deterministic_per_seed() {
    for seed in [3u64, 17, 94] {
        let a = run_skipmap_same_key(seed);
        let b = run_skipmap_same_key(seed);
        assert_eq!(a, b, "seed {seed} must replay the same trace");
    }
}

/// Seeded-bug detection: the *old* flush-trigger pattern (check the counter
/// then reset it unconditionally) double-claims under the right
/// interleaving, and the reset loses counter updates. The explorer must
/// find such a schedule — proving the harness can actually catch the bug
/// class the `FlushTrigger` fix addresses.
#[test]
#[cfg_attr(
    miri,
    ignore = "schedule exploration spawns many OS threads; run natively"
)]
fn explorer_detects_seeded_check_then_reset_bug() {
    struct BrokenTrigger {
        entries: AtomicUsize,
        threshold: usize,
    }
    impl BrokenTrigger {
        // Replica of the pre-fix logic in DiskEngine::put/flush.
        fn record(&self) -> bool {
            if self.entries.fetch_add(1, Ordering::AcqRel) + 1 >= self.threshold {
                self.entries.store(0, Ordering::Release);
                return true;
            }
            false
        }
    }

    let mut double_claim_seed = None;
    for seed in 0..2_000u64 {
        let trigger = Arc::new(BrokenTrigger {
            entries: AtomicUsize::new(0),
            threshold: 2,
        });
        let claims = Arc::new(RawUsize::new(0));
        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..3 {
            let trigger = trigger.clone();
            let claims = claims.clone();
            threads.push(Box::new(move || {
                if trigger.record() {
                    claims.fetch_add(1, RawOrdering::SeqCst);
                }
            }));
        }
        explore(seed, threads);
        if claims.load(RawOrdering::SeqCst) >= 2 {
            double_claim_seed = Some(seed);
            break;
        }
    }
    assert!(
        double_claim_seed.is_some(),
        "explorer failed to find the double-flush schedule in the seeded-bug trigger"
    );
}

/// The fixed `FlushTrigger` claim is exclusive under *every* explored
/// schedule: one threshold crossing, one claimer, no lost counter updates.
#[test]
#[cfg_attr(
    miri,
    ignore = "schedule exploration spawns many OS threads; run natively"
)]
fn flush_trigger_claim_is_exclusive_under_all_schedules() {
    for seed in 0..300u64 {
        let trigger = Arc::new(FlushTrigger::new(2));
        let claims = Arc::new(RawUsize::new(0));
        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..3 {
            let trigger = trigger.clone();
            let claims = claims.clone();
            threads.push(Box::new(move || {
                if trigger.record() {
                    claims.fetch_add(1, RawOrdering::SeqCst);
                }
            }));
        }
        explore(seed, threads);
        assert!(
            claims.load(RawOrdering::SeqCst) <= 1,
            "double flush claim under seed {seed}"
        );
        assert_eq!(
            trigger.pending(),
            3,
            "counter update lost under seed {seed}"
        );
    }
}

/// Concurrent TTL eviction racing readers, with reclamation proof: the
/// evicted entries' payloads (tracked through `Weak`s) really are freed by
/// epoch collection once the run quiesces, and no reader ever followed an
/// edge into a freed node (the detector would have failed the run).
#[test]
#[cfg_attr(
    miri,
    ignore = "schedule exploration spawns many OS threads; run natively"
)]
fn ttl_eviction_reclaims_while_readers_race() {
    for seed in 0..60u64 {
        let list = Arc::new(TimeList::new());
        let payloads: Vec<Arc<[u8]>> = (1..=6u8).map(payload).collect();
        let weaks: Vec<std::sync::Weak<[u8]>> = payloads.iter().map(Arc::downgrade).collect();
        for (i, p) in payloads.into_iter().enumerate() {
            list.insert(i as i64 + 1, p);
        }
        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let list = list.clone();
            threads.push(Box::new(move || {
                list.truncate(Some(4), None, false);
            }));
        }
        for _ in 0..2 {
            let list = list.clone();
            threads.push(Box::new(move || {
                let mut prev = i64::MAX;
                list.scan(|ts, data| {
                    assert_eq!(data[0] as i64, ts, "torn payload read");
                    assert!(ts < prev, "torn prefix walk");
                    prev = ts;
                    true
                });
            }));
        }
        explore(seed, threads);

        // After the run the quarantined nodes were freed for real; drive
        // the epoch collector and verify through the Weak handles.
        openmldb_storage::sync::epoch::force_collect();
        for (i, w) in weaks.iter().enumerate() {
            let ts = i as i64 + 1;
            if ts < 4 {
                assert!(
                    w.upgrade().is_none(),
                    "evicted payload ts={ts} not reclaimed (seed {seed})"
                );
            } else {
                assert!(
                    w.upgrade().is_some(),
                    "live payload ts={ts} freed (seed {seed})"
                );
            }
        }
    }
}
