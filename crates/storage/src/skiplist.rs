//! The refined two-level skiplist of paper Section 7.2.
//!
//! * **First level** — a lock-free, insert-only skiplist ordered by key
//!   (e.g. user id). Key nodes are never removed, so readers can hold plain
//!   references to their values for the lifetime of the map.
//! * **Second level** — per key, a lock-free singly-linked [`TimeList`]
//!   ordered by timestamp *descending* (newest first), so "the latest tuple
//!   for this key" — the `LAST JOIN` accelerator — is a head read, and a
//!   window scan is a prefix walk.
//!
//! Writes use compare-and-swap pointer updates (retrying on contention,
//! exactly as the paper describes); expired-data removal exploits the
//! timestamp ordering: all out-of-date tuples form a contiguous *suffix* of
//! a time list, so TTL eviction is a single CAS that truncates the suffix,
//! with epoch-based reclamation ([`crate::sync::epoch`]) freeing the
//! detached nodes once concurrent readers have moved on.
//!
//! Concurrency verification: the link pointers live in
//! [`crate::sync::atomic`] types, so the schedule-exploring model checker
//! (`cargo test -p openmldb-storage --features model-check`) can permute
//! thread interleavings at every edge access and screen every load against
//! freed nodes. See `tests/schedule_explorer.rs`.

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::epoch::{self, Atomic, Guard, Owned, Shared};

const MAX_HEIGHT: usize = 12;

/// Cheap deterministic level generator (splitmix64 over an atomic counter):
/// each level appears with probability 1/2, capped at [`MAX_HEIGHT`].
fn random_height(seed: &AtomicU64) -> usize {
    // analysis:allow(relaxed-ordering): RNG seed counter, thread-private
    // value stream; no happens-before relationship is needed.
    let mut z = seed.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

// ---------------------------------------------------------------------------
// First level: insert-only concurrent skiplist.
// ---------------------------------------------------------------------------

struct Node<K, V> {
    key: K,
    value: V,
    /// One forward pointer per level; length == node height.
    next: Vec<Atomic<Node<K, V>>>,
}

/// Per-level predecessors (edges to retry CAS on) and successors found by
/// [`SkipMap::search`].
type SearchResult<'g, K, V> = (
    [&'g Atomic<Node<K, V>>; MAX_HEIGHT],
    [Shared<'g, Node<K, V>>; MAX_HEIGHT],
);

/// Lock-free insert-only skip map. `get_or_insert` is the only mutator;
/// key nodes persist for the map's lifetime (streaming workloads accumulate
/// keys — per-key data is evicted in the second level instead).
pub struct SkipMap<K, V> {
    head: Vec<Atomic<Node<K, V>>>,
    len: AtomicUsize,
    seed: AtomicU64,
}

impl<K: Ord, V> Default for SkipMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> SkipMap<K, V> {
    pub fn new() -> Self {
        SkipMap {
            head: (0..MAX_HEIGHT).map(|_| Atomic::null()).collect(),
            len: AtomicUsize::new(0),
            seed: AtomicU64::new(0x853C_49E6_748F_EA9B),
        }
    }

    pub fn len(&self) -> usize {
        // analysis:allow(relaxed-ordering): monotone statistics counter;
        // readers only need an eventually-consistent size.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find `key`'s predecessors/successors at every level.
    fn search<'g>(&'g self, key: &K, guard: &'g Guard) -> SearchResult<'g, K, V> {
        self.search_by(key, guard)
    }

    /// [`SkipMap::search`] generalized over a borrowed form of the key, so
    /// callers can seek with `&[KeyValue]` against `Vec<KeyValue>` keys
    /// without materializing an owned key first.
    // analysis:allow(panic-freedom): every index is `level < MAX_HEIGHT`
    // against MAX_HEIGHT-sized arrays; node links are full-height (see the
    // pred_links invariant below).
    fn search_by<'g, Q>(&'g self, key: &Q, guard: &'g Guard) -> SearchResult<'g, K, V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut preds: [&Atomic<Node<K, V>>; MAX_HEIGHT] = std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<Node<K, V>>; MAX_HEIGHT] = std::array::from_fn(|_| Shared::null());
        // `pred_links` is the forward-pointer array we are walking from: the
        // head sentinel's, then the next-pointer arrays of passed nodes. Any
        // node reached at `level` has height > level, so indexing is safe.
        let mut pred_links: &[Atomic<Node<K, V>>] = &self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = pred_links[level].load(Ordering::Acquire, guard);
            // SAFETY: `curr` was loaded under `guard` from a reachable
            // edge; key nodes are never freed before the map drops, so
            // the reference is valid for the pin.
            while let Some(node) = unsafe { curr.as_ref() } {
                if node.key.borrow() >= key {
                    break;
                }
                pred_links = &node.next;
                curr = pred_links[level].load(Ordering::Acquire, guard);
            }
            preds[level] = &pred_links[level];
            succs[level] = curr;
        }
        (preds, succs)
    }

    /// Look up `key`; the returned reference lives as long as the map
    /// (key nodes are never deallocated).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_by(key)
    }

    // HOT: request-path key lookup — seeks by borrowed key, no `to_vec()`.
    /// Look up by a borrowed form of `key` (e.g. a slice against `Vec`
    /// keys); the returned reference lives as long as the map.
    pub fn get_by<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let guard = epoch::pin();
        let (_, succs) = self.search_by(key, &guard);
        // SAFETY: loaded under `guard`; key nodes are never freed before
        // the map drops.
        let node = unsafe { succs[0].as_ref() }?;
        (node.key.borrow() == key).then(|| {
            // SAFETY: key nodes are insert-only and freed only on drop of
            // the whole map, so extending the lifetime to &self is sound.
            unsafe { &*(&node.value as *const V) }
        })
    }

    /// Get `key`'s value, inserting `init()` if absent; the boolean reports
    /// whether this call created the entry (used for key-memory accounting).
    /// Lock-free: on CAS contention the losing thread retries and returns
    /// the winner's value.
    pub fn get_or_insert_with(&self, key: K, init: impl FnOnce() -> V) -> (&V, bool) {
        let guard = epoch::pin();
        // Fast path.
        if let Some(v) = self.get(&key) {
            return (v, false);
        }
        let height = random_height(&self.seed);
        let mut new = Owned::new(Node {
            key,
            value: init(),
            next: (0..height).map(|_| Atomic::null()).collect(),
        });
        loop {
            let (preds, succs) = self.search(&new.key, &guard);
            // SAFETY: loaded under `guard`; key nodes are never freed
            // before the map drops.
            if let Some(existing) = unsafe { succs[0].as_ref() } {
                if existing.key == new.key {
                    // Lost the race (or key appeared): return existing.
                    // SAFETY: key nodes live as long as the map; extending
                    // the borrow from the pin to &self is sound.
                    return (unsafe { &*(&existing.value as *const V) }, false);
                }
            }
            // Point the new node at its successors before publishing.
            for (level, succ) in succs.iter().enumerate().take(height) {
                // analysis:allow(relaxed-ordering): pre-publication store
                // into a node no other thread can see yet; the publishing
                // CAS below is the Release edge.
                new.next[level].store(*succ, Ordering::Relaxed);
            }
            match preds[0].compare_exchange(
                succs[0],
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(shared) => {
                    // SAFETY: the successful CAS installed our non-null
                    // node; it stays alive for the map's lifetime.
                    // analysis:allow(panic-path): unreachable — a
                    // just-installed node pointer cannot be null.
                    let node = unsafe { shared.as_ref().expect("just inserted") };
                    // Link the upper levels best-effort.
                    for level in 1..height {
                        loop {
                            let (preds, succs) = self.search(&node.key, &guard);
                            if succs[level].as_raw() == shared.as_raw() {
                                break; // already linked by a helper
                            }
                            node.next[level].store(succs[level], Ordering::Release);
                            if preds[level]
                                .compare_exchange(
                                    succs[level],
                                    shared,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                    &guard,
                                )
                                .is_ok()
                            {
                                break;
                            }
                        }
                    }
                    // analysis:allow(relaxed-ordering): statistics counter.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: as above — node lives as long as the map.
                    return (unsafe { &*(&node.value as *const V) }, true);
                }
                Err(e) => {
                    new = e.new;
                }
            }
        }
    }

    /// Visit entries with `key >= from` in ascending key order while `f`
    /// returns `true`.
    pub fn range_for_each(&self, from: &K, mut f: impl FnMut(&K, &V) -> bool) {
        let guard = epoch::pin();
        let (_, succs) = self.search(from, &guard);
        let mut curr = succs[0];
        // SAFETY: every pointer followed was loaded under `guard` from a
        // reachable edge; key nodes are never freed before the map drops.
        while let Some(node) = unsafe { curr.as_ref() } {
            if !f(&node.key, &node.value) {
                return;
            }
            curr = node.next[0].load(Ordering::Acquire, &guard);
        }
    }

    /// Visit every `(key, value)` in ascending key order.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let guard = epoch::pin();
        let mut curr = self.head[0].load(Ordering::Acquire, &guard);
        // SAFETY: as in `range_for_each` — nodes outlive the traversal.
        while let Some(node) = unsafe { curr.as_ref() } {
            f(&node.key, &node.value);
            curr = node.next[0].load(Ordering::Acquire, &guard);
        }
    }

    /// Keys in ascending order (snapshot).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(k.clone()));
        out
    }
}

impl<K, V> Drop for SkipMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no other thread can touch the map, the
        // contract `unprotected` requires.
        let guard = unsafe { epoch::unprotected() };
        // analysis:allow(relaxed-ordering): exclusive access in Drop; there
        // is no concurrent writer to synchronize with.
        let mut curr = self.head[0].load(Ordering::Relaxed, guard);
        while !curr.is_null() {
            // SAFETY: exclusive access; each level-0 node is owned exactly
            // once and freed exactly once by this walk.
            let owned = unsafe { curr.into_owned() };
            // analysis:allow(relaxed-ordering): exclusive access in Drop.
            curr = owned.next[0].load(Ordering::Relaxed, guard);
        }
    }
}

// ---------------------------------------------------------------------------
// Second level: per-key time-ordered skiplist.
// ---------------------------------------------------------------------------

/// Tag bit marking an edge out of a *retired* node: the node's whole suffix
/// was detached by a TTL truncation. Once a node's level-0 edge carries this
/// tag the node counts as retired; any in-flight insert CAS against one of
/// its edges fails (Harris-style marking), so a concurrent writer can never
/// resurrect expired territory, and walkers treat a tagged edge as
/// end-of-list (the retired region is always the oldest suffix).
const RETIRED: usize = 1;

const TIME_MAX_HEIGHT: usize = 12;

struct TimeNode {
    ts: i64,
    data: Arc<[u8]>,
    /// One forward pointer per level, ordered by ts *descending*.
    next: Vec<Atomic<TimeNode>>,
}

impl TimeNode {
    /// A node is retired once its level-0 edge is tagged.
    fn retired(&self, guard: &Guard) -> bool {
        self.next[0].load(Ordering::Acquire, guard).tag() == RETIRED
    }
}

/// Lock-free skiplist of `(timestamp, encoded row)` ordered newest-first —
/// the paper's "secondary skiplist" variant of the per-key time level.
///
/// * `latest` is a head read; `range(lower, upper)` *seeks* to `upper` in
///   O(log n) instead of walking every newer entry (this is what keeps the
///   raw-edge fetches of long-window pre-aggregation cheap);
/// * insertion CASes at the sorted position (head in the in-order case);
/// * TTL eviction detaches the expired suffix at level 0 with one CAS,
///   seals every detached node, unlinks the upper levels, and defers the
///   frees to epoch reclamation.
pub struct TimeList {
    head: Vec<Atomic<TimeNode>>,
    len: AtomicUsize,
    bytes: AtomicUsize,
    seed: AtomicU64,
}

impl Default for TimeList {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeList {
    pub fn new() -> Self {
        TimeList {
            head: (0..TIME_MAX_HEIGHT).map(|_| Atomic::null()).collect(),
            len: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            seed: AtomicU64::new(0x2545_F491_4F6C_DD1D),
        }
    }

    pub fn len(&self) -> usize {
        // analysis:allow(relaxed-ordering): statistics counter.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes currently held (for memory accounting, Section 8).
    pub fn bytes(&self) -> usize {
        // analysis:allow(relaxed-ordering): statistics counter.
        self.bytes.load(Ordering::Relaxed)
    }

    /// Find, per level, the last position strictly newer than `ts` and the
    /// first node with `node.ts <= ts`. A successor that is retired (or an
    /// edge tagged mid-walk) is reported as the end of that level — the
    /// retired region is always the expired suffix.
    #[allow(clippy::type_complexity)]
    fn search<'g>(
        &'g self,
        ts: i64,
        guard: &'g Guard,
    ) -> (
        [&'g Atomic<TimeNode>; TIME_MAX_HEIGHT],
        [Shared<'g, TimeNode>; TIME_MAX_HEIGHT],
    ) {
        let mut preds: [&Atomic<TimeNode>; TIME_MAX_HEIGHT] =
            std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<TimeNode>; TIME_MAX_HEIGHT] =
            std::array::from_fn(|_| Shared::null());
        let mut pred_links: &[Atomic<TimeNode>] = &self.head;
        for level in (0..TIME_MAX_HEIGHT).rev() {
            let mut curr = pred_links[level].load(Ordering::Acquire, guard);
            loop {
                if curr.tag() == RETIRED {
                    // The edge we are standing on was sealed: everything
                    // from here on is the detached suffix.
                    curr = Shared::null();
                    break;
                }
                // SAFETY: loaded under `guard` from a reachable, untagged
                // edge; a node only becomes freeable after it is sealed
                // (tag observed above) *and* all pins from before the seal
                // are released — ours is still held.
                let Some(node) = (unsafe { curr.as_ref() }) else {
                    break;
                };
                if node.retired(guard) {
                    curr = Shared::null();
                    break;
                }
                if node.ts > ts {
                    pred_links = &node.next;
                    curr = pred_links[level].load(Ordering::Acquire, guard);
                } else {
                    break;
                }
            }
            preds[level] = &pred_links[level];
            succs[level] = curr;
        }
        (preds, succs)
    }

    /// Insert an encoded row at its timestamp position. Out-of-order inserts
    /// seek past newer entries; same-timestamp rows keep insertion order
    /// (newest insert closest to the head).
    pub fn insert(&self, ts: i64, data: Arc<[u8]>) {
        let guard = epoch::pin();
        let size = data.len();
        let height = (random_height(&self.seed)).min(TIME_MAX_HEIGHT);
        let mut new = Owned::new(TimeNode {
            ts,
            data,
            next: (0..height).map(|_| Atomic::null()).collect(),
        });
        loop {
            let (preds, succs) = self.search(ts, &guard);
            for (level, succ) in succs.iter().enumerate().take(height) {
                // analysis:allow(relaxed-ordering): pre-publication store
                // into a node no other thread can see yet; the publishing
                // CAS below is the Release edge.
                new.next[level].store(*succ, Ordering::Relaxed);
            }
            match preds[0].compare_exchange(
                succs[0],
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(shared) => {
                    // SAFETY: the successful CAS installed our non-null
                    // node; our pin keeps it alive even if a concurrent
                    // truncation detaches it immediately.
                    // analysis:allow(panic-path): unreachable — a
                    // just-installed node pointer cannot be null.
                    let node = unsafe { shared.as_ref().expect("just inserted") };
                    // Link the upper levels best-effort with fresh searches;
                    // a level that raced (or borders the retired suffix) is
                    // skipped — the node stays reachable via level 0. The
                    // node's own edges are updated with tag-checked CAS: if
                    // a concurrent truncation sealed this node (tagged its
                    // edges), linking stops, so a retired node can never be
                    // re-published into a live level.
                    'link: for level in 1..height {
                        let (preds, succs) = self.search(ts, &guard);
                        if succs[level].as_raw() == shared.as_raw() {
                            continue;
                        }
                        let mut current = node.next[level].load(Ordering::Acquire, &guard);
                        loop {
                            if current.tag() == RETIRED {
                                break 'link; // sealed mid-insert: stop
                            }
                            match node.next[level].compare_exchange(
                                current,
                                succs[level],
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                &guard,
                            ) {
                                Ok(_) => break,
                                Err(e) => current = e.current,
                            }
                        }
                        let _ = preds[level].compare_exchange(
                            succs[level],
                            shared,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            &guard,
                        );
                    }
                    // analysis:allow(relaxed-ordering): statistics counters.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    // analysis:allow(relaxed-ordering): statistics counters.
                    self.bytes.fetch_add(size, Ordering::Relaxed);
                    return;
                }
                Err(e) => new = e.new,
            }
        }
    }

    /// Visit entries newest → oldest while `f` returns `true`. A reader that
    /// entered a suffix just before its truncation keeps a consistent view
    /// (epoch reclamation defers frees; tags are stripped when following).
    pub fn scan(&self, mut f: impl FnMut(i64, &[u8]) -> bool) {
        let guard = epoch::pin();
        let mut curr = self.head[0].load(Ordering::Acquire, &guard);
        // SAFETY: every pointer followed was loaded under `guard`; nodes
        // detached by a concurrent truncation are only freed after our pin
        // is released, so the walk stays on valid memory (a detached suffix
        // is immutable and still null-terminated).
        while let Some(node) = unsafe { curr.with_tag(0).as_ref() } {
            if !f(node.ts, &node.data) {
                return;
            }
            curr = node.next[0].load(Ordering::Acquire, &guard);
        }
    }

    /// The newest entry — the `LAST JOIN` fast path.
    pub fn latest(&self) -> Option<(i64, Arc<[u8]>)> {
        let guard = epoch::pin();
        let head = self.head[0].load(Ordering::Acquire, &guard);
        // SAFETY: loaded under `guard`; a concurrently detached node is not
        // freed before the pin drops.
        unsafe { head.with_tag(0).as_ref() }.map(|n| (n.ts, n.data.clone()))
    }

    /// Entries with `lower_ts <= ts <= upper_ts`, newest first. Seeks to
    /// `upper_ts` through the skip levels instead of scanning from the head.
    pub fn range(&self, lower_ts: i64, upper_ts: i64) -> Vec<(i64, Arc<[u8]>)> {
        let guard = epoch::pin();
        let (_, succs) = self.search(upper_ts, &guard);
        let mut out = Vec::new();
        let mut curr = succs[0];
        // SAFETY: as in `scan` — pins outlive any concurrent reclamation of
        // the nodes this walk can reach.
        while let Some(node) = unsafe { curr.with_tag(0).as_ref() } {
            if node.ts < lower_ts {
                break;
            }
            out.push((node.ts, node.data.clone()));
            curr = node.next[0].load(Ordering::Acquire, &guard);
        }
        out
    }

    // HOT: online window scan — borrowed payloads, no per-entry clones.
    /// Visit entries with `lower_ts <= ts <= upper_ts`, newest first, while
    /// `f` returns `true`. The seek-then-iterate sibling of
    /// [`TimeList::range`]: payloads are yielded as `&[u8]` borrows valid
    /// for the duration of the callback, so a scan→aggregate pass touches
    /// no heap at all.
    pub fn range_visit(&self, lower_ts: i64, upper_ts: i64, mut f: impl FnMut(i64, &[u8]) -> bool) {
        let guard = epoch::pin();
        let (_, succs) = self.search(upper_ts, &guard);
        let mut curr = succs[0];
        // SAFETY: as in `scan` — pins outlive any concurrent reclamation of
        // the nodes this walk can reach.
        while let Some(node) = unsafe { curr.with_tag(0).as_ref() } {
            if node.ts < lower_ts {
                break;
            }
            if !f(node.ts, &node.data) {
                return;
            }
            curr = node.next[0].load(Ordering::Acquire, &guard);
        }
    }

    /// Truncate the expired suffix: drop every entry with `ts < cutoff_ts`
    /// and/or beyond the newest `keep_latest` entries. With `require_both`,
    /// an entry is dropped only when it violates *both* bounds (the
    /// `absandlat` TTL variant); otherwise violating either bound expires it
    /// (`absorlat` and the simple policies). Both predicates are monotone
    /// along the list (ts decreasing, rank increasing), so the expired
    /// entries always form a suffix. Returns `(entries, bytes)` freed.
    pub fn truncate(
        &self,
        cutoff_ts: Option<i64>,
        keep_latest: Option<usize>,
        require_both: bool,
    ) -> (usize, usize) {
        let guard = epoch::pin();
        loop {
            // Walk level 0 to the first node that must be dropped.
            let mut pred: &Atomic<TimeNode> = &self.head[0];
            let mut curr = pred.load(Ordering::Acquire, &guard);
            let mut kept = 0usize;
            // SAFETY: loaded under `guard` from reachable edges; see `scan`.
            while let Some(node) = unsafe { curr.with_tag(0).as_ref() } {
                if curr.tag() == RETIRED {
                    // Concurrent truncation already handled this region.
                    return (0, 0);
                }
                let by_time = cutoff_ts.is_some_and(|c| node.ts < c);
                let by_count = keep_latest.is_some_and(|k| kept >= k);
                let expired = if require_both {
                    (cutoff_ts.is_none() || by_time)
                        && (keep_latest.is_none() || by_count)
                        && (cutoff_ts.is_some() || keep_latest.is_some())
                } else {
                    by_time || by_count
                };
                if expired {
                    break;
                }
                kept += 1;
                pred = &node.next[0];
                curr = pred.load(Ordering::Acquire, &guard);
            }
            if curr.with_tag(0).is_null() {
                return (0, 0);
            }
            // Detach the suffix at level 0 with one CAS.
            if pred
                .compare_exchange(
                    curr,
                    Shared::null(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_err()
            {
                continue; // raced with an insert; retry the walk
            }

            // Seal the chain: tag every detached node's level-0 edge first
            // (this marks the node retired and absorbs any straggler insert
            // that CASed itself in before the seal reached it), then the
            // upper edges.
            let mut chain: Vec<Shared<TimeNode>> = Vec::new();
            let mut freed = 0usize;
            let mut node_ptr = curr.with_tag(0);
            // SAFETY: the detached suffix is only reclaimed below via
            // `defer_destroy` under this same pin, so every node in it is
            // still valid while we seal it.
            while let Some(node) = unsafe { node_ptr.as_ref() } {
                let mut next = node.next[0].load(Ordering::Acquire, &guard);
                loop {
                    match node.next[0].compare_exchange(
                        next,
                        next.with_tag(RETIRED),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        &guard,
                    ) {
                        Ok(_) => break,
                        Err(e) => next = e.current, // a straggler linked in
                    }
                }
                for level in 1..node.next.len() {
                    let mut up = node.next[level].load(Ordering::Acquire, &guard);
                    loop {
                        match node.next[level].compare_exchange(
                            up,
                            up.with_tag(RETIRED),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            &guard,
                        ) {
                            Ok(_) => break,
                            Err(e) => up = e.current,
                        }
                    }
                }
                freed += node.data.len();
                chain.push(node_ptr);
                node_ptr = next.with_tag(0);
            }

            // Repair the upper levels: cut each level's last live edge into
            // the retired region so no live pointer survives into freed
            // memory. Retried per level against concurrent inserts.
            for level in 1..TIME_MAX_HEIGHT {
                'repair: loop {
                    let mut pred: &Atomic<TimeNode> = &self.head[level];
                    let mut edge = pred.load(Ordering::Acquire, &guard);
                    loop {
                        if edge.tag() == RETIRED {
                            // Standing inside the retired region (stale upper
                            // pointer of a live node was already repaired by
                            // a concurrent pass); restart.
                            continue 'repair;
                        }
                        // SAFETY: untagged reachable edge loaded under
                        // `guard`; retired nodes are freed only after all
                        // current pins release.
                        let Some(node) = (unsafe { edge.as_ref() }) else {
                            break 'repair;
                        };
                        if node.retired(&guard) {
                            // Cut here.
                            if pred
                                .compare_exchange(
                                    edge,
                                    Shared::null(),
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                    &guard,
                                )
                                .is_ok()
                            {
                                break 'repair;
                            }
                            continue 'repair;
                        }
                        pred = &node.next[level];
                        edge = pred.load(Ordering::Acquire, &guard);
                    }
                }
            }

            // Now unreachable from every level: reclaim.
            for ptr in &chain {
                // SAFETY: the chain was unlinked from every level above and
                // sealed against re-publication; each node is deferred
                // exactly once, and readers that can still see it hold pins
                // older than this epoch.
                unsafe { guard.defer_destroy(*ptr) };
            }
            // analysis:allow(relaxed-ordering): statistics counters.
            self.len.fetch_sub(chain.len(), Ordering::Relaxed);
            // analysis:allow(relaxed-ordering): statistics counters.
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            return (chain.len(), freed);
        }
    }
}

impl Drop for TimeList {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves exclusive access, as `unprotected`
        // requires.
        let guard = unsafe { epoch::unprotected() };
        // analysis:allow(relaxed-ordering): exclusive access in Drop.
        let mut curr = self.head[0].load(Ordering::Relaxed, guard).with_tag(0);
        while !curr.is_null() {
            // SAFETY: exclusive access; level-0 reaches every live node
            // exactly once (detached suffixes were already handed to epoch
            // reclamation and are not reachable from the head).
            let owned = unsafe { curr.into_owned() };
            // analysis:allow(relaxed-ordering): exclusive access in Drop.
            curr = owned.next[0].load(Ordering::Relaxed, guard).with_tag(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn bytes(v: u8) -> Arc<[u8]> {
        Arc::from(vec![v].into_boxed_slice())
    }

    #[test]
    fn skipmap_insert_get_sorted_iteration() {
        let map: SkipMap<i64, String> = SkipMap::new();
        for k in [5, 1, 9, 3, 7] {
            map.get_or_insert_with(k, || format!("v{k}"));
        }
        assert_eq!(map.len(), 5);
        assert_eq!(map.get(&3), Some(&"v3".to_string()));
        assert_eq!(map.get(&4), None);
        assert_eq!(map.keys(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn skipmap_get_or_insert_returns_existing() {
        let map: SkipMap<i64, i64> = SkipMap::new();
        let (a, created_a) = map.get_or_insert_with(1, || 10);
        let (b, created_b) = map.get_or_insert_with(1, || 99);
        assert_eq!(*a, 10);
        assert!(created_a);
        assert_eq!(*b, 10, "second insert sees the first value");
        assert!(!created_b);
        assert_eq!(map.len(), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "threaded stress test; too slow under miri")]
    fn skipmap_concurrent_inserts() {
        let map: StdArc<SkipMap<u64, u64>> = StdArc::new(SkipMap::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let map = map.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        // Overlapping key ranges force CAS contention.
                        map.get_or_insert_with(i % 257, || t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(map.len(), 257);
        let keys = map.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn timelist_orders_newest_first() {
        let list = TimeList::new();
        for (ts, v) in [(10, 1u8), (30, 3), (20, 2)] {
            list.insert(ts, bytes(v));
        }
        let mut seen = Vec::new();
        list.scan(|ts, data| {
            seen.push((ts, data[0]));
            true
        });
        assert_eq!(seen, vec![(30, 3), (20, 2), (10, 1)]);
        assert_eq!(list.latest().unwrap().0, 30);
        assert_eq!(list.len(), 3);
        assert_eq!(list.bytes(), 3);
    }

    #[test]
    fn timelist_range_scan() {
        let list = TimeList::new();
        for ts in [10, 20, 30, 40, 50] {
            list.insert(ts, bytes(ts as u8));
        }
        let hits = list.range(20, 40);
        let tss: Vec<i64> = hits.iter().map(|(t, _)| *t).collect();
        assert_eq!(tss, vec![40, 30, 20]);
    }

    #[test]
    fn timelist_ttl_truncates_suffix() {
        let list = TimeList::new();
        for ts in [10, 20, 30, 40] {
            list.insert(ts, bytes(ts as u8));
        }
        let (dropped, freed) = list.truncate(Some(25), None, false);
        assert_eq!(dropped, 2);
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 2);
        let mut seen = Vec::new();
        list.scan(|ts, _| {
            seen.push(ts);
            true
        });
        assert_eq!(seen, vec![40, 30]);
        // Idempotent.
        assert_eq!(list.truncate(Some(25), None, false), (0, 0));
    }

    #[test]
    fn timelist_keep_latest_policy() {
        let list = TimeList::new();
        for ts in 0..10 {
            list.insert(ts, bytes(ts as u8));
        }
        let (dropped, _) = list.truncate(None, Some(3), false);
        assert_eq!(dropped, 7);
        assert_eq!(list.len(), 3);
        assert_eq!(list.latest().unwrap().0, 9);
    }

    #[test]
    #[cfg_attr(miri, ignore = "threaded stress test; too slow under miri")]
    fn timelist_concurrent_insert_and_truncate() {
        let list = StdArc::new(TimeList::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let list = list.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000i64 {
                        list.insert(i * 4 + t, bytes((i % 251) as u8));
                    }
                })
            })
            .collect();
        let gc = {
            let list = list.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    list.truncate(Some(1_000), None, false);
                    std::thread::yield_now();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        gc.join().unwrap();
        list.truncate(Some(1_000), None, false);
        // Every surviving entry respects the cutoff and ordering.
        let mut prev = i64::MAX;
        let mut count = 0usize;
        list.scan(|ts, _| {
            assert!(ts >= 1_000, "expired entry survived: {ts}");
            assert!(ts <= prev, "ordering violated");
            prev = ts;
            count += 1;
            true
        });
        assert_eq!(count, list.len());
        assert_eq!(count, 8_000 - 1_000);
    }

    #[test]
    fn same_timestamp_latest_insert_wins_head() {
        let list = TimeList::new();
        list.insert(5, bytes(1));
        list.insert(5, bytes(2));
        assert_eq!(list.latest().unwrap().1[0], 2);
    }

    /// Epoch reclamation really frees truncated payloads: `Weak` handles on
    /// the `Arc` payloads of evicted entries die once collection quiesces.
    #[test]
    #[cfg_attr(miri, ignore = "epoch collection retry loop; too slow under miri")]
    fn truncate_releases_payloads_via_epoch() {
        let list = TimeList::new();
        let payloads: Vec<Arc<[u8]>> = (0..8u8).map(bytes).collect();
        let weaks: Vec<std::sync::Weak<[u8]>> = payloads.iter().map(StdArc::downgrade).collect();
        for (ts, p) in payloads.into_iter().enumerate() {
            list.insert(ts as i64, p);
        }
        let (dropped, _) = list.truncate(Some(4), None, false);
        assert_eq!(dropped, 4);
        // Other tests in this process may hold transient pins that block one
        // epoch advance; keep collecting until the evicted payloads die.
        for _ in 0..1_000 {
            epoch::force_collect();
            if weaks[..4].iter().all(|w| w.upgrade().is_none()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for (ts, w) in weaks.iter().enumerate() {
            if (ts as i64) < 4 {
                assert!(w.upgrade().is_none(), "evicted payload ts={ts} still alive");
            } else {
                assert!(w.upgrade().is_some(), "live payload ts={ts} was freed");
            }
        }
    }
}
