//! Binlog-driven table replication — the availability substrate the paper
//! delegates to ZooKeeper-coordinated tablet replicas (Section 3.1, and the
//! `n_replica` factor of the Section 8.1 memory model).
//!
//! A [`ReplicaTable`] is a follower [`MemTable`] fed exactly-once from a
//! leader's binlog: `subscribe_with_catchup` replays the leader's history
//! synchronously and applies every later write asynchronously, in offset
//! order. Readers can be pointed at the replica at any time (eventual
//! consistency; [`ReplicaTable::sync`] blocks until it has caught up) — on
//! leader loss, the replica already holds the full dataset and serves reads
//! immediately, which is the failover behaviour the paper gets from its
//! ZooKeeper deployment.

use std::sync::Arc;

use openmldb_types::{CompactCodec, Result, RowCodec, Schema};

use crate::disk_table::DataTable;
#[cfg(test)]
use crate::table::IndexSpec;
use crate::table::MemTable;

/// A follower table kept in sync with a leader through its binlog.
pub struct ReplicaTable {
    follower: Arc<MemTable>,
    leader_replicator: Arc<crate::binlog::Replicator>,
}

impl ReplicaTable {
    /// Create a replica of `leader` and start following its binlog. The
    /// leader's current history is applied synchronously before this
    /// returns; later writes stream in asynchronously.
    pub fn follow(leader: &dyn DataTable) -> Result<Self> {
        let schema: Schema = leader.schema().clone();
        let follower = Arc::new(MemTable::new(
            format!("{}_replica", leader.name()),
            schema.clone(),
            leader.index_specs(),
        )?);
        let codec = CompactCodec::new(schema);
        let target = follower.clone();
        leader
            .replicator()
            .subscribe_with_catchup(Arc::new(move |entry| {
                if let Ok(row) = codec.decode(&entry.data) {
                    // Replica applies are infallible for rows the leader
                    // accepted (same schema, no memory limit on the follower).
                    let _ = target.put(&row);
                }
            }));
        Ok(ReplicaTable {
            follower,
            leader_replicator: leader.replicator().clone(),
        })
    }

    /// Block until every write the leader has accepted so far is applied.
    pub fn sync(&self) {
        self.leader_replicator.flush();
    }

    /// The follower table, servable like any other table.
    pub fn table(&self) -> Arc<MemTable> {
        self.follower.clone()
    }

    /// Rows applied so far.
    pub fn applied_rows(&self) -> usize {
        self.follower.row_count()
    }
}

/// Convenience: replicate a leader `n` times (the `n_replica` deployments of
/// Section 8.1 — each replica is a full data copy, which is exactly why the
/// memory model multiplies by it).
pub fn replicate(leader: &dyn DataTable, n: usize) -> Result<Vec<ReplicaTable>> {
    (0..n).map(|_| ReplicaTable::follow(leader)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Ttl;
    use openmldb_types::{DataType, KeyValue, Row, Value};

    fn leader() -> MemTable {
        MemTable::new(
            "events",
            Schema::from_pairs(&[
                ("k", DataType::Bigint),
                ("v", DataType::Double),
                ("ts", DataType::Timestamp),
            ])
            .unwrap(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap()
    }

    fn row(k: i64, v: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(k),
            Value::Double(v),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn replica_catches_up_and_follows() {
        let leader = leader();
        // History before the replica exists...
        for i in 0..50 {
            leader.put(&row(i % 3, i as f64, i * 10)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        // ...and writes after it attached.
        for i in 50..100 {
            leader.put(&row(i % 3, i as f64, i * 10)).unwrap();
        }
        replica.sync();
        assert_eq!(
            replica.applied_rows(),
            100,
            "catch-up + live stream, exactly once"
        );
        // Reads on the replica match the leader.
        let key = [KeyValue::Int(1)];
        assert_eq!(
            leader.range(0, &key, 0, 10_000).unwrap(),
            replica.table().range(0, &key, 0, 10_000).unwrap()
        );
    }

    #[test]
    fn failover_replica_serves_after_leader_drop() {
        let leader = leader();
        for i in 0..20 {
            leader.put(&row(1, i as f64, i)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        replica.sync();
        let serving = replica.table();
        drop(leader); // the "tablet" dies
        let latest = serving.latest(0, &[KeyValue::Int(1)]).unwrap().unwrap();
        assert_eq!(latest[1], Value::Double(19.0), "replica keeps serving");
    }

    #[test]
    fn multiple_replicas_stay_identical() {
        let leader = leader();
        let replicas = replicate(&leader, 3).unwrap();
        for i in 0..200 {
            leader.put(&row(i % 5, i as f64, i)).unwrap();
        }
        for r in &replicas {
            r.sync();
            assert_eq!(r.applied_rows(), 200);
        }
        let key = [KeyValue::Int(2)];
        let reference = replicas[0].table().range(0, &key, 0, 10_000).unwrap();
        for r in &replicas[1..] {
            assert_eq!(r.table().range(0, &key, 0, 10_000).unwrap(), reference);
        }
    }

    #[test]
    fn replica_memory_matches_n_replica_model_intuition() {
        // Two replicas ≈ 2× the leader's memory — the n_replica factor.
        let leader = leader();
        for i in 0..500 {
            leader.put(&row(i % 7, i as f64, i)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        replica.sync();
        let l = leader.mem_used() as f64;
        let r = replica.table().mem_used() as f64;
        assert!((r / l - 1.0).abs() < 0.05, "leader {l} vs replica {r}");
    }
}
