//! Binlog-driven table replication — the availability substrate the paper
//! delegates to ZooKeeper-coordinated tablet replicas (Section 3.1, and the
//! `n_replica` factor of the Section 8.1 memory model).
//!
//! A [`ReplicaTable`] is a follower [`MemTable`] fed exactly-once from a
//! leader's binlog: `subscribe_with_catchup` replays the leader's history
//! synchronously and applies every later write asynchronously, in offset
//! order. Readers can be pointed at the replica at any time (eventual
//! consistency; [`ReplicaTable::sync`] blocks until it has caught up) — on
//! leader loss, the replica already holds the full dataset and serves reads
//! immediately, which is the failover behaviour the paper gets from its
//! ZooKeeper deployment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use openmldb_chaos::InjectionPoint;
use openmldb_types::{CompactCodec, Result, RowCodec, Schema};

use crate::disk_table::DataTable;
#[cfg(test)]
use crate::table::IndexSpec;
use crate::table::MemTable;

/// Bounded retries for an injected transient fault inside the apply
/// closure; a real (non-transient) failure is counted immediately.
const APPLY_RETRIES: u32 = 3;

/// A follower table kept in sync with a leader through its binlog.
pub struct ReplicaTable {
    follower: Arc<MemTable>,
    leader_replicator: Arc<crate::binlog::Replicator>,
    /// Entries whose decode or apply failed — surfaced instead of silently
    /// dropped, because a follower missing rows is not a replica.
    apply_errors: Arc<AtomicU64>,
}

impl ReplicaTable {
    /// Create a replica of `leader` and start following its binlog. The
    /// leader's current history is applied synchronously before this
    /// returns; later writes stream in asynchronously.
    pub fn follow(leader: &dyn DataTable) -> Result<Self> {
        let schema: Schema = leader.schema().clone();
        let follower = Arc::new(MemTable::new(
            format!("{}_replica", leader.name()),
            schema.clone(),
            leader.index_specs(),
        )?);
        let codec = CompactCodec::new(schema);
        let target = follower.clone();
        let apply_errors: Arc<AtomicU64> = Arc::default();
        let errors = apply_errors.clone();
        leader
            .replicator()
            .subscribe_with_catchup(Arc::new(move |entry| {
                let mut outcome = openmldb_chaos::inject(InjectionPoint::ReplicaApply)
                    .and_then(|()| codec.decode(&entry.data))
                    .and_then(|row| target.put(&row));
                // Injected transient faults get a bounded retry; rows the
                // leader accepted are decodable and the follower has no
                // memory cap, so persistent failure here is a real defect
                // worth surfacing, not noise.
                let mut attempts = 0;
                while attempts < APPLY_RETRIES && matches!(&outcome, Err(e) if e.is_transient()) {
                    attempts += 1;
                    outcome = codec.decode(&entry.data).and_then(|row| target.put(&row));
                }
                if outcome.is_err() {
                    // Never panic here: this runs on the binlog delivery
                    // worker, and tearing it down would stall every other
                    // subscriber. Count, expose, keep going.
                    // analysis:allow(relaxed-ordering): statistics counter.
                    errors.fetch_add(1, Ordering::Relaxed);
                    crate::metrics::replica_apply_errors().inc();
                }
            }));
        Ok(ReplicaTable {
            follower,
            leader_replicator: leader.replicator().clone(),
            apply_errors,
        })
    }

    /// Block until every write the leader has accepted so far is applied,
    /// then publish the remaining lag (0 on a healthy follower) to obs.
    pub fn sync(&self) {
        self.leader_replicator.flush();
        crate::metrics::replica_lag().set(self.lag() as f64);
    }

    /// The follower table, servable like any other table.
    pub fn table(&self) -> Arc<MemTable> {
        self.follower.clone()
    }

    /// Sync-then-promote: catch the follower up with the leader's full
    /// binlog and hand it out as the new serving table. This is the read
    /// failover path — after a leader fault the caller swaps this table in
    /// and keeps answering requests.
    pub fn promote(&self) -> Arc<MemTable> {
        self.sync();
        self.follower.clone()
    }

    /// Rows applied so far.
    pub fn applied_rows(&self) -> usize {
        self.follower.row_count()
    }

    /// Entries the apply closure failed on (decode or put), after retries.
    pub fn apply_errors(&self) -> u64 {
        self.apply_errors.load(Ordering::Acquire)
    }

    /// Entries the leader has accepted but the follower has not applied.
    /// Apply errors are counted as permanently lagged, never silently
    /// caught up.
    pub fn lag(&self) -> u64 {
        self.leader_replicator
            .len()
            .saturating_sub(self.applied_rows() as u64)
    }
}

/// Convenience: replicate a leader `n` times (the `n_replica` deployments of
/// Section 8.1 — each replica is a full data copy, which is exactly why the
/// memory model multiplies by it).
pub fn replicate(leader: &dyn DataTable, n: usize) -> Result<Vec<ReplicaTable>> {
    (0..n).map(|_| ReplicaTable::follow(leader)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Ttl;
    use openmldb_types::{DataType, KeyValue, Row, Value};

    fn leader() -> MemTable {
        MemTable::new(
            "events",
            Schema::from_pairs(&[
                ("k", DataType::Bigint),
                ("v", DataType::Double),
                ("ts", DataType::Timestamp),
            ])
            .unwrap(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap()
    }

    fn row(k: i64, v: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(k),
            Value::Double(v),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn replica_catches_up_and_follows() {
        let leader = leader();
        // History before the replica exists...
        for i in 0..50 {
            leader.put(&row(i % 3, i as f64, i * 10)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        // ...and writes after it attached.
        for i in 50..100 {
            leader.put(&row(i % 3, i as f64, i * 10)).unwrap();
        }
        replica.sync();
        assert_eq!(
            replica.applied_rows(),
            100,
            "catch-up + live stream, exactly once"
        );
        // Reads on the replica match the leader.
        let key = [KeyValue::Int(1)];
        assert_eq!(
            leader.range(0, &key, 0, 10_000).unwrap(),
            replica.table().range(0, &key, 0, 10_000).unwrap()
        );
    }

    #[test]
    fn failover_replica_serves_after_leader_drop() {
        let leader = leader();
        for i in 0..20 {
            leader.put(&row(1, i as f64, i)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        replica.sync();
        let serving = replica.table();
        drop(leader); // the "tablet" dies
        let latest = serving.latest(0, &[KeyValue::Int(1)]).unwrap().unwrap();
        assert_eq!(latest[1], Value::Double(19.0), "replica keeps serving");
    }

    #[test]
    fn multiple_replicas_stay_identical() {
        let leader = leader();
        let replicas = replicate(&leader, 3).unwrap();
        for i in 0..200 {
            leader.put(&row(i % 5, i as f64, i)).unwrap();
        }
        for r in &replicas {
            r.sync();
            assert_eq!(r.applied_rows(), 200);
        }
        let key = [KeyValue::Int(2)];
        let reference = replicas[0].table().range(0, &key, 0, 10_000).unwrap();
        for r in &replicas[1..] {
            assert_eq!(r.table().range(0, &key, 0, 10_000).unwrap(), reference);
        }
    }

    #[test]
    fn promote_syncs_then_serves() {
        let leader = leader();
        let replica = ReplicaTable::follow(&leader).unwrap();
        for i in 0..100 {
            leader.put(&row(2, i as f64, i)).unwrap();
        }
        // promote = sync + hand out the follower: no sleep, no flush by the
        // caller — the promoted table must already hold everything.
        let serving = replica.promote();
        drop(leader);
        assert_eq!(serving.row_count(), 100);
        let latest = serving.latest(0, &[KeyValue::Int(2)]).unwrap().unwrap();
        assert_eq!(latest[1], Value::Double(99.0));
        assert_eq!(replica.lag(), 0);
        assert_eq!(replica.apply_errors(), 0);
    }

    #[test]
    fn corrupt_entries_are_counted_not_silently_dropped() {
        let leader = leader();
        let replica = ReplicaTable::follow(&leader).unwrap();
        for i in 0..10 {
            leader.put(&row(1, i as f64, i)).unwrap();
        }
        // A payload the codec cannot decode: the apply must fail loudly
        // (counted in apply_errors + obs) instead of vanishing.
        leader.replicator().append_entry(
            "events".into(),
            Arc::from(vec![KeyValue::Int(1)].into_boxed_slice()),
            11,
            Arc::from(vec![0xFFu8; 2].into_boxed_slice()),
        );
        for i in 12..20 {
            leader.put(&row(1, i as f64, i)).unwrap();
        }
        replica.sync();
        assert_eq!(replica.applied_rows(), 18, "good rows all applied");
        assert_eq!(replica.apply_errors(), 1, "bad entry counted");
        assert_eq!(replica.lag(), 1, "lag exposes the unapplied entry");
    }

    #[test]
    fn replica_memory_matches_n_replica_model_intuition() {
        // Two replicas ≈ 2× the leader's memory — the n_replica factor.
        let leader = leader();
        for i in 0..500 {
            leader.put(&row(i % 7, i as f64, i)).unwrap();
        }
        let replica = ReplicaTable::follow(&leader).unwrap();
        replica.sync();
        let l = leader.mem_used() as f64;
        let r = replica.table().mem_used() as f64;
        assert!((r / l - 1.0).abs() < 0.05, "leader {l} vs replica {r}");
    }
}
