//! On-disk storage engine substitute (paper Section 7.3).
//!
//! The original system uses RocksDB with one column family per index. This
//! reproduction implements the same *architecture* natively:
//!
//! * every index is a **column family** with its own sorted runs (the
//!   SST-file analogue) and its own eviction policy;
//! * all column families share a **single memtable**, which is the refined
//!   skiplist of Section 7.2 keyed by a composite `(cf, key, ts)` key —
//!   pre-sorted so same-key data is grouped and time-range queries are
//!   contiguous;
//! * when the memtable exceeds a threshold it is **flushed**: entries split
//!   by column family into per-CF sorted runs;
//! * **eviction** parses the composite keys and drops entries whose
//!   timestamp is out of date.
//!
//! "Disk" here is process memory (the benchmarked behaviour is the key
//! layout and merge path, not device I/O); runs are kept as sorted vectors
//! the way SSTs are kept as sorted blocks.

use std::sync::Arc;

use parking_lot::RwLock;

use openmldb_types::{Error, KeyValue, Result};

use crate::skiplist::SkipMap;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Flush-trigger accounting shared by all writers.
///
/// The naive pattern — every writer checks `entries >= threshold` and, when
/// it holds, flushes and stores 0 — has a classic check-then-act race: two
/// writers can both observe the crossing before either resets, so both run
/// a flush (the second producing a spurious near-empty run), and the
/// unconditional `store(0)` erases increments that landed between the
/// memtable swap and the reset, silently losing counter updates. The
/// schedule explorer reproduces both failure shapes deterministically (see
/// `tests/schedule_explorer.rs`).
///
/// This type fixes it with a single `compare_exchange` *claim*: among all
/// writers that observe the crossing, exactly one wins the claim and runs
/// the flush; the flush then *subtracts the number of entries it actually
/// moved* instead of zeroing, so concurrent increments are never lost.
pub struct FlushTrigger {
    entries: AtomicUsize,
    claimed: AtomicBool,
    threshold: usize,
}

impl FlushTrigger {
    pub fn new(threshold: usize) -> Self {
        FlushTrigger {
            entries: AtomicUsize::new(0),
            claimed: AtomicBool::new(false),
            threshold: threshold.max(1),
        }
    }

    /// Record one appended entry. Returns `true` iff this caller crossed
    /// the threshold *and* won the flush claim — the caller must then flush
    /// and finish with [`FlushTrigger::flush_done`]. At most one claim is
    /// outstanding at any time.
    pub fn record(&self) -> bool {
        let n = self.entries.fetch_add(1, Ordering::AcqRel) + 1;
        n >= self.threshold
            && self
                .claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }

    /// Account a completed flush that moved `flushed` entries out of the
    /// memtable, and release the claim if the caller held one. Subtracting
    /// the observed count (instead of storing zero) keeps increments that
    /// raced with the flush.
    pub fn flush_done(&self, flushed: usize, claimed: bool) {
        let _ = self
            .entries
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                Some(c.saturating_sub(flushed))
            });
        if claimed {
            self.claimed.store(false, Ordering::Release);
        }
    }

    /// Entries recorded since the last flush (approximate under races by at
    /// most the number of in-flight writers).
    pub fn pending(&self) -> usize {
        self.entries.load(Ordering::Acquire)
    }
}

/// Composite key: column family, rendered partition key, timestamp
/// (descending), and a uniquifier. Ordering groups a CF's keys together and
/// each key's entries newest-first — exactly the RocksDB key layout the
/// paper describes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CompositeKey {
    pub cf: u32,
    pub key: String,
    /// Stored negated so the natural ascending order is newest-first.
    neg_ts: i64,
    pub seq: u64,
}

impl CompositeKey {
    pub fn new(cf: u32, key: String, ts: i64, seq: u64) -> Self {
        CompositeKey {
            cf,
            key,
            neg_ts: -ts,
            seq,
        }
    }

    pub fn ts(&self) -> i64 {
        -self.neg_ts
    }
}

/// Render a multi-column key the way the composite key stores it.
pub fn render_key(key: &[KeyValue]) -> String {
    key.iter()
        .map(KeyValue::render)
        .collect::<Vec<_>>()
        .join("\u{1}")
}

/// Column-family metadata.
#[derive(Debug, Clone)]
pub struct ColumnFamilySpec {
    pub name: String,
    /// Entries older than this many ms are evicted; `None` keeps all.
    pub eviction_ttl_ms: Option<i64>,
}

/// One flushed memtable's worth of entries, sorted by [`CompositeKey`]
/// (the SST-block analogue).
type SortedRun = Vec<(CompositeKey, Arc<[u8]>)>;

struct ColumnFamily {
    spec: ColumnFamilySpec,
    /// Sorted runs, oldest run first.
    runs: RwLock<Vec<SortedRun>>,
}

/// The disk engine: shared memtable + per-CF sorted runs.
pub struct DiskEngine {
    cfs: Vec<ColumnFamily>,
    memtable: RwLock<Arc<SkipMap<CompositeKey, Arc<[u8]>>>>,
    flush_trigger: FlushTrigger,
    seq: AtomicUsize,
}

impl DiskEngine {
    /// `flush_threshold`: memtable entry count that triggers a flush.
    pub fn new(cfs: Vec<ColumnFamilySpec>, flush_threshold: usize) -> Result<Self> {
        if cfs.is_empty() {
            return Err(Error::Storage(
                "disk engine needs at least one column family".into(),
            ));
        }
        Ok(DiskEngine {
            cfs: cfs
                .into_iter()
                .map(|spec| ColumnFamily {
                    spec,
                    runs: RwLock::new(Vec::new()),
                })
                .collect(),
            memtable: RwLock::new(Arc::new(SkipMap::new())),
            flush_trigger: FlushTrigger::new(flush_threshold),
            seq: AtomicUsize::new(0),
        })
    }

    pub fn cf_count(&self) -> usize {
        self.cfs.len()
    }

    fn check_cf(&self, cf: u32) -> Result<&ColumnFamily> {
        self.cfs
            .get(cf as usize)
            .ok_or_else(|| Error::Storage(format!("column family {cf} does not exist")))
    }

    /// Write one entry into a column family (through the shared memtable).
    pub fn put(&self, cf: u32, key: &[KeyValue], ts: i64, value: Arc<[u8]>) -> Result<()> {
        self.check_cf(cf)?;
        // analysis:allow(relaxed-ordering): uniquifier counter; only
        // uniqueness matters, not ordering against other memory.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u64;
        let composite = CompositeKey::new(cf, render_key(key), ts, seq);
        // Insert and record under the same read guard: a flush swaps the
        // memtable under the write lock, so every insert it moves out has
        // already been counted — `flush_done(old.len())` then subtracts an
        // exact amount and the counter can never drift from the memtable.
        let claimed = {
            let memtable = self.memtable.read();
            memtable.get_or_insert_with(composite, || value);
            self.flush_trigger.record()
        };
        if claimed {
            self.flush_inner(true);
        }
        Ok(())
    }

    /// Flush the shared memtable into per-CF sorted runs.
    pub fn flush(&self) {
        self.flush_inner(false);
    }

    fn flush_inner(&self, claimed: bool) {
        let old = {
            let mut memtable = self.memtable.write();
            if memtable.is_empty() {
                drop(memtable);
                self.flush_trigger.flush_done(0, claimed);
                return;
            }
            std::mem::replace(&mut *memtable, Arc::new(SkipMap::new()))
        };
        self.flush_trigger.flush_done(old.len(), claimed);
        // The skiplist iterates in composite-key order, so per-CF segments
        // come out already sorted.
        let mut per_cf: Vec<Vec<(CompositeKey, Arc<[u8]>)>> =
            (0..self.cfs.len()).map(|_| Vec::new()).collect();
        old.for_each(|k, v| per_cf[k.cf as usize].push((k.clone(), v.clone())));
        for (cf, run) in per_cf.into_iter().enumerate() {
            if !run.is_empty() {
                self.cfs[cf].runs.write().push(run);
            }
        }
    }

    /// Entries for `key` in `cf` with `lower_ts <= ts <= upper_ts`, newest
    /// first — merging memtable and all runs.
    pub fn range(
        &self,
        cf: u32,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
    ) -> Result<Vec<(i64, Arc<[u8]>)>> {
        self.check_cf(cf)?;
        let rendered = render_key(key);
        let mut hits: Vec<(CompositeKey, Arc<[u8]>)> = Vec::new();

        // Memtable: walk from (cf, key, upper_ts, 0) while matching.
        let from = CompositeKey::new(cf, rendered.clone(), upper_ts, 0);
        let memtable = self.memtable.read().clone();
        memtable.range_for_each(&from, |k, v| {
            if k.cf != cf || k.key != rendered || k.ts() < lower_ts {
                return false;
            }
            if k.ts() <= upper_ts {
                hits.push((k.clone(), v.clone()));
            }
            true
        });

        // Runs: binary-search each run for the key's slice.
        for run in self.cfs[cf as usize].runs.read().iter() {
            let start = run.partition_point(|(k, _)| {
                (k.cf, k.key.as_str(), k.neg_ts) < (cf, rendered.as_str(), -upper_ts)
            });
            for (k, v) in &run[start..] {
                if k.cf != cf || k.key != rendered || k.ts() < lower_ts {
                    break;
                }
                hits.push((k.clone(), v.clone()));
            }
        }

        // Merge newest-first across sources.
        hits.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(hits.into_iter().map(|(k, v)| (k.ts(), v)).collect())
    }

    /// The newest entry for `key` in `cf`.
    pub fn latest(&self, cf: u32, key: &[KeyValue]) -> Result<Option<(i64, Arc<[u8]>)>> {
        Ok(self.range(cf, key, i64::MIN, i64::MAX)?.into_iter().next())
    }

    /// Evict out-of-date entries from every CF per its TTL, relative to
    /// `now_ms`. Runs are rewritten without expired entries (compaction).
    /// Returns entries dropped.
    pub fn evict(&self, now_ms: i64) -> usize {
        // Flush first so the memtable participates in eviction.
        self.flush();
        let mut dropped = 0usize;
        for cf in &self.cfs {
            let Some(ttl) = cf.spec.eviction_ttl_ms else {
                continue;
            };
            let cutoff = now_ms - ttl;
            let mut runs = cf.runs.write();
            for run in runs.iter_mut() {
                let before = run.len();
                run.retain(|(k, _)| k.ts() >= cutoff);
                dropped += before - run.len();
            }
            runs.retain(|r| !r.is_empty());
        }
        dropped
    }

    /// Total entries across memtable and runs (diagnostics).
    pub fn entry_count(&self) -> usize {
        let mem = self.memtable.read().len();
        let runs: usize = self
            .cfs
            .iter()
            .map(|cf| cf.runs.read().iter().map(Vec::len).sum::<usize>())
            .sum();
        mem + runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(v: u8) -> Arc<[u8]> {
        Arc::from(vec![v].into_boxed_slice())
    }

    fn key(k: i64) -> Vec<KeyValue> {
        vec![KeyValue::Int(k)]
    }

    fn engine(threshold: usize) -> DiskEngine {
        DiskEngine::new(
            vec![
                ColumnFamilySpec {
                    name: "by_user".into(),
                    eviction_ttl_ms: Some(1_000),
                },
                ColumnFamilySpec {
                    name: "by_item".into(),
                    eviction_ttl_ms: None,
                },
            ],
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn put_range_through_memtable() {
        let e = engine(1_000);
        for ts in [10, 30, 20] {
            e.put(0, &key(1), ts, val(ts as u8)).unwrap();
        }
        e.put(0, &key(2), 15, val(99)).unwrap();
        let hits = e.range(0, &key(1), 15, 30).unwrap();
        assert_eq!(
            hits.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
            vec![30, 20]
        );
    }

    #[test]
    fn flush_moves_data_to_runs_and_queries_merge() {
        let e = engine(4); // flush every 4 entries
        for ts in 0..10 {
            e.put(0, &key(1), ts, val(ts as u8)).unwrap();
        }
        assert!(e.entry_count() == 10);
        let hits = e.range(0, &key(1), 0, 100).unwrap();
        assert_eq!(hits.len(), 10);
        let tss: Vec<i64> = hits.iter().map(|(ts, _)| *ts).collect();
        let mut expected: Vec<i64> = (0..10).rev().collect();
        assert_eq!(tss, std::mem::take(&mut expected));
    }

    #[test]
    fn column_families_are_isolated() {
        let e = engine(1_000);
        e.put(0, &key(1), 10, val(1)).unwrap();
        e.put(1, &key(1), 20, val(2)).unwrap();
        assert_eq!(e.range(0, &key(1), 0, 100).unwrap().len(), 1);
        assert_eq!(e.range(1, &key(1), 0, 100).unwrap().len(), 1);
        assert_eq!(e.latest(1, &key(1)).unwrap().unwrap().0, 20);
        assert!(e.put(7, &key(1), 0, val(0)).is_err());
    }

    #[test]
    fn eviction_respects_per_cf_ttl() {
        let e = engine(2);
        for ts in [100, 200, 300] {
            e.put(0, &key(1), ts, val(0)).unwrap(); // ttl 1000ms
            e.put(1, &key(1), ts, val(0)).unwrap(); // no eviction
        }
        let dropped = e.evict(1_250); // cutoff for cf0: 250
        assert_eq!(dropped, 2, "ts=100,200 in cf0 expire");
        assert_eq!(e.range(0, &key(1), 0, 10_000).unwrap().len(), 1);
        assert_eq!(e.range(1, &key(1), 0, 10_000).unwrap().len(), 3);
    }

    #[test]
    fn composite_key_orders_newest_first() {
        let a = CompositeKey::new(0, "k".into(), 100, 0);
        let b = CompositeKey::new(0, "k".into(), 50, 1);
        assert!(a < b, "higher ts sorts first");
        let c = CompositeKey::new(0, "a".into(), 1, 0);
        let d = CompositeKey::new(0, "b".into(), 100, 0);
        assert!(c < d, "grouped by key before ts");
        assert_eq!(a.ts(), 100);
    }

    /// Regression for the flush-trigger check-then-act race: many writers
    /// hammering a tiny threshold must neither lose entries nor leave the
    /// trigger counter out of sync with the memtable. Before the
    /// `FlushTrigger` claim, concurrent threshold crossings double-flushed
    /// and the unconditional reset lost counter updates, leaving `pending`
    /// drifting away from the real memtable size (the schedule explorer
    /// pins the exact interleaving; this is the coarse std-thread version).
    #[test]
    #[cfg_attr(miri, ignore = "threaded stress test; too slow under miri")]
    fn concurrent_puts_conserve_entries_across_flushes() {
        let e = Arc::new(engine(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        e.put(0, &key(t * 1_000 + i), i, val((i % 251) as u8))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(e.entry_count(), 4 * 500, "no entry lost or duplicated");
        // After a final explicit flush the memtable is empty and the
        // trigger counter must agree (no lost decrements left behind).
        e.flush();
        assert_eq!(e.memtable.read().len(), 0);
        assert_eq!(
            e.flush_trigger.pending(),
            0,
            "counter out of sync with memtable"
        );
        assert_eq!(e.entry_count(), 4 * 500);
    }

    #[test]
    fn flush_trigger_claims_once_per_crossing() {
        let t = FlushTrigger::new(3);
        assert!(!t.record());
        assert!(!t.record());
        assert!(t.record(), "third record crosses the threshold");
        assert!(!t.record(), "claim outstanding: no second claimer");
        t.flush_done(4, true);
        assert_eq!(t.pending(), 0);
        for _ in 0..2 {
            assert!(!t.record());
        }
        assert!(t.record(), "trigger re-arms after flush_done");
        t.flush_done(3, true);
    }

    #[test]
    fn multi_key_rendering_distinguishes_keys() {
        let k1 = render_key(&[KeyValue::Str("a".into()), KeyValue::Int(1)]);
        let k2 = render_key(&[KeyValue::Str("a1".into())]);
        assert_ne!(k1, k2);
    }
}
