//! Epoch-based memory reclamation for the lock-free skiplists.
//!
//! This is an in-repo implementation of the `crossbeam-epoch` API surface
//! the storage crate relies on (the build environment is offline, so the
//! dependency cannot be fetched). The algorithm is the classic three-epoch
//! scheme:
//!
//! * a global epoch counter advances only when every *pinned* thread has
//!   observed the current epoch;
//! * a thread reads shared pointers only while pinned ([`pin`] /
//!   [`Guard`]), which publishes the epoch it entered under;
//! * memory unlinked from a structure is not freed but *deferred*
//!   ([`Guard::defer_destroy`]) stamped with the epoch at unlink time; it
//!   is reclaimed once the global epoch has advanced **two** steps past
//!   that stamp — by then every thread that could have held a reference
//!   has unpinned.
//!
//! Link pointers ([`Atomic`]) are stored in
//! [`crate::sync::atomic::AtomicUsize`], so under the `model-check`
//! feature every load/store/CAS on a skiplist edge is a schedule point for
//! the interleaving explorer and every load is screened against the freed
//! node registry. The reclamation bookkeeping itself (participant epochs,
//! the garbage list) deliberately uses raw std atomics and mutexes: those
//! interleavings are not what the explorer is aimed at, and instrumenting
//! them would blow up the schedule space.
//!
//! Tagged pointers: the low `align_of::<T>() - 1` bits of an edge carry a
//! tag (the skiplists use bit 0 as the Harris-style RETIRED mark). `Shared`
//! exposes [`Shared::tag`] / [`Shared::with_tag`]; `as_raw`/`as_ref` always
//! strip the tag.

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sync::atomic::{AtomicUsize, Ordering};

/// Participant epoch value meaning "not currently pinned".
const INACTIVE: usize = usize::MAX;

/// A full collection pass runs every this-many unpins per thread.
const COLLECT_EVERY: usize = 8;

// ---------------------------------------------------------------------------
// Global collector state.
// ---------------------------------------------------------------------------

struct Participant {
    /// Epoch this thread was pinned under, or [`INACTIVE`].
    epoch: StdAtomicUsize,
}

/// A deferred destruction: the type-erased drop of one unlinked node.
pub(crate) struct Deferred {
    /// Global epoch at the moment the node was unlinked.
    epoch: usize,
    /// Untagged address of the allocation (for the model's freed-node set).
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    addr: usize,
    data: *mut u8,
    // SAFETY contract of the stored fn: callable exactly once with the
    // `data` pointer above, after reclamation is proven safe (see execute).
    dropper: unsafe fn(*mut u8),
}

// SAFETY: a Deferred is only ever executed once, after the epoch scheme has
// proven no thread can still reach the allocation; the raw pointer is not
// shared concurrently, merely stored until that point.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Untagged address of the allocation this will free.
    #[cfg(feature = "model-check")]
    pub(crate) fn addr(&self) -> usize {
        self.addr
    }

    /// Run the deferred drop for real.
    pub(crate) fn run_now(self) {
        // SAFETY: `data`/`dropper` were built in `defer_destroy` from a
        // `Box::into_raw` allocation of the matching type, and `self` is
        // consumed, so the drop runs exactly once.
        unsafe { (self.dropper)(self.data) }
    }

    /// Free the allocation, or hand it to the interleaving model's
    /// quarantine when a model run is active on this thread (the model
    /// records the address as freed and leaks the memory until the end of
    /// the run so addresses are never reused within a run — that makes the
    /// use-after-evict check exact).
    fn execute(self) {
        #[cfg(feature = "model-check")]
        let this = match crate::sync::model::try_quarantine(self) {
            Some(d) => d,
            None => return,
        };
        #[cfg(not(feature = "model-check"))]
        let this = self;
        this.run_now();
    }
}

struct Collector {
    epoch: StdAtomicUsize,
    registry: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Deferred>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: StdAtomicUsize::new(0),
        registry: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

/// Lock a mutex, ignoring poisoning (a panicking test thread must not wedge
/// reclamation for every other test in the process).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

struct Handle {
    participant: Arc<Participant>,
    /// Nested pin depth on this thread.
    depth: Cell<usize>,
    /// Unpin counter driving periodic collection.
    unpins: Cell<usize>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.participant.epoch.store(INACTIVE, StdOrdering::SeqCst);
        let mut reg = lock_ignore_poison(&collector().registry);
        reg.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static HANDLE: Handle = {
        let participant = Arc::new(Participant { epoch: StdAtomicUsize::new(INACTIVE) });
        lock_ignore_poison(&collector().registry).push(participant.clone());
        Handle { participant, depth: Cell::new(0), unpins: Cell::new(0) }
    };
}

/// Try to advance the global epoch, then free garbage at least two epochs
/// old.
fn collect() {
    let c = collector();
    let observed = c.epoch.load(StdOrdering::SeqCst);
    let all_caught_up = lock_ignore_poison(&c.registry).iter().all(|p| {
        let e = p.epoch.load(StdOrdering::SeqCst);
        e == INACTIVE || e == observed
    });
    if all_caught_up {
        let _ = c.epoch.compare_exchange(
            observed,
            observed.wrapping_add(1),
            StdOrdering::SeqCst,
            StdOrdering::SeqCst,
        );
    }
    let now = c.epoch.load(StdOrdering::SeqCst);
    let ready: Vec<Deferred> = {
        let mut garbage = lock_ignore_poison(&c.garbage);
        let mut ready = Vec::new();
        let mut i = 0;
        while i < garbage.len() {
            if now.wrapping_sub(garbage[i].epoch) >= 2 {
                ready.push(garbage.swap_remove(i));
            } else {
                i += 1;
            }
        }
        ready
    };
    crate::metrics::epoch_reclaimed().add(ready.len() as u64);
    for d in ready {
        d.execute();
    }
}

/// Drive reclamation to quiescence: with no guard held anywhere, a few
/// collection passes advance the epoch far enough to free *all* deferred
/// garbage. Tests use this to assert that detached nodes really are
/// released (e.g. via `Weak` handles on their payloads).
pub fn force_collect() {
    for _ in 0..4 {
        collect();
    }
}

/// Number of deferred destructions not yet executed (diagnostics/tests).
pub fn pending_garbage() -> usize {
    lock_ignore_poison(&collector().garbage).len()
}

// ---------------------------------------------------------------------------
// Guard / pin.
// ---------------------------------------------------------------------------

/// Keeps the current thread pinned; shared pointers loaded through it stay
/// valid until the guard drops.
pub struct Guard {
    unprotected: bool,
    /// `Guard` is `!Send`/`!Sync`: pinning is a per-thread state.
    _not_send: PhantomData<*mut ()>,
}

/// Pin the current thread, publishing the epoch it entered under.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        let depth = h.depth.get();
        if depth == 0 {
            let c = collector();
            // Publish our epoch, then re-check: if the global epoch moved
            // between the load and the store we may have published a stale
            // value, which would let the collector advance past us. Re-run
            // until the published value is current. (Publishing a stale
            // epoch is conservative for *other* collectors — they simply
            // cannot advance — so the loop is safe at every step.)
            loop {
                let e = c.epoch.load(StdOrdering::SeqCst);
                h.participant.epoch.store(e, StdOrdering::SeqCst);
                fence(StdOrdering::SeqCst);
                if c.epoch.load(StdOrdering::SeqCst) == e {
                    break;
                }
            }
        }
        h.depth.set(depth + 1);
    });
    Guard {
        unprotected: false,
        _not_send: PhantomData,
    }
}

struct UnprotectedGuard(Guard);
// SAFETY: the unprotected guard carries no per-thread state (every method
// checks `unprotected` first); sharing the single static instance across
// threads is fine.
unsafe impl Sync for UnprotectedGuard {}

static UNPROTECTED: UnprotectedGuard = UnprotectedGuard(Guard {
    unprotected: true,
    _not_send: PhantomData,
});

/// A dummy guard for code that has exclusive access to a structure (e.g.
/// `Drop` with `&mut self`).
///
/// # Safety
///
/// The caller must guarantee no other thread can concurrently access the
/// data structures traversed with this guard; `defer_destroy` through it
/// frees immediately.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED.0
}

impl Guard {
    /// Defer destruction of the allocation behind `ptr` until no pinned
    /// thread can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// `ptr` must have been created from `Owned::new` (a `Box` allocation),
    /// must be unreachable for any thread that pins *after* this call, and
    /// must not be destroyed twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        if raw.is_null() {
            return;
        }
        if self.unprotected {
            // SAFETY: per this function's contract the pointer is a unique
            // Box allocation, and the unprotected guard's contract gives
            // the caller exclusive access — free immediately.
            drop(unsafe { Box::from_raw(raw) });
            return;
        }
        let c = collector();
        let deferred = Deferred {
            epoch: c.epoch.load(StdOrdering::SeqCst),
            addr: raw as usize,
            data: raw.cast(),
            dropper: drop_box::<T>,
        };
        lock_ignore_poison(&c.garbage).push(deferred);
    }
}

/// Type-erased dropper for a `Box<T>` allocation.
///
/// # Safety
///
/// `p` must be a pointer obtained from `Box::<T>::into_raw`, not yet freed.
unsafe fn drop_box<T>(p: *mut u8) {
    // SAFETY: guaranteed by this function's contract.
    drop(unsafe { Box::from_raw(p.cast::<T>()) });
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.unprotected {
            return;
        }
        // try_with: a guard dropped during thread-local teardown (no handle
        // left) has nothing to unpin.
        let _ = HANDLE.try_with(|h| {
            let depth = h.depth.get() - 1;
            h.depth.set(depth);
            if depth == 0 {
                h.participant.epoch.store(INACTIVE, StdOrdering::SeqCst);
                let n = h.unpins.get().wrapping_add(1);
                h.unpins.set(n);
                if n % COLLECT_EVERY == 0 {
                    collect();
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Pointer types.
// ---------------------------------------------------------------------------

/// Bits of the address usable as a tag for `T` (its alignment - 1).
fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

/// Either an [`Owned`] or a [`Shared`] — what a CAS can install.
pub trait Pointer<T> {
    /// Consume into the raw tagged word.
    fn into_usize(self) -> usize;
    /// Rebuild from a raw tagged word.
    ///
    /// # Safety
    ///
    /// `data` must come from `into_usize` of the same pointer kind, exactly
    /// once (ownership round-trip).
    unsafe fn from_usize(data: usize) -> Self;
}

/// An atomic tagged pointer to a heap node; the link type of the skiplists.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: Atomic hands out &T across threads (via Shared::as_ref) and
// transfers ownership of T between threads on reclamation, so both bounds
// are required; the word itself is accessed atomically.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: see the Send impl above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer with zero tag.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Load the current pointer; the result borrows the pin `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a shared pointer (used to wire a still-private node's edges
    /// before publication).
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.data, ord);
    }

    /// Compare-and-swap the edge from `current` to `new`. On success the
    /// installed pointer is returned as a [`Shared`]; on failure the error
    /// carries the observed value and gives `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.data, new_data, success, failure)
        {
            Ok(_) => Ok(Shared {
                data: new_data,
                _marker: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    data: observed,
                    _marker: PhantomData,
                },
                // SAFETY: `new_data` came from `new.into_usize()` above and
                // the failed CAS did not install it, so ownership round-trips
                // back to the caller exactly once.
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

/// Failed [`Atomic::compare_exchange`]: the observed pointer and the
/// not-installed new value.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// What the edge actually held.
    pub current: Shared<'g, T>,
    /// The value that was not installed, returned to the caller.
    pub new: P,
}

/// An owned heap node not yet published to other threads.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocate a node.
    pub fn new(value: T) -> Self {
        Owned {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `data` is a live Box allocation uniquely owned by self;
        // the tag bits (none are ever set on an Owned built by `new`) are
        // stripped before the dereference.
        unsafe { &*((self.data & !low_bits::<T>()) as *const T) }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref, plus &mut self gives exclusive access.
        unsafe { &mut *((self.data & !low_bits::<T>()) as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let raw = (self.data & !low_bits::<T>()) as *mut T;
        if !raw.is_null() {
            // SAFETY: an Owned that was consumed (CAS success path) was
            // `mem::forget`-ten in `into_usize`; reaching Drop means the
            // allocation is still uniquely ours.
            drop(unsafe { Box::from_raw(raw) });
        }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }

    // SAFETY: per the trait contract the word is an `into_usize` round-trip
    // of an `Owned`, so reconstructing unique ownership is sound.
    unsafe fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

/// A tagged pointer loaded while pinned; valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (zero tag).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the (untagged) pointer is null.
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *const T {
        (self.data & !low_bits::<T>()) as *const T
    }

    /// The tag carried in the low bits.
    pub fn tag(&self) -> usize {
        self.data & low_bits::<T>()
    }

    /// The same pointer with its tag replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        debug_assert!(tag <= low_bits::<T>(), "tag does not fit in alignment bits");
        Shared {
            data: (self.data & !low_bits::<T>()) | tag,
            _marker: PhantomData,
        }
    }

    /// Dereference to a node reference living as long as the pin.
    ///
    /// # Safety
    ///
    /// The pointer must be null or point to a node that is still reachable
    /// under the pin this `Shared` was loaded with (i.e. not yet reclaimed).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: guaranteed by this function's contract.
        unsafe { self.as_raw().as_ref() }
    }

    /// Take ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the node (no concurrent
    /// readers or writers) and the pointer must be non-null and not yet
    /// freed.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null");
        Owned {
            data: self.data & !low_bits::<T>(),
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }

    // SAFETY: per the trait contract the word round-trips a `Shared`; the
    // borrow it represents is re-scoped to the caller's guard lifetime.
    unsafe fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as RawUsize, Ordering as RawOrdering};

    #[test]
    fn owned_round_trip_and_tags() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::null();
        let shared = a.load(Ordering::Acquire, &guard);
        assert!(shared.is_null());
        assert_eq!(shared.tag(), 0);

        let owned = Owned::new(7u64);
        assert_eq!(*owned, 7);
        let installed = a
            .compare_exchange(
                Shared::null(),
                owned,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap_or_else(|_| panic!("CAS on fresh edge"));
        // SAFETY: just installed, guard still pinned.
        assert_eq!(unsafe { installed.as_ref() }, Some(&7));

        let tagged = installed.with_tag(1);
        assert_eq!(tagged.tag(), 1);
        assert_eq!(tagged.with_tag(0).as_raw(), installed.as_raw());

        // SAFETY: single-threaded test — exclusive access.
        drop(unsafe { installed.into_owned() });
    }

    #[test]
    fn failed_cas_returns_ownership() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::null();
        let first = Owned::new(1u64);
        a.compare_exchange(
            Shared::null(),
            first,
            Ordering::AcqRel,
            Ordering::Acquire,
            &guard,
        )
        .unwrap_or_else(|_| panic!("first CAS"));
        let second = Owned::new(2u64);
        let err = a
            .compare_exchange(
                Shared::null(),
                second,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .err()
            .expect("CAS against non-null must fail");
        // SAFETY: observed pointer is the live first node under our pin.
        assert_eq!(unsafe { err.current.as_ref() }, Some(&1));
        assert_eq!(*err.new, 2, "ownership of the new node came back");
        let live = a.load(Ordering::Acquire, &guard);
        // SAFETY: single-threaded test — exclusive access.
        drop(unsafe { live.into_owned() });
    }

    #[test]
    fn deferred_destruction_runs_after_epochs_advance() {
        struct NoteDrop(std::sync::Arc<RawUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, RawOrdering::SeqCst);
            }
        }

        let drops = std::sync::Arc::new(RawUsize::new(0));
        {
            let guard = pin();
            let a: Atomic<NoteDrop> = Atomic::null();
            a.compare_exchange(
                Shared::null(),
                Owned::new(NoteDrop(drops.clone())),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap_or_else(|_| panic!("CAS on fresh edge"));
            let node = a.load(Ordering::Acquire, &guard);
            // SAFETY: node was just unlinked conceptually; it is never
            // traversed again and destroyed exactly once.
            unsafe { guard.defer_destroy(node) };
            assert_eq!(
                drops.load(RawOrdering::SeqCst),
                0,
                "still pinned: not freed"
            );
        }
        force_collect();
        assert_eq!(drops.load(RawOrdering::SeqCst), 1, "freed after quiescence");
    }

    #[test]
    fn nested_pins_are_reentrant() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        let a: Atomic<u64> = Atomic::null();
        assert!(a.load(Ordering::Acquire, &g2).is_null());
    }
}
