//! Concurrency substrate for the lock-free storage structures.
//!
//! * [`atomic`] — the atomic integer types the skiplists and flush
//!   accounting are built on. In normal builds these are the std atomics,
//!   re-exported verbatim (zero cost). Under the `model-check` feature they
//!   are instrumented shims that turn every operation into a *schedule
//!   point* for the deterministic interleaving explorer, and check every
//!   load against the explorer's freed-node registry (use-after-evict
//!   detection).
//! * [`epoch`] — in-repo epoch-based memory reclamation with the
//!   `crossbeam-epoch` API surface the skiplists use (`Atomic`, `Owned`,
//!   `Shared`, `Guard`, `pin`, `unprotected`, tagged pointers,
//!   `defer_destroy`). The build environment has no network or vendored
//!   registry, so the dependency is reproduced here; link pointers go
//!   through [`atomic::AtomicUsize`] so the model checker sees them.
//! * [`model`] (feature `model-check` only) — a mini-loom: a cooperative
//!   scheduler that serializes real OS threads, choosing which thread runs
//!   at every schedule point from a seeded RNG. Exploring many seeds
//!   explores many distinct interleavings; each run is fully deterministic
//!   given its seed, so failures replay exactly.
//!
//! The `model-check` feature is only enabled by the schedule-exploration
//! test suite (`cargo test -p openmldb-storage --features model-check`);
//! default builds of the workspace never see the instrumented types, so
//! Cargo feature unification cannot pollute production binaries that link
//! this crate without the feature.

pub mod atomic;
pub mod epoch;
#[cfg(feature = "model-check")]
pub mod model;
