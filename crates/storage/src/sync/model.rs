//! Deterministic schedule-exploring stress harness (a mini-loom).
//!
//! [`explore`] runs a set of closures on real OS threads but serializes
//! them cooperatively: exactly one thread is runnable at a time, and at
//! every *schedule point* (each operation on the instrumented atomics of
//! [`crate::sync::atomic`], i.e. each touch of a skiplist link pointer or
//! shared counter) the scheduler picks the next thread to run from a
//! seeded splitmix64 RNG. A run is fully determined by its seed: the
//! sequence of chosen thread ids is the *trace*, returned to the caller so
//! test suites can count distinct interleavings and replay failures.
//!
//! Exploration is random rather than exhaustive (the schedule space of the
//! skiplist operations is far beyond enumeration), but thousands of seeded
//! runs cover thousands of distinct interleavings, and any failing seed
//! reproduces its schedule exactly.
//!
//! The harness also provides the **use-after-evict detector**: while a
//! model run is active, epoch reclamation does not actually free nodes —
//! [`try_quarantine`] records the node's address in a freed-set and leaks
//! the memory until the end of the run (so addresses are never reused
//! within a run). Every instrumented pointer load is screened against the
//! freed-set ([`check_loaded_pointer`]); following an edge into reclaimed
//! memory aborts the run with the offending trace instead of silently
//! reading garbage.
//!
//! Scheduled threads must not block on locks held by descheduled threads.
//! The structures explored here (the skiplists, the flush trigger) are
//! lock-free, and the epoch internals never hit a schedule point while
//! holding their internal mutexes, so the cooperative scheduler cannot
//! deadlock on them.

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::sync::epoch::Deferred;

/// Hard cap on schedule points per run; exceeding it means a livelock
/// (e.g. two threads endlessly failing CAS against each other under an
/// adversarial schedule that never lets either finish — impossible with a
/// fair RNG, so hitting the cap is a bug).
const STEP_LIMIT: usize = 1_000_000;

/// Thread id meaning "nobody is scheduled" (all threads finished).
const NOBODY: usize = usize::MAX;

struct Sched {
    runnable: Vec<bool>,
    current: usize,
    rng: u64,
    trace: Vec<u8>,
    steps: usize,
    /// Untagged addresses of nodes epoch reclamation has declared freed
    /// during this run (quarantined, not actually freed).
    freed: HashSet<usize>,
    /// The quarantined deferred drops, executed for real when the run ends.
    quarantine: Vec<Deferred>,
    /// First panic observed in a worker (message), replayed by `explore`.
    panic: Option<String>,
}

struct Model {
    state: Mutex<Sched>,
    cv: Condvar,
}

thread_local! {
    /// The model run this thread belongs to, if any.
    static CURRENT: RefCell<Option<(Arc<Model>, usize)>> = const { RefCell::new(None) };
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Pick the next thread among the runnable ones and record it in the trace.
fn choose_next(s: &mut Sched) {
    let alive: Vec<usize> = s
        .runnable
        .iter()
        .enumerate()
        .filter(|(_, r)| **r)
        .map(|(i, _)| i)
        .collect();
    if alive.is_empty() {
        s.current = NOBODY;
        return;
    }
    let r = splitmix64(&mut s.rng);
    let idx = ((r as u128 * alive.len() as u128) >> 64) as usize;
    s.current = alive[idx];
    s.trace.push(s.current as u8);
}

/// Called by the instrumented atomics before every operation. Outside a
/// model run this is a no-op.
pub fn schedule_point() {
    let Some((model, tid)) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let mut s = lock_ignore_poison(&model.state);
    s.steps += 1;
    if s.steps > STEP_LIMIT {
        s.panic
            .get_or_insert_with(|| "model run exceeded the step limit (livelock?)".into());
        panic!("model run exceeded the step limit (livelock?)");
    }
    choose_next(&mut s);
    if s.current != tid {
        model.cv.notify_all();
        while s.current != tid && s.runnable[tid] {
            s = model.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Called by the instrumented `AtomicUsize` after every load: if the value
/// (with tag bits stripped) is the address of a node the epoch scheme has
/// already declared freed, the structure leaked a live edge into reclaimed
/// memory — fail the run.
pub fn check_loaded_pointer(value: usize) {
    let Some((model, _)) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let addr = value & !0b111;
    if addr == 0 {
        return;
    }
    let mut s = lock_ignore_poison(&model.state);
    if s.freed.contains(&addr) {
        let trace = s.trace.clone();
        s.panic.get_or_insert_with(|| {
            format!("use-after-evict: loaded edge into freed node {addr:#x} (trace {trace:?})")
        });
        drop(s);
        panic!("use-after-evict: loaded edge into freed node {addr:#x}");
    }
}

/// Intercept a deferred drop while a model run is active on this thread:
/// record the address as freed and quarantine the memory until the end of
/// the run. Returns the deferred back when no model run is active (the
/// caller frees it normally).
pub(crate) fn try_quarantine(d: Deferred) -> Option<Deferred> {
    let Some((model, _)) = CURRENT.with(|c| c.borrow().clone()) else {
        return Some(d);
    };
    let mut s = lock_ignore_poison(&model.state);
    s.freed.insert(d.addr());
    s.quarantine.push(d);
    None
}

/// Run `threads` under the cooperative scheduler with the given seed.
/// Returns the schedule trace. Panics (after all workers have stopped) if
/// any worker panicked — including detector trips — embedding the seed so
/// the failure replays.
pub fn explore(seed: u64, threads: Vec<Box<dyn FnOnce() + Send + 'static>>) -> Vec<u8> {
    let n = threads.len();
    assert!(n >= 1 && n <= u8::MAX as usize, "1..=255 threads");
    let model = Arc::new(Model {
        state: Mutex::new(Sched {
            runnable: vec![true; n],
            current: 0,
            rng: seed ^ 0x6A09_E667_F3BC_C908,
            trace: Vec::new(),
            steps: 0,
            freed: HashSet::new(),
            quarantine: Vec::new(),
            panic: None,
        }),
        cv: Condvar::new(),
    });
    choose_next(&mut lock_ignore_poison(&model.state));

    let handles: Vec<_> = threads
        .into_iter()
        .enumerate()
        .map(|(tid, f)| {
            let model = model.clone();
            std::thread::spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((model.clone(), tid)));
                {
                    let mut s = lock_ignore_poison(&model.state);
                    while s.current != tid {
                        if s.current == NOBODY {
                            break; // every peer already died/finished
                        }
                        s = model.cv.wait(s).unwrap_or_else(|p| p.into_inner());
                    }
                }
                let result = catch_unwind(AssertUnwindSafe(f));
                CURRENT.with(|c| *c.borrow_mut() = None);
                let mut s = lock_ignore_poison(&model.state);
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "worker panicked".into());
                    s.panic.get_or_insert(msg);
                }
                s.runnable[tid] = false;
                choose_next(&mut s);
                model.cv.notify_all();
            })
        })
        .collect();

    for h in handles {
        let _ = h.join();
    }

    let (trace, quarantine, panic) = {
        let mut s = lock_ignore_poison(&model.state);
        (
            s.trace.clone(),
            std::mem::take(&mut s.quarantine),
            s.panic.take(),
        )
    };
    // Execute the quarantined frees for real now that no worker can touch
    // the nodes; clear the freed-set implicitly by dropping the model.
    for d in quarantine {
        d.run_now();
    }
    if let Some(msg) = panic {
        panic!("model run failed (seed {seed}): {msg}");
    }
    trace
}
