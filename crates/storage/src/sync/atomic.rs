//! Atomics for the lock-free storage structures.
//!
//! Default builds re-export the std atomics unchanged. With the
//! `model-check` feature each operation on [`AtomicUsize`] / [`AtomicU64`] /
//! [`AtomicBool`] becomes a schedule point for [`crate::sync::model`], and
//! `AtomicUsize` loads (the type skiplist link pointers are stored in) are
//! checked against the model's freed-node registry, so a traversal that
//! follows an edge into reclaimed memory fails the run immediately instead
//! of reading garbage.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

#[cfg(feature = "model-check")]
pub use instrumented::{AtomicBool, AtomicU64, AtomicUsize};

#[cfg(feature = "model-check")]
mod instrumented {
    use super::Ordering;
    use crate::sync::model;

    /// Instrumented [`std::sync::atomic::AtomicUsize`]; loads are screened
    /// for pointers into reclaimed nodes.
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        pub const fn new(v: usize) -> Self {
            AtomicUsize {
                inner: std::sync::atomic::AtomicUsize::new(v),
            }
        }

        pub fn load(&self, ord: Ordering) -> usize {
            model::schedule_point();
            let v = self.inner.load(ord);
            model::check_loaded_pointer(v);
            v
        }

        pub fn store(&self, v: usize, ord: Ordering) {
            model::schedule_point();
            self.inner.store(v, ord);
        }

        pub fn swap(&self, v: usize, ord: Ordering) -> usize {
            model::schedule_point();
            self.inner.swap(v, ord)
        }

        pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
            model::schedule_point();
            self.inner.fetch_add(v, ord)
        }

        pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
            model::schedule_point();
            self.inner.fetch_sub(v, ord)
        }

        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            failure: Ordering,
        ) -> Result<usize, usize> {
            model::schedule_point();
            let r = self.inner.compare_exchange(current, new, success, failure);
            if let Err(observed) = r {
                model::check_loaded_pointer(observed);
            }
            r
        }

        pub fn fetch_update<F: FnMut(usize) -> Option<usize>>(
            &self,
            set_order: Ordering,
            fetch_order: Ordering,
            f: F,
        ) -> Result<usize, usize> {
            model::schedule_point();
            self.inner.fetch_update(set_order, fetch_order, f)
        }
    }

    /// Instrumented [`std::sync::atomic::AtomicU64`].
    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        pub const fn new(v: u64) -> Self {
            AtomicU64 {
                inner: std::sync::atomic::AtomicU64::new(v),
            }
        }

        pub fn load(&self, ord: Ordering) -> u64 {
            model::schedule_point();
            self.inner.load(ord)
        }

        pub fn store(&self, v: u64, ord: Ordering) {
            model::schedule_point();
            self.inner.store(v, ord);
        }

        pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
            model::schedule_point();
            self.inner.fetch_add(v, ord)
        }
    }

    /// Instrumented [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, ord: Ordering) -> bool {
            model::schedule_point();
            self.inner.load(ord)
        }

        pub fn store(&self, v: bool, ord: Ordering) {
            model::schedule_point();
            self.inner.store(v, ord);
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            model::schedule_point();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}
