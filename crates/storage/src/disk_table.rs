//! Disk-backed table (paper Sections 7.3 and 8.1).
//!
//! When a table's estimated memory exceeds what is available — or a
//! 20–30 ms latency budget makes the ~80% hardware saving attractive — the
//! table is assigned to the disk engine instead of the in-memory skiplist.
//! [`DiskTable`] offers the same access paths as [`MemTable`]
//! (via the [`DataTable`] trait) on top of [`DiskEngine`]: one column family
//! per index, a shared skiplist memtable, composite `key+ts` ordering, and
//! time-based eviction.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use openmldb_types::{CompactCodec, Error, KeyValue, Result, Row, RowCodec, Schema};

use crate::binlog::Replicator;
use crate::disk::{ColumnFamilySpec, DiskEngine};
use crate::table::{IndexSpec, MemTable, Ttl};

/// Which storage engine backs a table (Section 8.1 placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    Memory,
    Disk,
}

/// The storage interface both execution engines read through — implemented
/// by the in-memory [`MemTable`] and the disk-backed [`DiskTable`], so a
/// deployment works unchanged whichever engine a table was assigned to
/// (Section 8.1's estimation-guided placement).
pub trait DataTable: Send + Sync {
    fn name(&self) -> &str;
    fn backend(&self) -> Backend;
    /// Memory isolation limit (Section 8.2); a no-op for disk tables whose
    /// working set is bounded by the shared memtable.
    fn set_max_memory_bytes(&self, limit: usize);
    fn schema(&self) -> &Schema;
    fn replicator(&self) -> &Arc<Replicator>;
    fn index_specs(&self) -> Vec<IndexSpec>;
    fn find_index(&self, key_cols: &[usize], ts_col: Option<usize>) -> Option<usize>;
    fn put(&self, row: &Row) -> Result<u64>;
    fn latest(&self, index_id: usize, key: &[KeyValue]) -> Result<Option<Row>>;
    fn latest_where(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: Option<i64>,
        pred: &mut dyn FnMut(&Row) -> bool,
    ) -> Result<Option<Row>>;
    fn range_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>>;
    fn latest_n_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>>;
    /// Seek-then-iterate window scan: stream encoded entries with
    /// `lower_ts <= ts <= upper_ts` to `visitor` newest first, stopping
    /// after `limit` entries (when given) or when the visitor returns
    /// `false`. The zero-materialization path under the streaming
    /// scan→aggregate pipeline; chaos/obs hooks fire as on the
    /// materializing scans.
    fn scan_window(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        limit: Option<usize>,
        visitor: &mut dyn FnMut(i64, &[u8]) -> bool,
    ) -> Result<()>;
    fn scan_all(&self, index_id: usize) -> Result<Vec<Row>>;
    fn gc(&self, now_ms: i64) -> usize;
    fn mem_used(&self) -> usize;
    fn row_count(&self) -> usize;
}

impl DataTable for MemTable {
    fn name(&self) -> &str {
        MemTable::name(self)
    }
    fn backend(&self) -> Backend {
        Backend::Memory
    }
    fn set_max_memory_bytes(&self, limit: usize) {
        MemTable::set_max_memory_bytes(self, limit)
    }
    fn schema(&self) -> &Schema {
        MemTable::schema(self)
    }
    fn replicator(&self) -> &Arc<Replicator> {
        MemTable::replicator(self)
    }
    fn index_specs(&self) -> Vec<IndexSpec> {
        MemTable::index_specs(self)
    }
    fn find_index(&self, key_cols: &[usize], ts_col: Option<usize>) -> Option<usize> {
        MemTable::find_index(self, key_cols, ts_col)
    }
    fn put(&self, row: &Row) -> Result<u64> {
        MemTable::put(self, row)
    }
    fn latest(&self, index_id: usize, key: &[KeyValue]) -> Result<Option<Row>> {
        MemTable::latest(self, index_id, key)
    }
    fn latest_where(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: Option<i64>,
        pred: &mut dyn FnMut(&Row) -> bool,
    ) -> Result<Option<Row>> {
        MemTable::latest_where(self, index_id, key, upper_ts, pred)
    }
    fn range_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        MemTable::range_projected(self, index_id, key, lower_ts, upper_ts, wanted)
    }
    fn latest_n_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        MemTable::latest_n_projected(self, index_id, key, upper_ts, limit, wanted)
    }
    fn scan_window(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        limit: Option<usize>,
        visitor: &mut dyn FnMut(i64, &[u8]) -> bool,
    ) -> Result<()> {
        MemTable::scan_window(self, index_id, key, lower_ts, upper_ts, limit, visitor)
    }
    fn scan_all(&self, index_id: usize) -> Result<Vec<Row>> {
        MemTable::scan_all(self, index_id)
    }
    fn gc(&self, now_ms: i64) -> usize {
        MemTable::gc(self, now_ms)
    }
    fn mem_used(&self) -> usize {
        MemTable::mem_used(self)
    }
    fn row_count(&self) -> usize {
        MemTable::row_count(self)
    }
}

/// A disk-engine-backed table with the MemTable access surface.
pub struct DiskTable {
    name: Arc<str>,
    schema: Schema,
    codec: CompactCodec,
    specs: Vec<IndexSpec>,
    engine: DiskEngine,
    replicator: Arc<Replicator>,
    rows: AtomicUsize,
    watermark_ms: AtomicI64,
}

impl DiskTable {
    /// Default memtable flush threshold (entries across all CFs).
    pub const DEFAULT_FLUSH_THRESHOLD: usize = 64 * 1024;

    pub fn new(name: impl Into<Arc<str>>, schema: Schema, indexes: Vec<IndexSpec>) -> Result<Self> {
        if indexes.is_empty() {
            return Err(Error::Storage("a table needs at least one index".into()));
        }
        let cfs = indexes
            .iter()
            .map(|spec| ColumnFamilySpec {
                name: spec.name.clone(),
                eviction_ttl_ms: match spec.ttl {
                    Ttl::AbsoluteMs(ms) => Some(ms),
                    Ttl::AbsOrLat { ms, .. } | Ttl::AbsAndLat { ms, .. } => Some(ms),
                    _ => None,
                },
            })
            .collect();
        Ok(DiskTable {
            name: name.into(),
            codec: CompactCodec::new(schema.clone()),
            schema,
            specs: indexes,
            engine: DiskEngine::new(cfs, Self::DEFAULT_FLUSH_THRESHOLD)?,
            replicator: Arc::new(Replicator::new()),
            rows: AtomicUsize::new(0),
            watermark_ms: AtomicI64::new(0),
        })
    }

    fn key_ts(&self, spec: &IndexSpec, row: &Row) -> (Vec<KeyValue>, i64) {
        let key = row.key_for(&spec.key_cols);
        let ts = match spec.ts_col {
            Some(c) => row.ts_at(c),
            // analysis:allow(relaxed-ordering): monotone watermark; no
            // other memory is published through it.
            None => self.watermark_ms.load(Ordering::Relaxed),
        };
        (key, ts)
    }
}

impl DataTable for DiskTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn backend(&self) -> Backend {
        Backend::Disk
    }

    fn set_max_memory_bytes(&self, _limit: usize) {
        // Disk tables keep only the bounded shared memtable in RAM.
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn replicator(&self) -> &Arc<Replicator> {
        &self.replicator
    }

    fn index_specs(&self) -> Vec<IndexSpec> {
        self.specs.clone()
    }

    fn find_index(&self, key_cols: &[usize], ts_col: Option<usize>) -> Option<usize> {
        self.specs
            .iter()
            .position(|i| i.key_cols == key_cols && (ts_col.is_none() || i.ts_col == ts_col))
            .or_else(|| self.specs.iter().position(|i| i.key_cols == key_cols))
    }

    fn put(&self, row: &Row) -> Result<u64> {
        self.schema.validate_row(row.values())?;
        let encoded: Arc<[u8]> = Arc::from(self.codec.encode(row)?.into_boxed_slice());
        let mut primary: Option<(Vec<KeyValue>, i64)> = None;
        for (cf, spec) in self.specs.iter().enumerate() {
            let (key, ts) = self.key_ts(spec, row);
            // analysis:allow(relaxed-ordering): monotone watermark.
            self.watermark_ms.fetch_max(ts, Ordering::Relaxed);
            if primary.is_none() {
                primary = Some((key.clone(), ts));
            }
            self.engine.put(cf as u32, &key, ts, encoded.clone())?;
        }
        // analysis:allow(relaxed-ordering): statistics counter.
        self.rows.fetch_add(1, Ordering::Relaxed);
        // analysis:allow(panic-path): DiskTable::new rejects empty index
        // lists, and the loop above visits every index.
        let (key, ts) = primary.expect("at least one index");
        Ok(self.replicator.append_entry(
            self.name.clone(),
            Arc::from(key.into_boxed_slice()),
            ts,
            encoded,
        ))
    }

    fn latest(&self, index_id: usize, key: &[KeyValue]) -> Result<Option<Row>> {
        crate::chaos_inject(openmldb_chaos::InjectionPoint::DiskRead)?;
        crate::metrics::note_seek();
        match self.engine.latest(index_id as u32, key)? {
            Some((_, data)) => Ok(Some(self.codec.decode(&data)?)),
            None => Ok(None),
        }
    }

    fn latest_where(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: Option<i64>,
        pred: &mut dyn FnMut(&Row) -> bool,
    ) -> Result<Option<Row>> {
        crate::chaos_inject(openmldb_chaos::InjectionPoint::DiskRead)?;
        crate::metrics::note_seek();
        let upper = upper_ts.unwrap_or(i64::MAX);
        for (_ts, data) in self.engine.range(index_id as u32, key, i64::MIN, upper)? {
            let row = self.codec.decode(&data)?;
            if pred(&row) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn range_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        crate::chaos_inject(openmldb_chaos::InjectionPoint::DiskRead)?;
        crate::metrics::note_seek();
        let hits = self
            .engine
            .range(index_id as u32, key, lower_ts, upper_ts)?;
        crate::metrics::note_scan(hits.len() as u64);
        hits.into_iter()
            .map(|(ts, data)| Ok((ts, self.codec.decode_projected(&data, wanted)?)))
            .collect()
    }

    fn latest_n_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        crate::chaos_inject(openmldb_chaos::InjectionPoint::DiskRead)?;
        crate::metrics::note_seek();
        let mut hits = self
            .engine
            .range(index_id as u32, key, i64::MIN, upper_ts)?;
        hits.truncate(limit);
        crate::metrics::note_scan(hits.len() as u64);
        hits.into_iter()
            .map(|(ts, data)| Ok((ts, self.codec.decode_projected(&data, wanted)?)))
            .collect()
    }

    fn scan_window(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        limit: Option<usize>,
        visitor: &mut dyn FnMut(i64, &[u8]) -> bool,
    ) -> Result<()> {
        crate::chaos_inject(openmldb_chaos::InjectionPoint::DiskRead)?;
        crate::metrics::note_seek();
        let mut hits = self
            .engine
            .range(index_id as u32, key, lower_ts, upper_ts)?;
        if let Some(l) = limit {
            hits.truncate(l);
        }
        let mut visited = 0u64;
        for (ts, data) in hits {
            visited += 1;
            if !visitor(ts, &data) {
                break;
            }
        }
        crate::metrics::note_scan(visited);
        Ok(())
    }

    fn scan_all(&self, index_id: usize) -> Result<Vec<Row>> {
        // Collect distinct keys via the binlog (the engine's iteration is
        // key-ordered per CF; replay gives us the key set cheaply).
        let mut keys: Vec<Vec<KeyValue>> = Vec::new();
        let spec = &self.specs[index_id];
        self.replicator.replay(0, |entry| {
            if let Ok(row) = self.codec.decode(&entry.data) {
                let key = row.key_for(&spec.key_cols);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        });
        let mut out = Vec::new();
        for key in keys {
            for (_ts, data) in self
                .engine
                .range(index_id as u32, &key, i64::MIN, i64::MAX)?
            {
                out.push(self.codec.decode(&data)?);
            }
        }
        Ok(out)
    }

    fn gc(&self, now_ms: i64) -> usize {
        self.engine.evict(now_ms)
    }

    fn mem_used(&self) -> usize {
        // Only the shared memtable is RAM; flushed runs count as disk.
        self.engine.entry_count().min(Self::DEFAULT_FLUSH_THRESHOLD) * 64
    }

    fn row_count(&self) -> usize {
        // analysis:allow(relaxed-ordering): statistics read.
        self.rows.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_types::{DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn table() -> DiskTable {
        DiskTable::new(
            "d",
            schema(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::AbsoluteMs(1_000_000),
            }],
        )
        .unwrap()
    }

    fn row(k: i64, v: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(k),
            Value::Double(v),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn same_access_surface_as_memtable() {
        let disk = table();
        let mem = MemTable::new(
            "m",
            schema(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap();
        for i in 0..200 {
            let r = row(i % 5, i as f64, i * 10);
            DataTable::put(&disk, &r).unwrap();
            DataTable::put(&mem, &r).unwrap();
        }
        let key = [KeyValue::Int(2)];
        let a = DataTable::range_projected(&disk, 0, &key, 300, 900, None).unwrap();
        let b = DataTable::range_projected(&mem, 0, &key, 300, 900, None).unwrap();
        assert_eq!(a, b, "disk and memory backends agree");
        assert_eq!(
            DataTable::latest(&disk, 0, &key).unwrap(),
            DataTable::latest(&mem, 0, &key).unwrap()
        );
        let an = DataTable::latest_n_projected(&disk, 0, &key, 1_200, 3, None).unwrap();
        let bn = DataTable::latest_n_projected(&mem, 0, &key, 1_200, 3, None).unwrap();
        assert_eq!(an, bn);
    }

    #[test]
    fn latest_where_scans_newest_first() {
        let t = table();
        for i in 0..10 {
            DataTable::put(&t, &row(1, i as f64, i * 10)).unwrap();
        }
        let mut pred = |r: &Row| r[1].as_f64().unwrap() < 4.0;
        let hit = DataTable::latest_where(&t, 0, &[KeyValue::Int(1)], None, &mut pred)
            .unwrap()
            .unwrap();
        assert_eq!(hit[1], Value::Double(3.0));
    }

    #[test]
    fn scan_all_covers_flushed_and_memtable_data() {
        let t = table();
        for i in 0..500 {
            DataTable::put(&t, &row(i % 3, i as f64, i)).unwrap();
        }
        let rows = DataTable::scan_all(&t, 0).unwrap();
        assert_eq!(rows.len(), 500);
        assert_eq!(DataTable::row_count(&t), 500);
    }

    #[test]
    fn gc_evicts_by_cf_ttl() {
        let t = DiskTable::new(
            "d",
            schema(),
            vec![IndexSpec {
                name: "i".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::AbsoluteMs(100),
            }],
        )
        .unwrap();
        for i in 0..10 {
            DataTable::put(&t, &row(1, 0.0, i * 50)).unwrap();
        }
        let dropped = DataTable::gc(&t, 1_000);
        assert!(dropped > 0);
        let left = DataTable::range_projected(&t, 0, &[KeyValue::Int(1)], 0, 10_000, None).unwrap();
        assert!(left.iter().all(|(ts, _)| *ts >= 900));
    }
}
