//! Durable write-ahead log behind the [`Replicator`](crate::Replicator)
//! (paper §5.1's binlog, made crash-safe).
//!
//! ## Record format
//!
//! Every record is length-prefixed and checksummed:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. The payload serializes one
//! [`LogEntry`]: `offset u64 · ts i64 · table (u16 len + bytes) ·
//! key (u16 count, tagged values) · data (u32 len + bytes)`. All integers
//! are little-endian.
//!
//! ## Segments and group commit
//!
//! Records append to segment files `seg-<first-offset>.wal`; a segment
//! rotates once it exceeds [`WalOptions::segment_bytes`] (always at a
//! record boundary, after an fsync). Appends are buffered by the OS;
//! [`Wal::sync`] flushes *all* pending appends with a single
//! `fdatasync` — the group-commit batch. The automatic policy syncs every
//! [`WalOptions::group_commit`] records; callers needing a hard durability
//! point (snapshots, clean shutdown) call `sync` explicitly.
//!
//! ## Torn-tail detection
//!
//! [`Wal::open`] scans all segments in offset order, validating length
//! bounds, CRC, and offset density. The first invalid record marks a torn
//! tail: the segment is truncated to its valid prefix and later segments
//! are deleted. This makes recovery a pure function of the durable bytes —
//! the property the seeded crash harness exercises at every byte offset.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use openmldb_chaos::InjectionPoint;
use openmldb_types::{Error, KeyValue, Result};

use crate::binlog::LogEntry;

/// Upper bound on one record's payload (corrupt length guard).
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Tuning knobs for the on-disk log.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Automatic group commit: fsync after this many buffered records.
    /// `0` syncs on every append.
    pub group_commit: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            group_commit: 32,
        }
    }
}

// ------------------------------------------------------------------ crc32 --

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum protecting every WAL and snapshot
/// record payload).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ----------------------------------------------------------------- framing --

/// Frame `payload` as `[len][crc][payload]`.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse one frame at `pos`; `Some((payload, next_pos))` only when the
/// length is in bounds, the buffer holds the whole record, and the CRC
/// matches — anything else is a torn or corrupt tail.
pub(crate) fn read_frame(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header = buf.get(pos..pos + 8)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let payload = buf.get(pos + 8..pos + 8 + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, pos + 8 + len as usize))
}

// ------------------------------------------------------- entry (de)coding --

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serialize a [`LogEntry`] into a WAL record payload.
pub fn encode_entry(e: &LogEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + e.table.len() + e.data.len());
    out.extend_from_slice(&e.offset.to_le_bytes());
    out.extend_from_slice(&e.ts.to_le_bytes());
    out.extend_from_slice(&(e.table.len() as u16).to_le_bytes());
    out.extend_from_slice(e.table.as_bytes());
    out.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
    for k in e.key.iter() {
        match k {
            KeyValue::Null => out.push(0),
            KeyValue::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            KeyValue::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            KeyValue::Bits(b) => {
                out.push(3);
                out.extend_from_slice(&b.to_le_bytes());
            }
            KeyValue::Str(s) => {
                out.push(4);
                put_bytes(&mut out, s.as_bytes());
            }
        }
    }
    put_bytes(&mut out, &e.data);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| Error::Storage("wal record payload truncated".into()))?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    fn str(&mut self, n: usize) -> Result<&'a str> {
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| Error::Storage("wal record holds invalid UTF-8".into()))
    }
}

/// Decode a payload produced by [`encode_entry`].
pub fn decode_entry(payload: &[u8]) -> Result<LogEntry> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let offset = c.u64()?;
    let ts = c.i64()?;
    let table_len = c.u16()? as usize;
    let table: Arc<str> = Arc::from(c.str(table_len)?);
    let key_count = c.u16()? as usize;
    let mut key = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        key.push(match c.u8()? {
            0 => KeyValue::Null,
            1 => KeyValue::Bool(c.u8()? != 0),
            2 => KeyValue::Int(c.i64()?),
            3 => KeyValue::Bits(c.u64()?),
            4 => {
                let n = c.u32()? as usize;
                KeyValue::Str(Arc::from(c.str(n)?))
            }
            tag => return Err(Error::Storage(format!("wal key tag {tag} unknown"))),
        });
    }
    let data_len = c.u32()? as usize;
    let data: Arc<[u8]> = Arc::from(c.take(data_len)?.to_vec().into_boxed_slice());
    Ok(LogEntry {
        offset,
        table,
        key: Arc::from(key.into_boxed_slice()),
        ts,
        data,
    })
}

// -------------------------------------------------------------- dir layout --

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Storage(format!("wal {context} {}: {e}", path.display()))
}

fn segment_path(dir: &Path, first_offset: u64) -> PathBuf {
    dir.join(format!("seg-{first_offset:020}.wal"))
}

/// Segment files in `dir`, sorted by first offset.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read dir", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(first) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((first, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(first, _)| *first);
    Ok(out)
}

/// One decoded record plus the cumulative byte length of the WAL up to and
/// including it (the crash harness's truncation coordinate system).
#[derive(Clone, Debug)]
pub struct WalRecord {
    pub entry: LogEntry,
    pub end_bytes: u64,
}

/// What a full scan of a WAL directory found.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    pub records: Vec<WalRecord>,
    /// Cumulative bytes of the valid prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn or corrupt tail).
    pub dropped_bytes: u64,
    /// True when a torn/corrupt tail was detected.
    pub torn_tail: bool,
}

struct SegmentScan {
    path: PathBuf,
    file_len: u64,
    valid_len: u64,
}

fn scan_dir(dir: &Path) -> Result<(WalScan, Vec<SegmentScan>)> {
    let mut scan = WalScan::default();
    let mut segments = Vec::new();
    let mut next_offset = 0u64;
    let mut poisoned = false;
    for (first_offset, path) in list_segments(dir)? {
        let bytes = fs::read(&path).map_err(|e| io_err("read segment", &path, e))?;
        let mut valid_len = 0u64;
        if poisoned || first_offset != next_offset {
            // A segment past a torn tail, or one that does not continue the
            // offset sequence, is unreachable history: drop it whole.
            poisoned = true;
            scan.dropped_bytes += bytes.len() as u64;
            segments.push(SegmentScan {
                path,
                file_len: bytes.len() as u64,
                valid_len: 0,
            });
            continue;
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some((payload, next_pos)) = read_frame(&bytes, pos) else {
                break;
            };
            let entry = match decode_entry(payload) {
                Ok(e) => e,
                Err(_) => break,
            };
            if entry.offset != next_offset {
                break;
            }
            pos = next_pos;
            next_offset += 1;
            valid_len = pos as u64;
            scan.records.push(WalRecord {
                entry,
                end_bytes: scan.valid_bytes + valid_len,
            });
        }
        if (valid_len as usize) < bytes.len() {
            poisoned = true;
            scan.dropped_bytes += bytes.len() as u64 - valid_len;
        }
        scan.valid_bytes += valid_len;
        segments.push(SegmentScan {
            path,
            file_len: bytes.len() as u64,
            valid_len,
        });
    }
    scan.torn_tail = scan.dropped_bytes > 0;
    Ok((scan, segments))
}

/// Non-mutating scan of a WAL directory: every valid record in offset
/// order, with byte boundaries. The digest oracle and the crash harness
/// both read the log through this.
pub fn read_dir(dir: &Path) -> Result<WalScan> {
    Ok(scan_dir(dir)?.0)
}

/// Total bytes currently in `dir`'s segment files (valid or not).
pub fn total_bytes(dir: &Path) -> Result<u64> {
    let mut total = 0u64;
    for (_, path) in list_segments(dir)? {
        total += fs::metadata(&path)
            .map_err(|e| io_err("stat segment", &path, e))?
            .len();
    }
    Ok(total)
}

/// Sever the WAL at `target_bytes` of its logical concatenation — the
/// process-model crash: bytes past the point are gone, possibly splitting
/// a record in half (a torn write). Files wholly past the point are
/// removed.
pub fn truncate_to(dir: &Path, target_bytes: u64) -> Result<()> {
    let mut remaining = target_bytes;
    for (_, path) in list_segments(dir)? {
        let len = fs::metadata(&path)
            .map_err(|e| io_err("stat segment", &path, e))?
            .len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        if remaining == 0 {
            fs::remove_file(&path).map_err(|e| io_err("remove segment", &path, e))?;
        } else {
            let f = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open segment", &path, e))?;
            f.set_len(remaining)
                .map_err(|e| io_err("truncate segment", &path, e))?;
            remaining = 0;
        }
    }
    Ok(())
}

// --------------------------------------------------------------------- Wal --

struct WalState {
    file: File,
    seg_path: PathBuf,
    seg_bytes: u64,
    /// Next offset the log expects to append.
    next_offset: u64,
    /// Logical bytes written across all segments.
    written_bytes: u64,
    /// Logical bytes covered by the last successful fsync.
    durable_bytes: u64,
    /// Offsets `[0, durable_offset)` are fsync-durable.
    durable_offset: u64,
    /// Records appended since the last successful sync.
    pending: u64,
}

/// The durable log: one per table, owned by the table's `Replicator`.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    state: Mutex<WalState>,
}

impl Wal {
    /// Open (or create) the WAL in `dir`: scan existing segments, truncate
    /// any torn tail, and position the append head after the last valid
    /// record. Returns the recovered entries alongside the handle.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<(Wal, WalScan)> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        let (scan, segments) = scan_dir(&dir)?;
        if scan.torn_tail {
            crate::metrics::wal_torn_tails().inc();
        }
        // Drop the torn tail: truncate the first partially-valid segment,
        // remove fully-invalid ones, so the on-disk state equals the
        // recovered state exactly.
        let mut last_valid: Option<(PathBuf, u64)> = None;
        for seg in &segments {
            if seg.valid_len == 0 {
                let _ = fs::remove_file(&seg.path);
                continue;
            }
            if seg.valid_len < seg.file_len {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&seg.path)
                    .map_err(|e| io_err("open segment", &seg.path, e))?;
                f.set_len(seg.valid_len)
                    .map_err(|e| io_err("truncate segment", &seg.path, e))?;
            }
            last_valid = Some((seg.path.clone(), seg.valid_len));
        }
        let next_offset = scan.records.len() as u64;
        let (seg_path, seg_bytes) = match last_valid {
            Some((path, len)) => (path, len),
            None => (segment_path(&dir, 0), 0),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(|e| io_err("open segment", &seg_path, e))?;
        let state = WalState {
            file,
            seg_path,
            seg_bytes,
            next_offset,
            written_bytes: scan.valid_bytes,
            durable_bytes: scan.valid_bytes,
            durable_offset: next_offset,
            pending: 0,
        };
        Ok((
            Wal {
                dir,
                opts,
                state: Mutex::new(state),
            },
            scan,
        ))
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Next offset the log expects (== number of records appended).
    pub fn next_offset(&self) -> u64 {
        self.state.lock().next_offset
    }

    /// Offsets `[0, durable_offset)` survived the last successful fsync.
    pub fn durable_offset(&self) -> u64 {
        self.state.lock().durable_offset
    }

    /// Logical bytes written (durable or still in the OS cache).
    pub fn written_bytes(&self) -> u64 {
        self.state.lock().written_bytes
    }

    /// Append one record. Offsets must arrive dense and in order (the
    /// replicator's log lock guarantees this). Group commit: the record is
    /// buffered by the OS and fsynced together with its batch.
    pub fn append(&self, entry: &LogEntry) -> Result<()> {
        let mut st = self.state.lock();
        if entry.offset != st.next_offset {
            return Err(Error::Storage(format!(
                "wal append out of order: got offset {}, expected {}",
                entry.offset, st.next_offset
            )));
        }
        if st.seg_bytes >= self.opts.segment_bytes {
            // Rotate at a record boundary: seal the current segment with an
            // fsync so a crash cannot tear across segment files.
            Self::sync_locked(&mut st)?;
            let path = segment_path(&self.dir, entry.offset);
            st.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open segment", &path, e))?;
            st.seg_path = path;
            st.seg_bytes = 0;
        }
        let record = frame(&encode_entry(entry));
        st.file
            .write_all(&record)
            .map_err(|e| io_err("append", &self.dir, e))?;
        st.seg_bytes += record.len() as u64;
        st.written_bytes += record.len() as u64;
        st.next_offset += 1;
        st.pending += 1;
        crate::metrics::wal_appends().inc();
        crate::metrics::wal_bytes().add(record.len() as u64);
        if st.pending >= self.opts.group_commit.max(1) {
            Self::sync_locked(&mut st)?;
        }
        Ok(())
    }

    /// Flush every pending append with one fsync (the group commit point).
    /// A [`WalFsync`](openmldb_chaos::InjectionPoint::WalFsync) kill models
    /// a crash window: the call returns cleanly but the durable watermark
    /// does not advance, so the crash harness treats the batch as lost.
    pub fn sync(&self) -> Result<()> {
        let mut st = self.state.lock();
        Self::sync_locked(&mut st)
    }

    fn sync_locked(st: &mut WalState) -> Result<()> {
        if st.pending == 0 && st.durable_bytes == st.written_bytes {
            return Ok(());
        }
        if openmldb_chaos::inject_kill(InjectionPoint::WalFsync) {
            crate::metrics::faults_injected().inc();
            return Ok(());
        }
        st.file
            .sync_data()
            .map_err(|e| io_err("fsync", &st.seg_path, e))?;
        st.durable_bytes = st.written_bytes;
        st.durable_offset = st.next_offset;
        st.pending = 0;
        crate::metrics::wal_fsyncs().inc();
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a real crash is exactly
        // the case where this never runs.
        let mut st = self.state.lock();
        let _ = Self::sync_locked(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("openmldb_wal_{tag}_{}_{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(offset: u64) -> LogEntry {
        LogEntry {
            offset,
            table: "t".into(),
            key: Arc::from(
                vec![KeyValue::Int(offset as i64), KeyValue::Str("k".into())].into_boxed_slice(),
            ),
            ts: offset as i64 * 10,
            data: Arc::from(vec![offset as u8; 16].into_boxed_slice()),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn entry_roundtrips_through_codec() {
        let e = entry(7);
        let decoded = decode_entry(&encode_entry(&e)).unwrap();
        assert_eq!(decoded.offset, e.offset);
        assert_eq!(decoded.table, e.table);
        assert_eq!(decoded.key, e.key);
        assert_eq!(decoded.ts, e.ts);
        assert_eq!(decoded.data, e.data);
    }

    #[test]
    fn append_reopen_recovers_everything() {
        let dir = tmp_dir("roundtrip");
        {
            let (wal, scan) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(scan.records.is_empty());
            for i in 0..100 {
                wal.append(&entry(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, scan) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(scan.records.len(), 100);
        assert!(!scan.torn_tail);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.entry.offset, i as u64);
        }
        assert_eq!(wal.next_offset(), 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_survive_reopen() {
        let dir = tmp_dir("rotate");
        let opts = WalOptions {
            segment_bytes: 256,
            group_commit: 8,
        };
        {
            let (wal, _) = Wal::open(&dir, opts).unwrap();
            for i in 0..64 {
                wal.append(&entry(i)).unwrap();
            }
        }
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "256-byte segments must rotate"
        );
        let (_, scan) = Wal::open(&dir, opts).unwrap();
        assert_eq!(scan.records.len(), 64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_dropped_at_every_byte() {
        let dir = tmp_dir("torn");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..10 {
                wal.append(&entry(i)).unwrap();
            }
        }
        let full = read_dir(&dir).unwrap();
        assert_eq!(full.records.len(), 10);
        let boundaries: Vec<u64> = full.records.iter().map(|r| r.end_bytes).collect();
        for cut in 0..=full.valid_bytes {
            let scratch = tmp_dir("torn_cut");
            fs::create_dir_all(&scratch).unwrap();
            for (_, p) in list_segments(&dir).unwrap() {
                fs::copy(&p, scratch.join(p.file_name().unwrap())).unwrap();
            }
            truncate_to(&scratch, cut).unwrap();
            let scan = read_dir(&scratch).unwrap();
            let expected = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(
                scan.records.len(),
                expected,
                "cut at byte {cut}: exactly the fully-contained records survive"
            );
            assert_eq!(scan.torn_tail, cut != 0 && !boundaries.contains(&cut));
            // Reopen truncates the tail and appends continue cleanly.
            let (wal, reopened) = Wal::open(&scratch, WalOptions::default()).unwrap();
            assert_eq!(reopened.records.len(), expected);
            wal.append(&entry(expected as u64)).unwrap();
            wal.sync().unwrap();
            drop(wal);
            assert_eq!(read_dir(&scratch).unwrap().records.len(), expected + 1);
            let _ = fs::remove_dir_all(&scratch);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_byte_drops_the_suffix() {
        let dir = tmp_dir("corrupt");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..10 {
                wal.append(&entry(i)).unwrap();
            }
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let scan = read_dir(&dir).unwrap();
        assert!(scan.torn_tail);
        assert!(scan.records.len() < 10, "suffix after corruption dropped");
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.entry.offset, i as u64, "prefix intact");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tmp_dir("group");
        let opts = WalOptions {
            segment_bytes: 1 << 20,
            group_commit: 16,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..8 {
            wal.append(&entry(i)).unwrap();
        }
        assert_eq!(
            wal.durable_offset(),
            0,
            "batch below threshold: no fsync yet"
        );
        for i in 8..40 {
            wal.append(&entry(i)).unwrap();
        }
        assert!(
            wal.durable_offset() >= 17,
            "threshold crossed: batch synced"
        );
        wal.sync().unwrap();
        assert_eq!(wal.durable_offset(), 40, "explicit sync drains the batch");
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let dir = tmp_dir("order");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&entry(0)).unwrap();
        assert!(wal.append(&entry(5)).is_err());
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }
}
