//! Per-table snapshots of the compact row encoding (paper §5.1: tablets
//! recover from "snapshot + binlog suffix").
//!
//! A snapshot file holds the encoded payloads of the binlog prefix
//! `[0, covered_offset)` in offset order:
//!
//! ```text
//! magic "OMSNAP1\n"
//! frame(header: covered_offset u64 · row_count u64)
//! row_count × frame(compact row bytes)
//! frame("COMMIT")
//! ```
//!
//! where `frame` is the WAL's `[len][crc32][payload]` framing. Publication
//! is atomic: the file is fully written and fsynced under a `.tmp` name,
//! then renamed into `<table>-<covered_offset>.snap`. A crash mid-write
//! (modelled by the [`SnapshotWrite`](openmldb_chaos::InjectionPoint::SnapshotWrite)
//! kill point) leaves only a `.tmp` orphan that recovery ignores; a torn
//! `.snap` (severed after rename by the byte-level crash harness) fails
//! validation — missing commit frame, short row count, or CRC mismatch —
//! and recovery falls back to the next older snapshot, or to a full WAL
//! replay.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use openmldb_chaos::InjectionPoint;
use openmldb_types::{Error, Result};

use crate::wal::{frame, read_frame};

const MAGIC: &[u8; 8] = b"OMSNAP1\n";
const COMMIT: &[u8] = b"COMMIT";

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Storage(format!("snapshot {context} {}: {e}", path.display()))
}

fn snap_path(dir: &Path, table: &str, covered: u64) -> PathBuf {
    dir.join(format!("{table}-{covered:020}.snap"))
}

/// A validated snapshot: the binlog prefix it covers and the encoded rows.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub covered_offset: u64,
    pub rows: Vec<Arc<[u8]>>,
}

/// Write a snapshot covering binlog offsets `[0, covered_offset)` and
/// atomically publish it. `rows` must be the encoded payloads of exactly
/// that prefix, in offset order.
///
/// A `SnapshotWrite` kill aborts after a partial `.tmp` write — the
/// mid-snapshot crash model — returning a transient error; no `.snap`
/// appears and older snapshots stay untouched.
pub fn write(dir: &Path, table: &str, covered_offset: u64, rows: &[Arc<[u8]>]) -> Result<PathBuf> {
    fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
    let final_path = snap_path(dir, table, covered_offset);
    let tmp_path = final_path.with_extension("snap.tmp");
    let kill = openmldb_chaos::inject_kill(InjectionPoint::SnapshotWrite);

    let mut buf = Vec::with_capacity(64 + rows.iter().map(|r| r.len() + 8).sum::<usize>());
    buf.extend_from_slice(MAGIC);
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&covered_offset.to_le_bytes());
    header.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    buf.extend_from_slice(&frame(&header));
    for row in rows {
        buf.extend_from_slice(&frame(row));
    }
    buf.extend_from_slice(&frame(COMMIT));

    if kill {
        // Crash mid-write: leave a partial orphan, never rename.
        crate::metrics::faults_injected().inc();
        let partial = &buf[..buf.len() / 2];
        let mut f = File::create(&tmp_path).map_err(|e| io_err("create tmp", &tmp_path, e))?;
        let _ = f.write_all(partial);
        return Err(Error::Storage(format!(
            "transient fault injected at {}",
            InjectionPoint::SnapshotWrite.name()
        )));
    }

    let mut f = File::create(&tmp_path).map_err(|e| io_err("create tmp", &tmp_path, e))?;
    f.write_all(&buf)
        .map_err(|e| io_err("write tmp", &tmp_path, e))?;
    f.sync_data()
        .map_err(|e| io_err("fsync tmp", &tmp_path, e))?;
    drop(f);
    fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename", &final_path, e))?;
    crate::metrics::snapshots_written().inc();
    crate::metrics::snapshot_bytes().add(buf.len() as u64);
    Ok(final_path)
}

/// Parse and validate one snapshot file.
pub fn read(path: &Path) -> Result<Snapshot> {
    let bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Storage(format!(
            "snapshot {} has no magic header",
            path.display()
        )));
    }
    let invalid = |what: &str| Error::Storage(format!("snapshot {} {what}", path.display()));
    let (header, mut pos) =
        read_frame(&bytes, MAGIC.len()).ok_or_else(|| invalid("header frame invalid"))?;
    if header.len() != 16 {
        return Err(invalid("header frame malformed"));
    }
    let covered_offset = u64::from_le_bytes([
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
    ]);
    let row_count = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]) as usize;
    let mut rows = Vec::with_capacity(row_count);
    for _ in 0..row_count {
        let (payload, next) = read_frame(&bytes, pos).ok_or_else(|| invalid("row frame torn"))?;
        rows.push(Arc::from(payload.to_vec().into_boxed_slice()));
        pos = next;
    }
    let (commit, _) = read_frame(&bytes, pos).ok_or_else(|| invalid("commit frame missing"))?;
    if commit != COMMIT {
        return Err(invalid("commit frame malformed"));
    }
    Ok(Snapshot {
        covered_offset,
        rows,
    })
}

/// Published snapshots for `table` in `dir`, as `(covered_offset, path)`
/// sorted newest first. `.tmp` orphans are never listed.
pub fn list(dir: &Path, table: &str) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read dir", dir, e)),
    };
    let prefix = format!("{table}-");
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(covered) = name
            .strip_prefix(&prefix)
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((covered, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(covered, _)| std::cmp::Reverse(*covered));
    Ok(out)
}

/// The newest snapshot for `table` that passes validation, skipping (and
/// counting) torn or corrupt ones. `None` means recovery must replay the
/// WAL from offset zero.
pub fn latest_valid(dir: &Path, table: &str) -> Result<Option<Snapshot>> {
    for (_, path) in list(dir, table)? {
        match read(&path) {
            Ok(snap) => return Ok(Some(snap)),
            Err(_) => crate::metrics::snapshots_invalid().inc(),
        }
    }
    Ok(None)
}

/// Remove all but the newest `keep` published snapshots for `table`, plus
/// any `.tmp` orphans left by mid-write crashes.
pub fn prune(dir: &Path, table: &str, keep: usize) -> Result<()> {
    for (_, path) in list(dir, table)?.into_iter().skip(keep.max(1)) {
        let _ = fs::remove_file(path);
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&format!("{table}-")) && n.ends_with(".snap.tmp"))
            {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

/// Tear an existing snapshot file at `fraction` of its length (crash
/// harness helper: models a snapshot severed by the same event that tore
/// the WAL).
pub fn tear_for_test(path: &Path, fraction: f64) -> Result<()> {
    let len = fs::metadata(path)
        .map_err(|e| io_err("stat", path, e))?
        .len();
    let keep = ((len as f64) * fraction.clamp(0.0, 0.99)) as u64;
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("open", path, e))?;
    f.set_len(keep.max(1))
        .map_err(|e| io_err("truncate", path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("openmldb_snap_{tag}_{}_{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rows(n: usize) -> Vec<Arc<[u8]>> {
        (0..n)
            .map(|i| Arc::from(vec![i as u8; 8 + i % 5].into_boxed_slice()))
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmp_dir("rt");
        let rows = rows(20);
        let path = write(&dir, "t", 20, &rows).unwrap();
        let snap = read(&path).unwrap();
        assert_eq!(snap.covered_offset, 20);
        assert_eq!(snap.rows, rows);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_torn_files_and_tmp_orphans() {
        let dir = tmp_dir("torn");
        write(&dir, "t", 10, &rows(10)).unwrap();
        let newest = write(&dir, "t", 30, &rows(30)).unwrap();
        // Sever the newest snapshot at every prefix length: recovery must
        // fall back to the older one (or reject both near-empty tears).
        let full = fs::read(&newest).unwrap();
        for cut in [1usize, 8, full.len() / 2, full.len() - 1] {
            fs::write(&newest, &full[..cut]).unwrap();
            let snap = latest_valid(&dir, "t").unwrap().expect("older survives");
            assert_eq!(snap.covered_offset, 10, "cut at {cut} falls back");
        }
        // A tmp orphan is never considered.
        fs::write(dir.join("t-00000000000000000099.snap.tmp"), b"junk").unwrap();
        assert_eq!(latest_valid(&dir, "t").unwrap().unwrap().covered_offset, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_and_clears_orphans() {
        let dir = tmp_dir("prune");
        for covered in [5u64, 10, 15, 20] {
            write(&dir, "t", covered, &rows(covered as usize)).unwrap();
        }
        fs::write(dir.join("t-00000000000000000001.snap.tmp"), b"junk").unwrap();
        prune(&dir, "t", 2).unwrap();
        let left = list(&dir, "t").unwrap();
        assert_eq!(
            left.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![20, 15]
        );
        assert!(!dir.join("t-00000000000000000001.snap.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tables_with_shared_prefix_do_not_collide() {
        let dir = tmp_dir("prefix");
        write(&dir, "t", 5, &rows(5)).unwrap();
        write(&dir, "t2", 9, &rows(9)).unwrap();
        assert_eq!(latest_valid(&dir, "t").unwrap().unwrap().covered_offset, 5);
        assert_eq!(latest_valid(&dir, "t2").unwrap().unwrap().covered_offset, 9);
        let _ = fs::remove_dir_all(&dir);
    }
}
