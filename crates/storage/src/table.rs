//! In-memory table with multiple time-series indexes.
//!
//! Each table stores rows once in the compact encoding (Section 7.1) and
//! indexes them through one two-level skiplist per index (Section 7.2).
//! Encoded payloads are shared (`Arc`) across indexes — the `K` data-copy
//! factor of the Section 8.1 memory model is 1 here, with per-index cost
//! being node + key overhead only.
//!
//! TTL policies per index mirror the paper's table types: `latest`,
//! `absolute`, `absorlat`, `absandlat` (Section 8.1).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use openmldb_types::{CompactCodec, Error, KeyValue, Result, Row, RowCodec, Schema};

#[cfg(test)]
use openmldb_types::Value;

use crate::binlog::Replicator;
use crate::skiplist::{SkipMap, TimeList};

/// Per-index TTL policy (the paper's table types, Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ttl {
    /// Keep everything.
    Unlimited,
    /// Keep the newest `n` rows per key.
    Latest(u64),
    /// Keep rows younger than `ms`.
    AbsoluteMs(i64),
    /// Expire when *both* bounds are violated.
    AbsAndLat { ms: i64, latest: u64 },
    /// Expire when *either* bound is violated.
    AbsOrLat { ms: i64, latest: u64 },
}

/// Index definition: key columns, optional ordering (timestamp) column, TTL.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    pub name: String,
    pub key_cols: Vec<usize>,
    pub ts_col: Option<usize>,
    pub ttl: Ttl,
}

/// Estimated fixed overhead per skiplist entry (node + pointers + Arc).
pub const NODE_OVERHEAD: usize = 48;
/// Estimated fixed overhead per unique key (key node + forward pointers),
/// aligned with the `+156` constant of the paper's memory model.
pub const KEY_OVERHEAD: usize = 156;

struct Index {
    spec: IndexSpec,
    map: SkipMap<Vec<KeyValue>, TimeList>,
    entries: AtomicUsize,
    key_count: AtomicUsize,
    key_bytes: AtomicUsize,
}

impl Index {
    fn truncate_args(&self, now_ms: i64) -> Option<(Option<i64>, Option<usize>, bool)> {
        match self.spec.ttl {
            Ttl::Unlimited => None,
            Ttl::Latest(n) => Some((None, Some(n as usize), false)),
            Ttl::AbsoluteMs(ms) => Some((Some(now_ms - ms), None, false)),
            Ttl::AbsOrLat { ms, latest } => Some((Some(now_ms - ms), Some(latest as usize), false)),
            Ttl::AbsAndLat { ms, latest } => Some((Some(now_ms - ms), Some(latest as usize), true)),
        }
    }
}

/// An in-memory, multi-index, TTL-managed table.
pub struct MemTable {
    name: Arc<str>,
    schema: Schema,
    codec: CompactCodec,
    indexes: Vec<Index>,
    replicator: Arc<Replicator>,
    rows: AtomicUsize,
    payload_bytes: AtomicUsize,
    /// 0 = unlimited. When estimated memory exceeds this, writes fail but
    /// reads continue (Section 8.2, memory resource isolation).
    max_memory_bytes: AtomicUsize,
    /// Most recent timestamp observed on any put (drives TTL "now").
    watermark_ms: AtomicI64,
    puts_rejected: AtomicU64,
}

impl MemTable {
    /// Create a table. At least one index is required; an index without a
    /// ts column orders entries by insertion (ts = watermark).
    pub fn new(name: impl Into<Arc<str>>, schema: Schema, indexes: Vec<IndexSpec>) -> Result<Self> {
        if indexes.is_empty() {
            return Err(Error::Storage("a table needs at least one index".into()));
        }
        for idx in &indexes {
            for &c in &idx.key_cols {
                if c >= schema.len() {
                    return Err(Error::Storage(format!(
                        "index `{}` key column {c} out of range",
                        idx.name
                    )));
                }
            }
            if let Some(ts) = idx.ts_col {
                if ts >= schema.len() {
                    return Err(Error::Storage(format!(
                        "index `{}` ts column {ts} out of range",
                        idx.name
                    )));
                }
            }
        }
        Ok(MemTable {
            name: name.into(),
            codec: CompactCodec::new(schema.clone()),
            schema,
            indexes: indexes
                .into_iter()
                .map(|spec| Index {
                    spec,
                    map: SkipMap::new(),
                    entries: AtomicUsize::new(0),
                    key_count: AtomicUsize::new(0),
                    key_bytes: AtomicUsize::new(0),
                })
                .collect(),
            replicator: Arc::new(Replicator::new()),
            rows: AtomicUsize::new(0),
            payload_bytes: AtomicUsize::new(0),
            max_memory_bytes: AtomicUsize::new(0),
            watermark_ms: AtomicI64::new(0),
            puts_rejected: AtomicU64::new(0),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn replicator(&self) -> &Arc<Replicator> {
        &self.replicator
    }

    pub fn index_specs(&self) -> Vec<IndexSpec> {
        self.indexes.iter().map(|i| i.spec.clone()).collect()
    }

    /// Find the index whose key columns equal `key_cols` (order-sensitive).
    pub fn find_index(&self, key_cols: &[usize], ts_col: Option<usize>) -> Option<usize> {
        self.indexes
            .iter()
            .position(|i| {
                i.spec.key_cols == key_cols && (ts_col.is_none() || i.spec.ts_col == ts_col)
            })
            .or_else(|| {
                self.indexes
                    .iter()
                    .position(|i| i.spec.key_cols == key_cols)
            })
    }

    /// Configure the memory isolation limit (0 = unlimited).
    pub fn set_max_memory_bytes(&self, limit: usize) {
        self.max_memory_bytes.store(limit, Ordering::Release);
    }

    /// Insert one row into every index and append it to the binlog.
    /// Fails with [`Error::MemoryLimitExceeded`] when over the limit —
    /// reads keep working (Section 8.2).
    pub fn put(&self, row: &Row) -> Result<u64> {
        self.schema.validate_row(row.values())?;
        let limit = self.max_memory_bytes.load(Ordering::Acquire);
        if limit > 0 && self.mem_used() >= limit {
            // analysis:allow(relaxed-ordering): statistics counter.
            self.puts_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Error::MemoryLimitExceeded {
                used_bytes: self.mem_used() as u64,
                limit_bytes: limit as u64,
            });
        }
        let encoded: Arc<[u8]> = Arc::from(self.codec.encode(row)?.into_boxed_slice());
        self.payload_bytes
            // analysis:allow(relaxed-ordering): statistics counter.
            .fetch_add(encoded.len(), Ordering::Relaxed);
        // analysis:allow(relaxed-ordering): statistics counter.
        self.rows.fetch_add(1, Ordering::Relaxed);

        let mut primary_key: Option<Arc<[KeyValue]>> = None;
        let mut primary_ts = 0;
        for index in &self.indexes {
            let key = row.key_for(&index.spec.key_cols);
            let ts = match index.spec.ts_col {
                Some(c) => row.ts_at(c),
                // analysis:allow(relaxed-ordering): monotone watermark; no
                // other memory is published through it.
                None => self.watermark_ms.load(Ordering::Relaxed),
            };
            // analysis:allow(relaxed-ordering): monotone watermark.
            self.watermark_ms.fetch_max(ts, Ordering::Relaxed);
            if primary_key.is_none() {
                primary_key = Some(Arc::from(key.clone().into_boxed_slice()));
                primary_ts = ts;
            }
            let key_size: usize = key.iter().map(KeyValue::mem_size).sum();
            let (list, created) = index.map.get_or_insert_with(key, TimeList::new);
            if created {
                // analysis:allow(relaxed-ordering): statistics counter.
                index.key_count.fetch_add(1, Ordering::Relaxed);
                // analysis:allow(relaxed-ordering): statistics counter.
                index.key_bytes.fetch_add(key_size, Ordering::Relaxed);
            }
            list.insert(ts, encoded.clone());
            // analysis:allow(relaxed-ordering): statistics counter.
            index.entries.fetch_add(1, Ordering::Relaxed);
        }
        let offset = self.replicator.append_entry(
            self.name.clone(),
            // analysis:allow(panic-path): MemTable::new rejects empty index
            // lists, and the loop above visits every index.
            primary_key.expect("at least one index"),
            primary_ts,
            encoded,
        );
        Ok(offset)
    }

    fn index(&self, index_id: usize) -> Result<&Index> {
        self.indexes
            .get(index_id)
            .ok_or_else(|| Error::Storage(format!("index {index_id} does not exist")))
    }

    /// Decode an encoded payload with this table's codec.
    pub fn decode(&self, data: &[u8]) -> Result<Row> {
        self.codec.decode(data)
    }

    /// The newest row for `key` — the LAST JOIN accelerator (head read on
    /// the pre-ranked time list).
    pub fn latest(&self, index_id: usize, key: &[KeyValue]) -> Result<Option<Row>> {
        let index = self.index(index_id)?;
        crate::chaos_inject(openmldb_chaos::InjectionPoint::SkiplistSeek)?;
        crate::metrics::note_seek();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::StorageSeek,
            index_id as u32,
            0,
        );
        match index.map.get_by(key) {
            Some(list) => match list.latest() {
                Some((_, data)) => Ok(Some(self.decode(&data)?)),
                None => Ok(None),
            },
            None => Ok(None),
        }
    }

    /// Newest row for `key` whose ts ≤ `upper_ts`, satisfying `pred`.
    pub fn latest_where(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: Option<i64>,
        mut pred: impl FnMut(&Row) -> bool,
    ) -> Result<Option<Row>> {
        let index = self.index(index_id)?;
        crate::chaos_inject(openmldb_chaos::InjectionPoint::SkiplistSeek)?;
        crate::metrics::note_seek();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::StorageSeek,
            index_id as u32,
            0,
        );
        let Some(list) = index.map.get_by(key) else {
            return Ok(None);
        };
        let mut found = None;
        let mut err = None;
        list.scan(|ts, data| {
            if let Some(u) = upper_ts {
                if ts > u {
                    return true;
                }
            }
            match self.decode(data) {
                Ok(row) => {
                    if pred(&row) {
                        found = Some(row);
                        false
                    } else {
                        true
                    }
                }
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(found),
        }
    }

    /// Rows for `key` with `lower_ts <= ts <= upper_ts`, newest first
    /// (decoded).
    pub fn range(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
    ) -> Result<Vec<(i64, Row)>> {
        self.range_projected(index_id, key, lower_ts, upper_ts, None)
    }

    /// [`MemTable::range`] decoding only the columns marked in `wanted` —
    /// the Section 7.1 offset fast path used by window scans that touch a
    /// few columns of wide rows.
    pub fn range_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        let index = self.index(index_id)?;
        crate::chaos_inject(openmldb_chaos::InjectionPoint::SkiplistSeek)?;
        crate::metrics::note_seek();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::StorageSeek,
            index_id as u32,
            0,
        );
        let Some(list) = index.map.get_by(key) else {
            crate::metrics::note_scan(0);
            return Ok(Vec::new());
        };
        let out: Result<Vec<(i64, Row)>> = list
            .range(lower_ts, upper_ts)
            .into_iter()
            .map(|(ts, data)| Ok((ts, self.codec.decode_projected(&data, wanted)?)))
            .collect();
        if let Ok(rows) = &out {
            crate::metrics::note_scan(rows.len() as u64);
        }
        out
    }

    /// The newest `limit` rows for `key` with ts ≤ `upper_ts`, newest first.
    pub fn latest_n(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
    ) -> Result<Vec<(i64, Row)>> {
        self.latest_n_projected(index_id, key, upper_ts, limit, None)
    }

    /// [`MemTable::latest_n`] decoding only the columns marked in `wanted`.
    pub fn latest_n_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        let index = self.index(index_id)?;
        crate::chaos_inject(openmldb_chaos::InjectionPoint::SkiplistSeek)?;
        crate::metrics::note_seek();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::StorageSeek,
            index_id as u32,
            0,
        );
        let Some(list) = index.map.get_by(key) else {
            crate::metrics::note_scan(0);
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(limit);
        let mut err = None;
        list.scan(|ts, data| {
            if ts > upper_ts {
                return true;
            }
            if out.len() >= limit {
                return false;
            }
            match self.codec.decode_projected(data, wanted) {
                Ok(row) => {
                    out.push((ts, row));
                    true
                }
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        });
        crate::metrics::note_scan(out.len() as u64);
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    // HOT: online request scan — seek-then-visit, no materialized Vec<Row>.
    /// Seek `key` on `index_id` and stream encoded entries with
    /// `lower_ts <= ts <= upper_ts` to `visitor`, newest first, stopping
    /// after `limit` entries (when given) or when the visitor returns
    /// `false`. Yields `(ts, &[u8])` borrows — decoding is the caller's
    /// choice — while firing the same chaos/obs hooks as the
    /// materializing scans.
    pub fn scan_window(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        limit: Option<usize>,
        visitor: &mut dyn FnMut(i64, &[u8]) -> bool,
    ) -> Result<()> {
        let index = self.index(index_id)?;
        crate::chaos_inject(openmldb_chaos::InjectionPoint::SkiplistSeek)?;
        crate::metrics::note_seek();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::StorageSeek,
            index_id as u32,
            0,
        );
        let Some(list) = index.map.get_by(key) else {
            crate::metrics::note_scan(0);
            return Ok(());
        };
        let mut visited = 0u64;
        list.range_visit(lower_ts, upper_ts, |ts, data| {
            if limit.is_some_and(|l| visited >= l as u64) {
                return false;
            }
            visited += 1;
            visitor(ts, data)
        });
        crate::metrics::note_scan(visited);
        Ok(())
    }

    /// Full scan of one index (all keys, newest first per key) — used by the
    /// offline engine to snapshot a table.
    pub fn scan_all(&self, index_id: usize) -> Result<Vec<Row>> {
        let index = self.index(index_id)?;
        // analysis:allow(relaxed-ordering): capacity hint from a counter.
        let mut out = Vec::with_capacity(self.rows.load(Ordering::Relaxed));
        let mut err = None;
        index.map.for_each(|_k, list| {
            list.scan(|_ts, data| match self.decode(data) {
                Ok(row) => {
                    out.push(row);
                    true
                }
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
        });
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Run TTL garbage collection on every index, relative to `now_ms`.
    /// Returns the number of entries removed (batch deletion of the expired
    /// suffix, Section 7.2).
    pub fn gc(&self, now_ms: i64) -> usize {
        let mut removed = 0;
        for index in &self.indexes {
            let Some((cutoff, keep, both)) = index.truncate_args(now_ms) else {
                continue;
            };
            index.map.for_each(|_k, list| {
                let (dropped, _) = list.truncate(cutoff, keep, both);
                removed += dropped;
                // analysis:allow(relaxed-ordering): statistics counter.
                index.entries.fetch_sub(dropped, Ordering::Relaxed);
            });
        }
        crate::metrics::ttl_evictions().add(removed as u64);
        removed
    }

    /// Total rows inserted and still accounted (payload-level).
    pub fn row_count(&self) -> usize {
        // analysis:allow(relaxed-ordering): statistics read.
        self.rows.load(Ordering::Relaxed)
    }

    /// Writes rejected by memory isolation.
    pub fn rejected_writes(&self) -> u64 {
        // analysis:allow(relaxed-ordering): statistics read.
        self.puts_rejected.load(Ordering::Relaxed)
    }

    /// Estimated memory currently used: shared payload bytes once, plus
    /// per-index entry and key overheads (the measured analogue of the
    /// Section 8.1 model).
    pub fn mem_used(&self) -> usize {
        let mut total = 0usize;
        for index in &self.indexes {
            let mut entries = 0usize;
            index.map.for_each(|_k, list| entries += list.len());
            total += entries * NODE_OVERHEAD
                // analysis:allow(relaxed-ordering): statistics read.
                + index.key_count.load(Ordering::Relaxed) * KEY_OVERHEAD
                // analysis:allow(relaxed-ordering): statistics read.
                + index.key_bytes.load(Ordering::Relaxed);
        }
        // Payload bytes are shared across indexes: count the live bytes of
        // the first index (all indexes hold the same payloads).
        if let Some(first) = self.indexes.first() {
            let mut live = 0usize;
            first.map.for_each(|_k, list| live += list.bytes());
            total += live;
        }
        total
    }

    /// Watermark: the largest timestamp observed.
    pub fn watermark_ms(&self) -> i64 {
        // analysis:allow(relaxed-ordering): monotone watermark read.
        self.watermark_ms.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("category", DataType::String),
            ("price", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn table() -> MemTable {
        MemTable::new(
            "actions",
            schema(),
            vec![IndexSpec {
                name: "by_user".into(),
                key_cols: vec![0],
                ts_col: Some(3),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap()
    }

    fn row(user: i64, cat: &str, price: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(user),
            Value::string(cat),
            Value::Double(price),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn put_and_range_scan() {
        let t = table();
        for i in 0..10 {
            t.put(&row(1, "a", i as f64, i * 100)).unwrap();
        }
        t.put(&row(2, "b", 99.0, 500)).unwrap();
        let hits = t.range(0, &[KeyValue::Int(1)], 200, 600).unwrap();
        let tss: Vec<i64> = hits.iter().map(|(ts, _)| *ts).collect();
        assert_eq!(tss, vec![600, 500, 400, 300, 200]);
        assert_eq!(t.row_count(), 11);
    }

    #[test]
    fn latest_is_head_read() {
        let t = table();
        t.put(&row(1, "a", 1.0, 100)).unwrap();
        t.put(&row(1, "b", 2.0, 300)).unwrap();
        t.put(&row(1, "c", 3.0, 200)).unwrap();
        let latest = t.latest(0, &[KeyValue::Int(1)]).unwrap().unwrap();
        assert_eq!(latest[1], Value::string("b"), "ts=300 row is newest");
        assert!(t.latest(0, &[KeyValue::Int(42)]).unwrap().is_none());
    }

    #[test]
    fn latest_n_and_latest_where() {
        let t = table();
        for i in 0..5 {
            t.put(&row(1, "a", i as f64, i * 10)).unwrap();
        }
        let top2 = t.latest_n(0, &[KeyValue::Int(1)], 35, 2).unwrap();
        assert_eq!(
            top2.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
            vec![30, 20]
        );
        let found = t
            .latest_where(0, &[KeyValue::Int(1)], None, |r| {
                r[2].as_f64().unwrap() < 2.5
            })
            .unwrap()
            .unwrap();
        assert_eq!(found[2], Value::Double(2.0));
    }

    #[test]
    fn multi_index_routes_by_key() {
        let t = MemTable::new(
            "t",
            schema(),
            vec![
                IndexSpec {
                    name: "by_user".into(),
                    key_cols: vec![0],
                    ts_col: Some(3),
                    ttl: Ttl::Unlimited,
                },
                IndexSpec {
                    name: "by_cat".into(),
                    key_cols: vec![1],
                    ts_col: Some(3),
                    ttl: Ttl::Unlimited,
                },
            ],
        )
        .unwrap();
        t.put(&row(1, "x", 1.0, 10)).unwrap();
        t.put(&row(2, "x", 2.0, 20)).unwrap();
        let by_cat = t.range(1, &[KeyValue::Str("x".into())], 0, 100).unwrap();
        assert_eq!(by_cat.len(), 2);
        assert_eq!(t.find_index(&[1], Some(3)), Some(1));
        assert_eq!(t.find_index(&[0], None), Some(0));
        assert_eq!(t.find_index(&[2], None), None);
    }

    #[test]
    fn ttl_latest_and_absolute() {
        let t = MemTable::new(
            "t",
            schema(),
            vec![
                IndexSpec {
                    name: "lat".into(),
                    key_cols: vec![0],
                    ts_col: Some(3),
                    ttl: Ttl::Latest(2),
                },
                IndexSpec {
                    name: "abs".into(),
                    key_cols: vec![1],
                    ts_col: Some(3),
                    ttl: Ttl::AbsoluteMs(100),
                },
            ],
        )
        .unwrap();
        for i in 0..5 {
            t.put(&row(1, "c", i as f64, i * 50)).unwrap();
        }
        let removed = t.gc(260);
        assert!(removed > 0);
        // latest(2): only 2 newest rows per key remain on index 0.
        assert_eq!(t.range(0, &[KeyValue::Int(1)], 0, 1_000).unwrap().len(), 2);
        // absolute(100ms at now=260): ts >= 160 → ts in {200}.
        let abs = t.range(1, &[KeyValue::Str("c".into())], 0, 1_000).unwrap();
        assert_eq!(abs.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(), vec![200]);
    }

    #[test]
    fn ttl_absandlat_requires_both() {
        let t = MemTable::new(
            "t",
            schema(),
            vec![IndexSpec {
                name: "both".into(),
                key_cols: vec![0],
                ts_col: Some(3),
                ttl: Ttl::AbsAndLat { ms: 100, latest: 3 },
            }],
        )
        .unwrap();
        for i in 0..6 {
            t.put(&row(1, "c", 0.0, i * 50)).unwrap();
        }
        // now=350 → time cutoff 250; count keeps the 3 newest. AND policy:
        // expire only entries BOTH older than 250 AND beyond the 3 newest.
        t.gc(350);
        let left = t.range(0, &[KeyValue::Int(1)], 0, 10_000).unwrap();
        let tss: Vec<i64> = left.iter().map(|(ts, _)| *ts).collect();
        assert_eq!(tss, vec![250, 200, 150]);

        // Same data under the OR policy drops ts=200 and 150 as well once
        // either bound is violated... verified separately: 250 survives both.
        let t2 = MemTable::new(
            "t2",
            schema(),
            vec![IndexSpec {
                name: "either".into(),
                key_cols: vec![0],
                ts_col: Some(3),
                ttl: Ttl::AbsOrLat { ms: 100, latest: 2 },
            }],
        )
        .unwrap();
        for i in 0..6 {
            t2.put(&row(1, "c", 0.0, i * 50)).unwrap();
        }
        t2.gc(350);
        let left2 = t2.range(0, &[KeyValue::Int(1)], 0, 10_000).unwrap();
        // OR policy at now=350: cutoff 250 drops ts<250; keep-2 would allow
        // 250 and 200, but 200 violates the time bound → only 250 survives.
        assert_eq!(
            left2.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
            vec![250]
        );
    }

    #[test]
    fn memory_limit_rejects_writes_allows_reads() {
        let t = table();
        t.put(&row(1, "a", 1.0, 10)).unwrap();
        t.set_max_memory_bytes(1); // far below current usage
        let err = t.put(&row(1, "b", 2.0, 20)).unwrap_err();
        assert!(matches!(err, Error::MemoryLimitExceeded { .. }));
        assert_eq!(t.rejected_writes(), 1);
        // Reads still work.
        assert!(t.latest(0, &[KeyValue::Int(1)]).unwrap().is_some());
        // Raising the limit unblocks writes.
        t.set_max_memory_bytes(0);
        t.put(&row(1, "b", 2.0, 20)).unwrap();
    }

    #[test]
    fn mem_used_tracks_gc() {
        let t = MemTable::new(
            "t",
            schema(),
            vec![IndexSpec {
                name: "i".into(),
                key_cols: vec![0],
                ts_col: Some(3),
                ttl: Ttl::AbsoluteMs(10),
            }],
        )
        .unwrap();
        for i in 0..100 {
            t.put(&row(i % 5, "c", 0.0, i)).unwrap();
        }
        let before = t.mem_used();
        t.gc(1_000); // expire everything older than 990
        let after = t.mem_used();
        assert!(after < before, "gc must shrink usage: {before} -> {after}");
    }

    #[test]
    fn binlog_records_every_put() {
        let t = table();
        for i in 0..7 {
            t.put(&row(1, "a", 0.0, i)).unwrap();
        }
        assert_eq!(t.replicator().len(), 7);
        let mut n = 0;
        t.replicator().replay(0, |e| {
            assert_eq!(&*e.table, "actions");
            n += 1;
        });
        assert_eq!(n, 7);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let t = table();
        assert!(t.put(&Row::new(vec![Value::Int(1)])).is_err());
        assert!(MemTable::new("x", schema(), vec![]).is_err());
    }
}
