//! Binlog / replicator (paper Section 5.1, "Aggregator Update").
//!
//! Every write is appended to a binlog whose `binlog_offset` increases
//! monotonically — appends happen under the replicator lock, so no
//! concurrent `Put` can interleave a conflicting offset. Each append also
//! triggers *asynchronous* execution of subscribed update closures (the
//! pre-aggregation maintainers) on a background worker, decoupling them from
//! the data-insertion fast path. `replay` re-applies entries from an offset
//! for failure recovery.
//!
//! ## Delivery invariant
//!
//! Each listener owns a delivery cursor (`next_offset`) that only advances
//! after its closure ran: a subscriber's applied state is **always a
//! contiguous prefix of the log**, never a set with holes. A delivery the
//! fault injector kills ([`openmldb_chaos::InjectionPoint::BinlogDelivery`])
//! simply leaves the cursor behind; the gap is healed from the durable log
//! on the next delivery round or, at the latest, by [`Replicator::flush`].
//! Combined with offset-dense appends this gives exactly-once delivery even
//! under injected kills.
//!
//! ## Shutdown
//!
//! [`Replicator::shutdown`] stops the worker with a clean happens-before
//! edge: every append that raced *ahead* of the stop is delivered before
//! the worker exits; every append that arrived *after* is counted in
//! [`Replicator::undelivered`] — provably not acknowledged, but still
//! durable in the log for `replay`/`flush` recovery. No subscriber is ever
//! left half-applied. `undelivered` is computed from the listener cursors
//! themselves (log length minus the laggiest cursor), so once a heal —
//! `flush`, or a recovery replay into a fresh process — catches every
//! subscriber up, the count returns to zero instead of reporting phantom
//! entries forever.
//!
//! ## Durability
//!
//! The log itself is process memory; [`Replicator::attach_wal`] mirrors it
//! into a checksummed on-disk [`Wal`](crate::wal::Wal). The mirror write
//! happens inside the same critical section that assigns the offset, so
//! WAL order is exactly binlog order and the on-disk log is always a dense
//! prefix of the in-memory one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use openmldb_chaos::InjectionPoint;
use openmldb_types::{KeyValue, Result};

use crate::wal::Wal;

/// One binlog record: a row insertion into a table.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub offset: u64,
    pub table: Arc<str>,
    /// The primary index key of the inserted row.
    pub key: Arc<[KeyValue]>,
    pub ts: i64,
    /// Encoded row payload.
    pub data: Arc<[u8]>,
}

/// Closure invoked asynchronously for each appended entry.
pub type UpdateClosure = Arc<dyn Fn(&LogEntry) + Send + Sync>;

/// A subscriber plus its delivery cursor: the next offset it has not yet
/// applied. The cursor starts at the subscription boundary (asynchronous
/// delivery covers only entries appended *after* subscription; catch-up
/// replay covers the prefix) and only moves forward after the closure ran.
struct Listener {
    next_offset: Mutex<u64>,
    f: UpdateClosure,
}

impl Listener {
    /// Deliver log entries `[next_offset, upto)` in order, advancing the
    /// cursor after each successful application. An injected delivery kill
    /// drops the current attempt: with `retry_kills` the same entry is
    /// retried (flush-path healing must converge), without it the loop
    /// exits and the gap persists until the next round (worker path).
    fn deliver_up_to(&self, log: &Mutex<Vec<LogEntry>>, upto: u64, retry_kills: bool) {
        let mut next = self.next_offset.lock();
        while *next < upto {
            let entry = {
                let log = log.lock();
                match log.get(*next as usize) {
                    Some(e) => e.clone(),
                    None => break,
                }
            };
            if openmldb_chaos::inject_kill(InjectionPoint::BinlogDelivery) {
                crate::metrics::faults_injected().inc();
                if retry_kills {
                    continue;
                }
                break;
            }
            (self.f)(&entry);
            *next += 1;
        }
    }
}

enum WorkerMsg {
    Apply(u64),
    Stop,
}

/// Append-only replicated log with asynchronous subscriber execution.
pub struct Replicator {
    /// The log itself; the lock also serializes offset assignment. Shared
    /// with the worker thread so delivery (and gap healing) reads entries
    /// straight from the durable log.
    log: Arc<Mutex<Vec<LogEntry>>>,
    listeners: Arc<RwLock<Vec<Arc<Listener>>>>,
    tx: Sender<WorkerMsg>,
    /// Kept so post-shutdown drains can observe what the worker never saw.
    rx: Receiver<WorkerMsg>,
    worker: Mutex<Option<JoinHandle<()>>>,
    appended: AtomicU64,
    processed: Arc<(Mutex<u64>, Condvar)>,
    /// Appends that arrived after shutdown while no listener was registered:
    /// acknowledged to nobody, and with no cursor to witness the lag.
    disowned: AtomicU64,
    /// Optional durable mirror; written under the log lock so the on-disk
    /// record order equals the binlog offset order.
    wal: Mutex<Option<Arc<Wal>>>,
    /// Guards the append→send window against `shutdown`: appenders hold a
    /// read lock around the send, shutdown flips the flag under the write
    /// lock, so every pre-stop send is in the channel before `Stop`.
    stopped: RwLock<bool>,
}

impl Default for Replicator {
    fn default() -> Self {
        Self::new()
    }
}

impl Replicator {
    pub fn new() -> Self {
        let (tx, rx) = channel::unbounded::<WorkerMsg>();
        let log: Arc<Mutex<Vec<LogEntry>>> = Arc::default();
        let listeners: Arc<RwLock<Vec<Arc<Listener>>>> = Arc::default();
        let processed: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let worker = {
            let log = log.clone();
            let listeners = listeners.clone();
            let processed = processed.clone();
            let rx = rx.clone();
            std::thread::spawn(move || {
                while let Ok(WorkerMsg::Apply(offset)) = rx.recv() {
                    // Snapshot the listener set first, then deliver without
                    // holding the registry lock: delivery takes listener →
                    // log locks, subscription takes log → registry, and
                    // keeping the registry out of the delivery section
                    // breaks any cycle between the two orders.
                    // analysis:allow(lock-order): the registry read guard is a
                    // temporary dropped at this statement, before delivery.
                    let snapshot: Vec<Arc<Listener>> = listeners.read().iter().cloned().collect();
                    for l in snapshot {
                        l.deliver_up_to(&log, offset + 1, false);
                    }
                    let (lock, cv) = &*processed;
                    *lock.lock() += 1;
                    cv.notify_all();
                }
            })
        };
        Replicator {
            log,
            listeners,
            tx,
            rx,
            worker: Mutex::new(Some(worker)),
            appended: AtomicU64::new(0),
            processed,
            disowned: AtomicU64::new(0),
            wal: Mutex::new(None),
            stopped: RwLock::new(false),
        }
    }

    /// Append an entry; the assigned offset is returned. The entry is also
    /// queued for asynchronous listener execution (`update_aggr` closures).
    pub fn append_entry(
        &self,
        table: Arc<str>,
        key: Arc<[KeyValue]>,
        ts: i64,
        data: Arc<[u8]>,
    ) -> u64 {
        // Latency-only injection point: appends are infallible by contract
        // (the write is already accepted), so an injected error here is
        // deliberately discarded — plans should only arm latency.
        let _ = openmldb_chaos::inject(InjectionPoint::BinlogAppend);
        // Offset assignment and the append are one critical section —
        // the monotonic `binlog_offset` invariant of Section 5.1.
        let offset = {
            let mut log = self.log.lock();
            let offset = log.len() as u64;
            let entry = LogEntry {
                offset,
                table,
                key,
                ts,
                data,
            };
            if let Some(wal) = self.wal.lock().as_ref() {
                // Durable mirror under the same critical section that
                // assigned the offset: WAL order == binlog order. A write
                // failure is not surfaced here (the in-memory append is
                // already accepted); it shows up as a stalled durable
                // watermark at the next `sync_wal`.
                let _ = wal.append(&entry);
            }
            log.push(entry);
            offset
        };
        self.appended.fetch_add(1, Ordering::Release);
        let stopped = self.stopped.read();
        if *stopped {
            // The worker is gone: the entry is durable in the log but will
            // not be acknowledged to any listener until a flush/replay.
            if self.listeners.read().is_empty() {
                self.disowned.fetch_add(1, Ordering::Release);
            }
            crate::metrics::binlog_undelivered().inc();
            let (lock, cv) = &*self.processed;
            *lock.lock() += 1;
            cv.notify_all();
        } else {
            // Queue for asynchronous execution while holding the read lock:
            // `shutdown` cannot interleave its `Stop` before this send.
            let _ = self.tx.send(WorkerMsg::Apply(offset));
        }
        offset
    }

    /// Subscribe an update closure, invoked asynchronously for every entry
    /// appended *from now on*. Entries already in the log (even if still in
    /// the delivery queue) are not delivered.
    pub fn subscribe(&self, f: UpdateClosure) {
        // Hold the log lock so no offset is assigned while the boundary is
        // read — the subscription point is exact.
        let log = self.log.lock();
        self.listeners.write().push(Arc::new(Listener {
            next_offset: Mutex::new(log.len() as u64),
            f,
        }));
    }

    /// Subscribe with catch-up: entries already in the log are replayed
    /// inline (synchronously, under the log lock) and every later entry is
    /// delivered asynchronously — each entry reaches `f` exactly once.
    /// This is the deploy-time aggregator bootstrap of Section 5.1.
    pub fn subscribe_with_catchup(&self, f: UpdateClosure) {
        let log = self.log.lock();
        for entry in log.iter() {
            f(entry);
        }
        self.listeners.write().push(Arc::new(Listener {
            next_offset: Mutex::new(log.len() as u64),
            f,
        }));
    }

    /// Number of appended entries (== next offset).
    pub fn len(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries durable in the log but not yet acknowledged by the laggiest
    /// subscriber — computed from the listener cursors, so a heal (`flush`,
    /// or a recovery replay into a fresh process followed by resubscribe)
    /// brings the count back to zero instead of leaving a phantom tally of
    /// long-since-recovered appends. With no listeners registered it falls
    /// back to the count of post-shutdown appends nobody ever witnessed.
    pub fn undelivered(&self) -> u64 {
        let len = self.len();
        // analysis:allow(lock-order): the registry read guard is a temporary
        // dropped at the snapshot statement, before any cursor lock.
        let snapshot: Vec<Arc<Listener>> = self.listeners.read().iter().cloned().collect();
        if snapshot.is_empty() {
            return self.disowned.load(Ordering::Acquire);
        }
        snapshot
            .iter()
            .map(|l| len.saturating_sub(*l.next_offset.lock()))
            .max()
            .unwrap_or(0)
    }

    /// Mirror the log into a durable WAL. Entries already in the log that
    /// the WAL does not hold (a recovery snapshot can cover more history
    /// than the surviving WAL suffix) are re-appended first, so the on-disk
    /// log is again a dense offset prefix of the binlog, then every future
    /// append is written through inside the offset-assignment critical
    /// section.
    pub fn attach_wal(&self, wal: Arc<Wal>) -> Result<()> {
        // analysis:allow(lock-order): `wal.sync()` below is `Wal::sync`,
        // which only takes the WAL's private state lock — the analyzer
        // resolves the method by name alone and conflates it with
        // `ReplicaTable::sync`, which does reach listener cursors.
        let log = self.log.lock();
        for entry in log.iter().skip(wal.next_offset() as usize) {
            wal.append(entry)?;
        }
        wal.sync()?;
        *self.wal.lock() = Some(wal);
        Ok(())
    }

    /// The attached durable mirror, if any.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.wal.lock().clone()
    }

    /// Force the attached WAL's group-commit buffer to disk. No-op without
    /// an attached WAL.
    pub fn sync_wal(&self) -> Result<()> {
        // analysis:allow(lock-order): the wal guard is a temporary dropped
        // at the clone statement, before the sync call — and `w.sync()` is
        // `Wal::sync` (private state lock), not `ReplicaTable::sync`.
        let wal = self.wal.lock().clone();
        match wal {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }

    /// Block until every appended entry has been applied by all listeners.
    ///
    /// After the asynchronous pipeline has processed everything, any
    /// delivery gaps (injected kills, post-shutdown appends) are healed
    /// inline from the durable log, so on return every listener has applied
    /// the full prefix `[0, len)`. Under a kill rate of 1.0 healing cannot
    /// converge — chaos plans must keep `kill_rate < 1` when flushing.
    pub fn flush(&self) {
        let target = self.len();
        {
            let (lock, cv) = &*self.processed;
            let mut done = lock.lock();
            while *done < target {
                cv.wait(&mut done);
            }
        }
        // analysis:allow(lock-order): the registry read guard is a temporary
        // dropped at the snapshot statement, before delivery.
        let snapshot: Vec<Arc<Listener>> = self.listeners.read().iter().cloned().collect();
        for l in snapshot {
            l.deliver_up_to(&self.log, target, true);
        }
    }

    /// Stop the delivery worker and join it. Every entry whose append
    /// completed before this call is delivered to all listeners first;
    /// entries appended afterwards are counted in [`undelivered`]
    /// (provably not acknowledged) while staying durable in the log.
    /// Subscriber cursors remain valid: a later [`flush`] or [`replay`]
    /// can still catch them up. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut stopped = self.stopped.write();
            if *stopped {
                return;
            }
            *stopped = true;
            // Holding the write lock guarantees no append's send can land
            // after `Stop`: sends happen under the read lock, so they all
            // happen-before this critical section.
            let _ = self.tx.send(WorkerMsg::Stop);
        }
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        // Safety net: anything still queued (cannot normally happen given
        // the lock ordering above) is accounted rather than lost silently.
        while let Ok(msg) = self.rx.try_recv() {
            if let WorkerMsg::Apply(_) = msg {
                if self.listeners.read().is_empty() {
                    self.disowned.fetch_add(1, Ordering::Release);
                }
                crate::metrics::binlog_undelivered().inc();
                let (lock, cv) = &*self.processed;
                *lock.lock() += 1;
                cv.notify_all();
            }
        }
    }

    /// Re-apply entries from `from_offset` (inclusive) — failure recovery
    /// for aggregators whose state was lost.
    pub fn replay(&self, from_offset: u64, mut f: impl FnMut(&LogEntry)) {
        let log = self.log.lock();
        for entry in log.iter().skip(from_offset as usize) {
            f(entry);
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn entry_key() -> Arc<[KeyValue]> {
        Arc::from(vec![KeyValue::Int(1)].into_boxed_slice())
    }

    fn data() -> Arc<[u8]> {
        Arc::from(vec![0u8; 4].into_boxed_slice())
    }

    #[test]
    fn offsets_are_monotonic_under_concurrency() {
        let r = Arc::new(Replicator::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    (0..500)
                        .map(|i| r.append_entry("t".into(), entry_key(), i, data()))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4_000).collect();
        assert_eq!(all, expected, "offsets dense and unique");
    }

    #[test]
    fn catchup_subscription_sees_each_entry_exactly_once() {
        let r = Replicator::new();
        for i in 0..50 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        // Subscribe while the queue may still be draining.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe_with_catchup(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 50..80 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        let seen = seen.lock();
        assert_eq!(
            *seen,
            (0..80).collect::<Vec<u64>>(),
            "exactly once, in order"
        );
    }

    #[test]
    fn plain_subscription_skips_existing_entries() {
        let r = Replicator::new();
        for i in 0..20 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 20..30 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        assert_eq!(*seen.lock(), (20..30).collect::<Vec<u64>>());
    }

    #[test]
    fn listeners_run_asynchronously_in_order() {
        let r = Replicator::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 0..100 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        let seen = seen.lock();
        assert_eq!(
            *seen,
            (0..100).collect::<Vec<u64>>(),
            "applied in offset order"
        );
    }

    #[test]
    fn replay_recovers_from_offset() {
        let r = Replicator::new();
        for i in 0..10 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        let sum = AtomicI64::new(0);
        r.replay(7, |e| {
            sum.fetch_add(e.ts, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 7 + 8 + 9);
    }

    #[test]
    fn flush_waits_for_slow_listener() {
        let r = Replicator::new();
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        r.subscribe(Arc::new(move |_e: &LogEntry| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            c.fetch_add(1, Ordering::SeqCst);
        }));
        for i in 0..20 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    /// Satellite: entries appended concurrently with `shutdown` are either
    /// delivered to the subscriber or counted in `undelivered` — and the
    /// subscriber's applied state is always a contiguous prefix, never a
    /// set with holes.
    #[test]
    fn shutdown_delivers_or_disowns_every_concurrent_append() {
        for _ in 0..20 {
            let r = Arc::new(Replicator::new());
            let seen = Arc::new(Mutex::new(Vec::new()));
            let s = seen.clone();
            r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));

            let appenders: Vec<_> = (0..4)
                .map(|_| {
                    let r = r.clone();
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            r.append_entry("t".into(), entry_key(), i, data());
                        }
                    })
                })
                .collect();
            // Race the shutdown against the appenders.
            std::thread::sleep(std::time::Duration::from_micros(200));
            r.shutdown();
            for a in appenders {
                a.join().unwrap();
            }

            let seen = seen.lock();
            // Prefix invariant: delivered offsets are exactly 0..seen.len().
            assert_eq!(
                *seen,
                (0..seen.len() as u64).collect::<Vec<u64>>(),
                "subscriber state must be a contiguous prefix"
            );
            // Every append is accounted: delivered or provably disowned.
            assert_eq!(r.len(), 400);
            assert!(
                seen.len() as u64 + r.undelivered() >= 400,
                "delivered {} + undelivered {} must cover all appends",
                seen.len(),
                r.undelivered()
            );
            // Post-shutdown appends are disowned, not lost: still durable.
            let mut logged = 0u64;
            r.replay(0, |_| logged += 1);
            assert_eq!(logged, 400, "every append durable in the log");
        }
    }

    /// Satellite regression: the shutdown→recover→resubscribe sequence must
    /// not report phantom undelivered entries. `undelivered` is derived
    /// from the listener cursors, so healing the gap (flush, or a replay
    /// into a fresh process) returns it to zero.
    #[test]
    fn recovered_process_reports_zero_phantom_undelivered() {
        // Original process: appends land after shutdown, leaving a gap.
        let r = Replicator::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 0..30 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.shutdown();
        for i in 30..40 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        assert_eq!(r.undelivered(), 10, "post-shutdown gap is visible");
        // Healing from the durable log zeroes the count — no phantoms.
        r.flush();
        assert_eq!(r.undelivered(), 0, "flush heals, count returns to zero");
        assert_eq!(*seen.lock(), (0..40).collect::<Vec<u64>>());

        // Recovered process: rebuild a fresh replicator by replaying the
        // durable log, then resubscribe. Every entry is delivered exactly
        // once and nothing is reported undelivered.
        let r2 = Replicator::new();
        r.replay(0, |e| {
            r2.append_entry(e.table.clone(), e.key.clone(), e.ts, e.data.clone());
        });
        let seen2 = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen2.clone();
        r2.subscribe_with_catchup(Arc::new(move |e: &LogEntry| s2.lock().push(e.offset)));
        r2.flush();
        assert_eq!(r2.undelivered(), 0, "no phantom undelivered after recovery");
        assert_eq!(*seen2.lock(), (0..40).collect::<Vec<u64>>());
    }

    /// An attached WAL mirrors the binlog in offset order, and attaching
    /// over an existing log heals the missing prefix first.
    #[test]
    fn attached_wal_mirrors_log_and_heals_missing_prefix() {
        let dir = std::env::temp_dir().join(format!("openmldb_binlog_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (wal, scan) = Wal::open(&dir, crate::wal::WalOptions::default()).unwrap();
        assert_eq!(scan.records.len(), 0);
        let r = Replicator::new();
        // Entries appended before attach: healed into the WAL at attach.
        for i in 0..10 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.attach_wal(Arc::new(wal)).unwrap();
        // Entries appended after attach: written through.
        for i in 10..25 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.sync_wal().unwrap();
        let on_disk = crate::wal::read_dir(&dir).unwrap();
        assert_eq!(on_disk.records.len(), 25, "WAL holds the full log");
        for (i, rec) in on_disk.records.iter().enumerate() {
            assert_eq!(rec.entry.offset, i as u64, "dense offset order");
            assert_eq!(rec.entry.ts, i as i64);
        }
        assert!(!on_disk.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_is_idempotent_and_flush_still_returns() {
        let r = Replicator::new();
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        r.subscribe(Arc::new(move |_e: &LogEntry| {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        for i in 0..10 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.shutdown();
        r.shutdown();
        // Appends after shutdown are disowned but flush must not hang —
        // and the flush-time heal applies them from the durable log.
        for i in 10..15 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        assert_eq!(r.undelivered(), 5);
        r.flush();
        assert_eq!(count.load(Ordering::SeqCst), 15, "heal applied the tail");
    }
}
