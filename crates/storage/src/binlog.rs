//! Binlog / replicator (paper Section 5.1, "Aggregator Update").
//!
//! Every write is appended to a binlog whose `binlog_offset` increases
//! monotonically — appends happen under the replicator lock, so no
//! concurrent `Put` can interleave a conflicting offset. Each append also
//! triggers *asynchronous* execution of subscribed update closures (the
//! pre-aggregation maintainers) on a background worker, decoupling them from
//! the data-insertion fast path. `replay` re-applies entries from an offset
//! for failure recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use openmldb_types::KeyValue;

/// One binlog record: a row insertion into a table.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub offset: u64,
    pub table: Arc<str>,
    /// The primary index key of the inserted row.
    pub key: Arc<[KeyValue]>,
    pub ts: i64,
    /// Encoded row payload.
    pub data: Arc<[u8]>,
}

/// Closure invoked asynchronously for each appended entry.
pub type UpdateClosure = Arc<dyn Fn(&LogEntry) + Send + Sync>;

/// A subscriber plus the offset it joined at: asynchronous delivery covers
/// only entries appended *after* subscription, so a catch-up replay plus the
/// subscription sees every entry exactly once.
struct Listener {
    from_offset: u64,
    f: UpdateClosure,
}

enum WorkerMsg {
    Apply(LogEntry),
    Stop,
}

/// Append-only replicated log with asynchronous subscriber execution.
pub struct Replicator {
    /// The log itself; the lock also serializes offset assignment.
    log: Mutex<Vec<LogEntry>>,
    listeners: Arc<RwLock<Vec<Listener>>>,
    tx: Sender<WorkerMsg>,
    worker: Mutex<Option<JoinHandle<()>>>,
    appended: AtomicU64,
    processed: Arc<(Mutex<u64>, Condvar)>,
}

impl Default for Replicator {
    fn default() -> Self {
        Self::new()
    }
}

impl Replicator {
    pub fn new() -> Self {
        let (tx, rx) = channel::unbounded::<WorkerMsg>();
        let listeners: Arc<RwLock<Vec<Listener>>> = Arc::default();
        let processed: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let worker = {
            let listeners = listeners.clone();
            let processed = processed.clone();
            std::thread::spawn(move || {
                while let Ok(WorkerMsg::Apply(entry)) = rx.recv() {
                    for l in listeners.read().iter() {
                        if entry.offset >= l.from_offset {
                            (l.f)(&entry);
                        }
                    }
                    let (lock, cv) = &*processed;
                    *lock.lock() += 1;
                    cv.notify_all();
                }
            })
        };
        Replicator {
            log: Mutex::new(Vec::new()),
            listeners,
            tx,
            worker: Mutex::new(Some(worker)),
            appended: AtomicU64::new(0),
            processed,
        }
    }

    /// Append an entry; the assigned offset is returned. The entry is also
    /// queued for asynchronous listener execution (`update_aggr` closures).
    pub fn append_entry(
        &self,
        table: Arc<str>,
        key: Arc<[KeyValue]>,
        ts: i64,
        data: Arc<[u8]>,
    ) -> u64 {
        // Offset assignment and the append are one critical section —
        // the monotonic `binlog_offset` invariant of Section 5.1.
        let entry = {
            let mut log = self.log.lock();
            let entry = LogEntry {
                offset: log.len() as u64,
                table,
                key,
                ts,
                data,
            };
            log.push(entry.clone());
            entry
        };
        self.appended.fetch_add(1, Ordering::Release);
        let offset = entry.offset;
        // Queue for asynchronous execution; if the worker is gone (shutdown
        // race), the entry is still durable in the log for replay.
        let _ = self.tx.send(WorkerMsg::Apply(entry));
        offset
    }

    /// Subscribe an update closure, invoked asynchronously for every entry
    /// appended *from now on*. Entries already in the log (even if still in
    /// the delivery queue) are not delivered.
    pub fn subscribe(&self, f: UpdateClosure) {
        // Hold the log lock so no offset is assigned while the boundary is
        // read — the subscription point is exact.
        let log = self.log.lock();
        self.listeners.write().push(Listener {
            from_offset: log.len() as u64,
            f,
        });
    }

    /// Subscribe with catch-up: entries already in the log are replayed
    /// inline (synchronously, under the log lock) and every later entry is
    /// delivered asynchronously — each entry reaches `f` exactly once.
    /// This is the deploy-time aggregator bootstrap of Section 5.1.
    pub fn subscribe_with_catchup(&self, f: UpdateClosure) {
        let log = self.log.lock();
        for entry in log.iter() {
            f(entry);
        }
        self.listeners.write().push(Listener {
            from_offset: log.len() as u64,
            f,
        });
    }

    /// Number of appended entries (== next offset).
    pub fn len(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until every appended entry has been applied by all listeners.
    pub fn flush(&self) {
        let target = self.len();
        let (lock, cv) = &*self.processed;
        let mut done = lock.lock();
        while *done < target {
            cv.wait(&mut done);
        }
    }

    /// Re-apply entries from `from_offset` (inclusive) — failure recovery
    /// for aggregators whose state was lost.
    pub fn replay(&self, from_offset: u64, mut f: impl FnMut(&LogEntry)) {
        let log = self.log.lock();
        for entry in log.iter().skip(from_offset as usize) {
            f(entry);
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        let _ = self.tx.send(WorkerMsg::Stop);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn entry_key() -> Arc<[KeyValue]> {
        Arc::from(vec![KeyValue::Int(1)].into_boxed_slice())
    }

    fn data() -> Arc<[u8]> {
        Arc::from(vec![0u8; 4].into_boxed_slice())
    }

    #[test]
    fn offsets_are_monotonic_under_concurrency() {
        let r = Arc::new(Replicator::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    (0..500)
                        .map(|i| r.append_entry("t".into(), entry_key(), i, data()))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4_000).collect();
        assert_eq!(all, expected, "offsets dense and unique");
    }

    #[test]
    fn catchup_subscription_sees_each_entry_exactly_once() {
        let r = Replicator::new();
        for i in 0..50 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        // Subscribe while the queue may still be draining.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe_with_catchup(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 50..80 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        let seen = seen.lock();
        assert_eq!(
            *seen,
            (0..80).collect::<Vec<u64>>(),
            "exactly once, in order"
        );
    }

    #[test]
    fn plain_subscription_skips_existing_entries() {
        let r = Replicator::new();
        for i in 0..20 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 20..30 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        assert_eq!(*seen.lock(), (20..30).collect::<Vec<u64>>());
    }

    #[test]
    fn listeners_run_asynchronously_in_order() {
        let r = Replicator::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        r.subscribe(Arc::new(move |e: &LogEntry| s.lock().push(e.offset)));
        for i in 0..100 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        let seen = seen.lock();
        assert_eq!(
            *seen,
            (0..100).collect::<Vec<u64>>(),
            "applied in offset order"
        );
    }

    #[test]
    fn replay_recovers_from_offset() {
        let r = Replicator::new();
        for i in 0..10 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        let sum = AtomicI64::new(0);
        r.replay(7, |e| {
            sum.fetch_add(e.ts, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 7 + 8 + 9);
    }

    #[test]
    fn flush_waits_for_slow_listener() {
        let r = Replicator::new();
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        r.subscribe(Arc::new(move |_e: &LogEntry| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            c.fetch_add(1, Ordering::SeqCst);
        }));
        for i in 0..20 {
            r.append_entry("t".into(), entry_key(), i, data());
        }
        r.flush();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
