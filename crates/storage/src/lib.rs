//! # openmldb-storage
//!
//! Compact time-series data management (paper Section 7) plus the binlog
//! substrate of Section 5.1:
//!
//! * [`skiplist`] — the refined two-level skiplist: lock-free CAS writes,
//!   per-key newest-first time lists, suffix-truncation TTL removal;
//! * [`table`] — multi-index in-memory tables with the paper's TTL table
//!   types and memory isolation (writes fail, reads continue);
//! * [`binlog`] — monotone-offset replicator with asynchronous update
//!   closures (the pre-aggregation update channel);
//! * [`disk`] — the RocksDB-substitute on-disk engine: column families over
//!   a shared skiplist memtable with composite `(key, ts)` keys;
//! * [`wal`] — checksummed segmented write-ahead log with group commit and
//!   torn-tail detection (the durable form of the binlog);
//! * [`snapshot`] — atomically-published per-table snapshots of the compact
//!   row encoding plus the binlog offset they cover;
//! * [`hll`] — HyperLogLog used by the offline skew resolver.

pub mod binlog;
pub mod disk;
pub mod disk_table;
pub mod hll;
pub mod metrics;
pub mod replica;
pub mod skiplist;
pub mod snapshot;
pub mod sync;
pub mod table;
pub mod wal;

pub use binlog::{LogEntry, Replicator, UpdateClosure};
pub use snapshot::Snapshot;
pub use wal::{Wal, WalOptions, WalScan};

/// Chaos hook for storage paths: fire the injector at `point` and, when it
/// returns a fault, count it in obs before surfacing. An inlined `Ok(())`
/// without the `chaos` feature.
#[inline]
pub(crate) fn chaos_inject(point: openmldb_chaos::InjectionPoint) -> openmldb_types::Result<()> {
    openmldb_chaos::inject(point).inspect_err(|_| {
        crate::metrics::faults_injected().inc();
    })
}
pub use disk::{ColumnFamilySpec, CompositeKey, DiskEngine, FlushTrigger};
pub use disk_table::{Backend, DataTable, DiskTable};
pub use hll::HyperLogLog;
pub use replica::{replicate, ReplicaTable};
pub use skiplist::{SkipMap, TimeList};
pub use table::{IndexSpec, MemTable, Ttl, KEY_OVERHEAD, NODE_OVERHEAD};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        /// TimeList holds exactly the non-truncated set, newest first, no
        /// matter the insertion order.
        #[test]
        fn timelist_matches_sorted_model(
            entries in proptest::collection::vec((0i64..1_000, 0u8..255), 1..200),
            cutoff in 0i64..1_000,
        ) {
            let list = TimeList::new();
            for (ts, v) in &entries {
                list.insert(*ts, Arc::from(vec![*v].into_boxed_slice()));
            }
            list.truncate(Some(cutoff), None, false);
            let mut expected: Vec<i64> =
                entries.iter().map(|(ts, _)| *ts).filter(|ts| *ts >= cutoff).collect();
            expected.sort_unstable_by(|a, b| b.cmp(a));
            let mut actual = Vec::new();
            list.scan(|ts, _| { actual.push(ts); true });
            prop_assert_eq!(actual, expected);
        }

        /// SkipMap behaves like a BTreeMap under first-writer-wins inserts.
        #[test]
        fn skipmap_matches_btreemap(
            ops in proptest::collection::vec((0i64..100, 0i64..1_000), 1..300),
        ) {
            let map: SkipMap<i64, i64> = SkipMap::new();
            let mut model = std::collections::BTreeMap::new();
            for (k, v) in &ops {
                map.get_or_insert_with(*k, || *v);
                model.entry(*k).or_insert(*v);
            }
            prop_assert_eq!(map.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(map.get(k), Some(v));
            }
            prop_assert_eq!(map.keys(), model.keys().copied().collect::<Vec<_>>());
        }

        /// Seeked range equals the filtered scan on any stream (the skip
        /// levels change the path, never the answer).
        #[test]
        fn timelist_range_matches_filtered_scan(
            entries in proptest::collection::vec((0i64..2_000, 0u8..255), 1..300),
            bounds in (0i64..2_000, 0i64..2_000),
        ) {
            let (a, b) = bounds;
            let (lower, upper) = (a.min(b), a.max(b));
            let list = TimeList::new();
            for (ts, v) in &entries {
                list.insert(*ts, Arc::from(vec![*v].into_boxed_slice()));
            }
            let seeked: Vec<i64> = list.range(lower, upper).iter().map(|(t, _)| *t).collect();
            let mut scanned = Vec::new();
            list.scan(|ts, _| {
                if (lower..=upper).contains(&ts) {
                    scanned.push(ts);
                }
                true
            });
            prop_assert_eq!(seeked, scanned);
        }

        /// The streaming visitor sees exactly what the materializing range
        /// returns — same entries, same order, same payload bytes.
        #[test]
        fn timelist_range_visit_matches_range(
            entries in proptest::collection::vec((0i64..2_000, 0u8..255), 1..300),
            bounds in (0i64..2_000, 0i64..2_000),
        ) {
            let (a, b) = bounds;
            let (lower, upper) = (a.min(b), a.max(b));
            let list = TimeList::new();
            for (ts, v) in &entries {
                list.insert(*ts, Arc::from(vec![*v].into_boxed_slice()));
            }
            let materialized: Vec<(i64, u8)> =
                list.range(lower, upper).iter().map(|(t, d)| (*t, d[0])).collect();
            let mut streamed = Vec::new();
            list.range_visit(lower, upper, |ts, data| {
                streamed.push((ts, data[0]));
                true
            });
            prop_assert_eq!(streamed, materialized);
        }

        /// get_by with a borrowed slice key agrees with get on owned keys.
        #[test]
        fn skipmap_get_by_matches_get(
            ops in proptest::collection::vec((0i64..50, 0i64..1_000), 1..100),
            probe in 0i64..60,
        ) {
            let map: SkipMap<Vec<i64>, i64> = SkipMap::new();
            for (k, v) in &ops {
                map.get_or_insert_with(vec![*k], || *v);
            }
            let owned = map.get(&vec![probe]).copied();
            let borrowed = map.get_by::<[i64]>(&[probe]).copied();
            prop_assert_eq!(owned, borrowed);
        }

        /// range_for_each visits exactly the suffix starting at `from`.
        #[test]
        fn skipmap_range_matches_model(
            keys in proptest::collection::btree_set(0i64..200, 1..60),
            from in 0i64..200,
        ) {
            let map: SkipMap<i64, ()> = SkipMap::new();
            for k in &keys {
                map.get_or_insert_with(*k, || ());
            }
            let mut got = Vec::new();
            map.range_for_each(&from, |k, _| { got.push(*k); true });
            let expected: Vec<i64> = keys.iter().copied().filter(|k| *k >= from).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
