//! HyperLogLog cardinality sketch (Flajolet et al.), used by the offline
//! engine's time-aware skew resolver to approximate key/timestamp
//! distributions without a full data scan (paper Section 6.2).

/// HyperLogLog with `2^P` registers. P = 11 gives ~2.3% standard error in
/// ~2 KiB, plenty for partition-boundary estimation.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u32,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new(11)
    }
}

impl HyperLogLog {
    /// `precision` in [4, 16]: number of index bits.
    pub fn new(precision: u32) -> Self {
        let precision = precision.clamp(4, 16);
        HyperLogLog {
            registers: vec![0; 1 << precision],
            precision,
        }
    }

    /// Add a pre-hashed 64-bit item.
    pub fn add_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.precision)) as usize;
        let rest = hash << self.precision;
        // Rank = leading zeros of the remaining bits + 1, capped.
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Add raw bytes (hashed internally with FNV-1a).
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // One round of finalization to spread FNV's weak high bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.add_hash(h);
    }

    /// Merge another sketch of the same precision (register-wise max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Estimated distinct count, with small- and large-range corrections.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                // Linear counting for the small range.
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cardinalities_near_exact() {
        let mut h = HyperLogLog::default();
        for i in 0..100u64 {
            h.add_bytes(&i.to_le_bytes());
        }
        let est = h.estimate();
        assert!((90.0..110.0).contains(&est), "{est}");
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        let mut h = HyperLogLog::new(12);
        let n = 200_000u64;
        for i in 0..n {
            h.add_bytes(&i.to_le_bytes());
        }
        let est = h.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} err {err}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::default();
        for _ in 0..10 {
            for i in 0..50u64 {
                h.add_bytes(&i.to_le_bytes());
            }
        }
        let est = h.estimate();
        assert!((40.0..60.0).contains(&est), "{est}");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        for i in 0..5_000u64 {
            a.add_bytes(&i.to_le_bytes());
        }
        for i in 2_500..7_500u64 {
            b.add_bytes(&i.to_le_bytes());
        }
        a.merge(&b);
        let est = a.estimate();
        let err = (est - 7_500.0).abs() / 7_500.0;
        assert!(err < 0.06, "estimate {est} err {err}");
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(HyperLogLog::default().estimate(), 0.0);
    }
}
