//! Global observability handles for the storage engine.
//!
//! Accessors lazily register in the process-wide
//! [`Registry`](openmldb_obs::Registry) and cache the handle in a
//! `OnceLock`, so the hot read/GC paths only pay one sharded relaxed
//! atomic per event.

use openmldb_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

fn gauge(cell: &'static OnceLock<Arc<Gauge>>, name: &str, help: &str) -> &'static Gauge {
    cell.get_or_init(|| Registry::global().gauge(name, help))
}

/// Point lookups / range probes against a skiplist index (one per key seek).
pub fn seeks() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_seeks_total",
        "Skiplist key seeks (latest / range / latest_n probes)",
    )
}

/// Record one index seek: the global seek counter plus, when a request's
/// cost profile is active on this thread, its per-request seek attribution
/// (the workload-attribution hook the online engine folds per deployment).
#[inline]
pub fn note_seek() {
    seeks().inc();
    openmldb_obs::profile::record_seek();
}

/// Record one completed scan of `rows` rows: the global scan-length
/// histogram plus the active request profile's row attribution.
#[inline]
pub fn note_scan(rows: u64) {
    scan_len().record(rows);
    openmldb_obs::profile::record_scan_rows(rows);
}

/// Distribution of rows touched per window scan.
pub fn scan_len() -> &'static Histogram {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().histogram(
            "openmldb_storage_scan_len_rows",
            "Rows returned per skiplist range/latest_n scan",
        )
    })
}

/// Entries removed by TTL garbage collection.
pub fn ttl_evictions() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_ttl_evictions_total",
        "Entries removed by TTL garbage collection",
    )
}

/// Deferred skiplist nodes actually freed by epoch reclamation.
pub fn epoch_reclaimed() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_epoch_reclaimed_total",
        "Deferred allocations freed by epoch-based reclamation",
    )
}

/// Faults the chaos layer actually fired inside storage (errors + kills).
/// Zero unless the `chaos` feature is compiled in and a plan is armed.
pub fn faults_injected() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_faults_injected_total",
        "Transient faults and delivery kills injected by openmldb-chaos",
    )
}

/// Binlog entries appended after shutdown: durable but acknowledged to no
/// subscriber until an explicit flush/replay.
pub fn binlog_undelivered() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_binlog_undelivered_total",
        "Appends accepted after replicator shutdown (durable, unacknowledged)",
    )
}

/// Replica apply failures (decode or put), after bounded retries.
pub fn replica_apply_errors() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_replica_apply_errors_total",
        "Replica catch-up entries whose decode/apply failed after retries",
    )
}

/// Rows the leader accepted that the replica has not applied, sampled at
/// each `ReplicaTable::sync`.
pub fn replica_lag() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    gauge(
        &M,
        "openmldb_storage_replica_lag_rows",
        "Leader rows not yet applied by the replica (sampled at sync)",
    )
}

/// Records appended to the durable write-ahead log.
pub fn wal_appends() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_wal_appends_total",
        "Records appended to the durable write-ahead log",
    )
}

/// Bytes (framed records) appended to the WAL.
pub fn wal_bytes() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_wal_bytes_total",
        "Framed record bytes appended to the write-ahead log",
    )
}

/// Group-commit fsyncs that actually reached the disk.
pub fn wal_fsyncs() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_wal_fsyncs_total",
        "Group-commit fsyncs completed by the write-ahead log",
    )
}

/// Torn or corrupt WAL tails detected (and dropped) on open.
pub fn wal_torn_tails() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_wal_torn_tails_total",
        "Torn/corrupt WAL tails detected and truncated on open",
    )
}

/// Table snapshots successfully written and renamed into place.
pub fn snapshots_written() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_snapshots_total",
        "Table snapshots atomically published (tmp write + rename)",
    )
}

/// Bytes written into published snapshot files.
pub fn snapshot_bytes() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_snapshot_bytes_total",
        "Bytes written into published table snapshots",
    )
}

/// Snapshot files rejected during recovery (bad CRC, short read, torn).
pub fn snapshots_invalid() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_snapshots_invalid_total",
        "Snapshot files rejected by validation during recovery",
    )
}
