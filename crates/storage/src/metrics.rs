//! Global observability handles for the storage engine.
//!
//! Accessors lazily register in the process-wide
//! [`Registry`](openmldb_obs::Registry) and cache the handle in a
//! `OnceLock`, so the hot read/GC paths only pay one sharded relaxed
//! atomic per event.

use openmldb_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

/// Point lookups / range probes against a skiplist index (one per key seek).
pub fn seeks() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_seeks_total",
        "Skiplist key seeks (latest / range / latest_n probes)",
    )
}

/// Distribution of rows touched per window scan.
pub fn scan_len() -> &'static Histogram {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().histogram(
            "openmldb_storage_scan_len_rows",
            "Rows returned per skiplist range/latest_n scan",
        )
    })
}

/// Entries removed by TTL garbage collection.
pub fn ttl_evictions() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_ttl_evictions_total",
        "Entries removed by TTL garbage collection",
    )
}

/// Deferred skiplist nodes actually freed by epoch reclamation.
pub fn epoch_reclaimed() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_storage_epoch_reclaimed_total",
        "Deferred allocations freed by epoch-based reclamation",
    )
}
