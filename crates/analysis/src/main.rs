//! CLI for the in-repo lint: `cargo run -p openmldb-analysis -- lint`.
//!
//! Exit codes: 0 = clean (all violations baselined), 1 = new violations,
//! 2 = usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use openmldb_analysis::{
    analyze_repo, apply_baseline, parse_baseline, render_baseline, render_report,
    sarif::render_sarif,
};

const USAGE: &str = "\
usage: openmldb-analysis lint [options]

options:
  --root <dir>        repository root (default: .)
  --baseline <file>   curated debt file (default: crates/analysis/lint-baseline.txt)
  --report <file>     JSON report output (default: target/analysis-report.json)
  --sarif <file>      SARIF 2.1.0 output (default: target/analysis.sarif)
  --write-baseline    rewrite the baseline from the current scan and exit 0
  --quiet             suppress per-violation text output
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("lint") => {}
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut quiet = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" | "--baseline" | "--report" | "--sarif" => {
                let Some(value) = iter.next() else {
                    eprintln!("{arg} needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--root" => root = PathBuf::from(value),
                    "--baseline" => baseline_path = Some(PathBuf::from(value)),
                    "--sarif" => sarif_path = Some(PathBuf::from(value)),
                    _ => report_path = Some(PathBuf::from(value)),
                }
            }
            "--write-baseline" => write_baseline = true,
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates/analysis/lint-baseline.txt"));
    let report_path = report_path.unwrap_or_else(|| root.join("target/analysis-report.json"));
    let sarif_path = sarif_path.unwrap_or_else(|| root.join("target/analysis.sarif"));

    let violations = match analyze_repo(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let text = render_baseline(&violations);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline rewritten: {} accepted violations -> {}",
            violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(_) => Default::default(),
    };
    let outcome = apply_baseline(&violations, &baseline);

    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&report_path, render_report(&outcome)) {
        eprintln!("cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&sarif_path, render_sarif(&outcome)) {
        eprintln!("cannot write {}: {e}", sarif_path.display());
        return ExitCode::from(2);
    }

    if !quiet {
        for v in &outcome.new {
            println!("NEW  {} {}:{}  {}", v.rule, v.path, v.line, v.excerpt);
            for hop in &v.chain {
                println!("       via {hop}");
            }
        }
        for (fp, base, cur) in &outcome.stale {
            println!("STALE baseline entry ({base} -> {cur}): {fp}");
        }
    }
    println!(
        "analysis: {} violations ({} baselined, {} new, {} stale baseline entries); report: {}; sarif: {}",
        outcome.baselined.len() + outcome.new.len(),
        outcome.baselined.len(),
        outcome.new.len(),
        outcome.stale.len(),
        report_path.display(),
        sarif_path.display()
    );
    if outcome.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
