//! Syntax layer: a single-pass recursive-descent parser over the lexer's
//! code channel that extracts the facts the call-graph rules need —
//! function items (with module path, `impl` self type, parameter types),
//! call sites, panic-capable expressions, and lock acquisitions with their
//! lexical guard spans.
//!
//! This is deliberately *not* a full Rust parser (the build environment is
//! offline, so `syn` is unavailable; see DESIGN.md §13 for the
//! over-approximations). It understands exactly enough structure to build
//! a name-resolved intra-workspace call graph:
//!
//! * items: `mod`/`impl`/`trait`/`fn`/`struct`/`static`, brace-balanced;
//! * calls: `foo(..)`, `path::to::foo(..)`, `recv.foo(..)`, with argument
//!   counts (closure parameter commas are excluded);
//! * panic sites: `.unwrap()`, `.expect(..)`, `panic!`-family macros, and
//!   slice/array indexing `recv[..]`;
//! * lock sites: `.lock()` / `.read()` / `.write()` with the receiver's
//!   final field segment, plus which other candidate locks were lexically
//!   held at that point (`let`-bound guards live to the end of their
//!   block; temporaries to the end of their statement; guards created in
//!   an `if let`/`match` head are attributed to the following block).
//!
//! Closure bodies are attributed to the enclosing function — an
//! over-approximation that treats every closure as called where it is
//! built. Nested `fn` items are parsed as separate functions.

use crate::lexer::{self, LineInfo};

/// A parsed token: just enough shape for item recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any literal (strings/chars are pre-collapsed by the lexer; numbers
    /// are collapsed here).
    Lit,
    /// A lifetime marker (`'a`), kept so it never reads as a char literal.
    Lifetime,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive puncts).
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Token {
    /// 0-based line index.
    pub line: usize,
    pub tok: Tok,
}

/// Kind of a candidate lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` — a `Mutex` in both std and parking_lot.
    Lock,
    /// `.read()` — only a lock if the receiver field is a known `RwLock`.
    Read,
    /// `.write()` — only a lock if the receiver field is a known `RwLock`.
    Write,
}

/// A candidate lock acquisition site inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// 1-based source line.
    pub line: usize,
    /// Final field/variable segment of the receiver (`self.pool.lock()`
    /// → `pool`).
    pub recv: String,
    pub kind: LockKind,
    /// Site carries `// analysis:allow(lock-order)`.
    pub allowed: bool,
}

/// A potentially panicking expression inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!` or `index[]`.
    pub idiom: &'static str,
    /// Site carries `analysis:allow(panic-freedom)` or the line-rule's
    /// `analysis:allow(panic-path)`.
    pub allowed: bool,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based source line.
    pub line: usize,
    /// Path segments as written (`a::b::f` → `["a","b","f"]`; method
    /// calls have a single segment).
    pub path: Vec<String>,
    /// True for `recv.name(..)` method syntax.
    pub method: bool,
    /// Number of written arguments (receiver excluded).
    pub args: usize,
    /// Indices into the enclosing function's `locks` that were lexically
    /// held when this call was made.
    pub held: Vec<usize>,
}

/// A parsed function (or trait-method declaration, when `has_body` is
/// false).
#[derive(Debug, Clone, Default)]
pub struct FnItem {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate segment of the path (`crates/<name>/src/...`).
    pub crate_name: String,
    /// Enclosing `mod` path inside the file.
    pub module: Vec<String>,
    /// `impl`/`trait` type the item belongs to, if any.
    pub self_ty: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub has_self: bool,
    /// Type text of each non-self parameter, whitespace-normalized.
    pub params: Vec<String>,
    pub has_body: bool,
    pub is_test: bool,
    /// Leading comment block carries `// HOT:`.
    pub is_hot: bool,
    pub calls: Vec<Call>,
    pub panics: Vec<PanicSite>,
    pub locks: Vec<LockSite>,
    /// `(held, acquired)` pairs of indices into `locks`: `acquired` was
    /// taken while `held` was lexically live.
    pub nested_locks: Vec<(usize, usize)>,
    /// Graph rules allowed on the whole item via
    /// `// analysis:allow(<rule>)` in its leading comment block.
    pub allows: Vec<&'static str>,
}

impl FnItem {
    /// Display name: `crate::module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut out = self.crate_name.clone();
        for m in &self.module {
            out.push_str("::");
            out.push_str(m);
        }
        if let Some(ty) = &self.self_ty {
            out.push_str("::");
            out.push_str(ty);
        }
        out.push_str("::");
        out.push_str(&self.name);
        out
    }
}

/// A struct field (or static) whose declared type is a lock.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Declaring struct (or `"static"` for module-level statics).
    pub owner: String,
    pub field: String,
    /// True for `RwLock`, false for `Mutex`.
    pub rw: bool,
}

/// Everything the graph rules need from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub path: String,
    pub crate_name: String,
    pub fns: Vec<FnItem>,
    pub lock_fields: Vec<LockField>,
}

/// Graph rules that honor item-level allow annotations.
pub const GRAPH_RULES: [&str; 3] = ["deadline-reachability", "panic-freedom", "lock-order"];

const KEYWORDS: [&str; 28] = [
    "let", "in", "if", "else", "while", "for", "loop", "match", "return", "break", "continue",
    "fn", "mod", "impl", "trait", "struct", "enum", "union", "static", "const", "use", "pub",
    "mut", "ref", "move", "as", "where", "unsafe",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

// ---------------------------------------------------------------------------
// Tokenizer over the lexer's code channel
// ---------------------------------------------------------------------------

/// Tokenize preprocessed lines. String/char literals were already collapsed
/// by the lexer (`""` / `' '`); numbers collapse here.
pub fn tokenize(lines: &[LineInfo]) -> Vec<Token> {
    let mut toks = Vec::new();
    for (ln, li) in lines.iter().enumerate() {
        let chars: Vec<char> = li.code.chars().collect();
        let n = chars.len();
        let mut i = 0;
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c == '"' {
                // The lexer's literal placeholder: `""` or a lone `"` for a
                // multi-line literal boundary.
                if i + 1 < n && chars[i + 1] == '"' {
                    i += 2;
                } else {
                    i += 1;
                }
                toks.push(Token {
                    line: ln,
                    tok: Tok::Lit,
                });
            } else if c == '\'' {
                // `' '` placeholder for a char literal, or a bare lifetime.
                if i + 2 < n && chars[i + 1] == ' ' && chars[i + 2] == '\'' {
                    toks.push(Token {
                        line: ln,
                        tok: Tok::Lit,
                    });
                    i += 3;
                } else {
                    // Lifetime: skip the identifier that follows.
                    i += 1;
                    while i < n && lexer::is_ident_char(chars[i]) {
                        i += 1;
                    }
                    toks.push(Token {
                        line: ln,
                        tok: Tok::Lifetime,
                    });
                }
            } else if c.is_ascii_digit() {
                // Number literal (incl. `0xFF`, `1_000`, `1.5e3`, suffixes).
                while i < n && (lexer::is_ident_char(chars[i]) || chars[i] == '.') {
                    // A second `.` (range `0..n`) is punctuation, not part
                    // of the number.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    line: ln,
                    tok: Tok::Lit,
                });
            } else if lexer::is_ident_char(c) {
                let start = i;
                while i < n && lexer::is_ident_char(chars[i]) {
                    i += 1;
                }
                toks.push(Token {
                    line: ln,
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                });
            } else {
                toks.push(Token {
                    line: ln,
                    tok: Tok::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Token],
    lines: &'a [LineInfo],
    pos: usize,
    out: ParsedFile,
}

/// Parse one source file into its call-graph facts.
pub fn parse_source(rel_path: &str, src: &str) -> ParsedFile {
    let lines = lexer::preprocess(src);
    let toks = tokenize(&lines);
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    let mut p = Parser {
        toks: &toks,
        lines: &lines,
        pos: 0,
        out: ParsedFile {
            path: rel_path.to_string(),
            crate_name,
            ..Default::default()
        },
    };
    let mut module = Vec::new();
    p.parse_items(&mut module, None);
    p.out
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek_at(off), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident_at(&self, off: usize) -> Option<&str> {
        match self.peek_at(off) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Skip a balanced region opened by the token at `pos` (`(`, `[`, `{`
    /// or `<`). For `<` only `<`/`>` nest (good enough for generics in
    /// item position).
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct(c) if *c == open => depth += 1,
                Tok::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip to just past the next `;` or to an opening `{` (not consumed),
    /// whichever comes first — used for `where` clauses and `use` items.
    /// Returns true when stopped at a `{`.
    fn skip_to_semi_or_brace(&mut self) -> bool {
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct(';') => {
                    self.bump();
                    return false;
                }
                Tok::Punct('{') => return true,
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                Tok::Punct('[') => self.skip_balanced('[', ']'),
                Tok::Punct('<') => self.skip_balanced('<', '>'),
                _ => self.bump(),
            }
        }
        false
    }

    /// Parse items until the matching `}` (consumed) or EOF.
    fn parse_items(&mut self, module: &mut Vec<String>, self_ty: Option<&str>) {
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct('}') => {
                    self.bump();
                    return;
                }
                Tok::Punct('#') => self.skip_attribute(),
                Tok::Punct('{') => {
                    // Stray block at item position (e.g. a static
                    // initializer we fell out of): descend to keep braces
                    // balanced.
                    self.bump();
                    self.parse_items(module, self_ty);
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "mod" => {
                        let name = self.ident_at(1).unwrap_or("").to_string();
                        self.bump();
                        self.bump();
                        if self.is_punct(0, '{') {
                            self.bump();
                            module.push(name);
                            self.parse_items(module, self_ty);
                            module.pop();
                        } else if self.is_punct(0, ';') {
                            self.bump();
                        }
                    }
                    "impl" => {
                        self.bump();
                        if let Some(ty) = self.parse_impl_header() {
                            self.parse_items(module, Some(&ty));
                        }
                    }
                    "trait" => {
                        let name = self.ident_at(1).unwrap_or("").to_string();
                        self.bump();
                        self.bump();
                        if self.skip_to_semi_or_brace() {
                            self.bump();
                            self.parse_items(module, Some(&name));
                        }
                    }
                    "fn" => {
                        let module = module.clone();
                        self.parse_fn(&module, self_ty);
                    }
                    "struct" | "union" => {
                        self.bump();
                        self.parse_struct();
                    }
                    "static" | "const" => {
                        self.bump();
                        self.parse_static();
                    }
                    "use" | "extern" | "type" => {
                        self.bump();
                        self.skip_to_semi_or_brace();
                    }
                    "enum" => {
                        self.bump();
                        // Name + optional generics, then the variant block.
                        self.bump();
                        if self.is_punct(0, '<') {
                            self.skip_balanced('<', '>');
                        }
                        if self.is_punct(0, '{') {
                            self.skip_balanced('{', '}');
                        }
                    }
                    "macro_rules" => {
                        // macro_rules! name { ... } — opaque.
                        self.bump();
                        while let Some(t) = self.peek() {
                            if matches!(t, Tok::Punct('{')) {
                                self.skip_balanced('{', '}');
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => self.bump(),
                },
                _ => self.bump(),
            }
        }
    }

    /// Skip `#[...]` / `#![...]`.
    fn skip_attribute(&mut self) {
        self.bump();
        if self.is_punct(0, '!') {
            self.bump();
        }
        if self.is_punct(0, '[') {
            self.skip_balanced('[', ']');
        }
    }

    /// After `impl`: skip generics, read the type path (the one after
    /// `for`, if present), stop at `{` (consumed). Returns the self type's
    /// final segment.
    fn parse_impl_header(&mut self) -> Option<String> {
        if self.is_punct(0, '<') {
            self.skip_balanced('<', '>');
        }
        let mut ty: Option<String> = None;
        loop {
            match self.peek()? {
                Tok::Punct('{') => {
                    self.bump();
                    return ty;
                }
                Tok::Punct(';') => {
                    self.bump();
                    return None;
                }
                Tok::Punct('<') => self.skip_balanced('<', '>'),
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                Tok::Ident(w) if w == "for" => {
                    // `impl Trait for Type` — the self type follows.
                    ty = None;
                    self.bump();
                }
                Tok::Ident(w) if w == "where" => {
                    self.bump();
                    if self.skip_to_semi_or_brace() {
                        self.bump();
                    }
                    return ty;
                }
                Tok::Ident(w) => {
                    // Track the latest path segment as the candidate type;
                    // `dyn`, `&`, lifetimes etc. just pass through.
                    if w != "dyn" && w != "mut" {
                        ty = Some(w.clone());
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// `struct Name { field: Type, ... }` — record lock-typed fields.
    fn parse_struct(&mut self) {
        let Some(name) = self.ident_at(0).map(str::to_string) else {
            return;
        };
        self.bump();
        if self.is_punct(0, '<') {
            self.skip_balanced('<', '>');
        }
        match self.peek() {
            Some(Tok::Punct('(')) => {
                // Tuple struct: no named fields to track.
                self.skip_balanced('(', ')');
                if self.is_punct(0, ';') {
                    self.bump();
                }
            }
            Some(Tok::Punct('{')) => {
                self.bump();
                self.parse_fields(&name);
            }
            Some(Tok::Ident(w)) if w == "where" => {
                let found_brace = self.skip_to_semi_or_brace();
                if found_brace {
                    self.bump();
                    self.parse_fields(&name);
                }
            }
            _ => {}
        }
    }

    /// Field list of a braced struct, until the matching `}` (consumed).
    fn parse_fields(&mut self, owner: &str) {
        loop {
            match self.peek() {
                None => return,
                Some(Tok::Punct('}')) => {
                    self.bump();
                    return;
                }
                Some(Tok::Punct('#')) => self.skip_attribute(),
                Some(Tok::Ident(w)) if w == "pub" => {
                    self.bump();
                    if self.is_punct(0, '(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Some(Tok::Ident(_)) if self.is_punct(1, ':') && !self.is_punct(2, ':') => {
                    let field = self.ident_at(0).unwrap_or("").to_string();
                    self.bump();
                    self.bump();
                    // Capture the type text to the next top-level comma.
                    let mut ty = String::new();
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        match t {
                            Tok::Punct(',') if depth == 0 => {
                                self.bump();
                                break;
                            }
                            Tok::Punct('}') if depth == 0 => break,
                            Tok::Punct(c @ ('<' | '(' | '[')) => {
                                ty.push(*c);
                                depth += 1;
                                self.bump();
                            }
                            Tok::Punct(c @ ('>' | ')' | ']')) => {
                                ty.push(*c);
                                depth -= 1;
                                self.bump();
                            }
                            Tok::Ident(w) => {
                                if !ty.is_empty() {
                                    ty.push(' ');
                                }
                                ty.push_str(w);
                                self.bump();
                            }
                            Tok::Punct(c) => {
                                ty.push(*c);
                                self.bump();
                            }
                            _ => self.bump(),
                        }
                    }
                    if let Some(rw) = lock_type(&ty) {
                        self.out.lock_fields.push(LockField {
                            owner: owner.to_string(),
                            field,
                            rw,
                        });
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// `static NAME: Type = ...;` / `const NAME: Type = ...;`
    fn parse_static(&mut self) {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == "mut") {
            self.bump();
        }
        let Some(name) = self.ident_at(0).map(str::to_string) else {
            return;
        };
        self.bump();
        if !self.is_punct(0, ':') {
            return;
        }
        self.bump();
        let mut ty = String::new();
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('=') | Tok::Punct(';') => break,
                Tok::Punct('<') => {
                    let len = self.balanced_len(0, '<', '>');
                    for _ in 0..len {
                        if let Some(Tok::Punct(c)) = self.peek() {
                            ty.push(*c);
                        } else if let Some(Tok::Ident(w)) = self.peek() {
                            ty.push(' ');
                            ty.push_str(w);
                        }
                        self.bump();
                    }
                }
                Tok::Ident(w) => {
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(w);
                    self.bump();
                }
                Tok::Punct(c) => {
                    ty.push(*c);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        if let Some(rw) = lock_type(&ty) {
            self.out.lock_fields.push(LockField {
                owner: "static".to_string(),
                field: name,
                rw,
            });
        }
        // The initializer (`= expr;`) is skipped statement-wise.
        self.skip_to_semi_or_brace();
    }

    /// `fn name<..>(params) -> ret { body }` (or `;` for declarations).
    fn parse_fn(&mut self, module: &[String], self_ty: Option<&str>) {
        let fn_line = self.line();
        self.bump(); // `fn`
        let Some(name) = self.ident_at(0).map(str::to_string) else {
            return;
        };
        self.bump();
        if self.is_punct(0, '<') {
            self.skip_balanced('<', '>');
        }
        let mut item = FnItem {
            file: self.out.path.clone(),
            crate_name: self.out.crate_name.clone(),
            module: module.to_vec(),
            self_ty: self_ty.map(str::to_string),
            name,
            line: fn_line + 1,
            ..Default::default()
        };
        item.is_test = self.lines.get(fn_line).is_some_and(|li| li.in_test)
            || attr_block_has_test(self.lines, fn_line);
        item.is_hot = lexer::comment_block_contains(self.lines, fn_line, &["HOT:"]);
        for rule in GRAPH_RULES {
            if lexer::allowed(self.lines, fn_line, rule) {
                item.allows.push(rule);
            }
        }

        if self.is_punct(0, '(') {
            self.parse_params(&mut item);
        }
        // Return type / where clause: skip to the body or `;`.
        let has_brace = self.skip_to_semi_or_brace();
        if has_brace {
            self.bump(); // `{`
            item.has_body = true;
            self.parse_body(&mut item);
        }
        self.out.fns.push(item);
    }

    /// Parameter list: `(self, a: Ty, b: impl Fn(..))`.
    fn parse_params(&mut self, item: &mut FnItem) {
        self.bump(); // `(`
        let mut depth = 1i32;
        let mut first = true;
        let mut cur = String::new();
        let mut seen_colon = false;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct(c @ ('(' | '[' | '<')) => {
                    depth += 1;
                    if seen_colon {
                        cur.push(*c);
                    }
                    self.bump();
                }
                Tok::Punct(c @ (')' | ']' | '>')) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                    if seen_colon {
                        cur.push(*c);
                    }
                    self.bump();
                }
                Tok::Punct(',') if depth == 1 => {
                    finish_param(item, &mut cur, &mut seen_colon);
                    first = false;
                    self.bump();
                }
                Tok::Punct(':') if depth == 1 && !self.is_punct(1, ':') => {
                    seen_colon = true;
                    self.bump();
                }
                Tok::Ident(w) => {
                    if first && !seen_colon && w == "self" {
                        item.has_self = true;
                    }
                    if seen_colon {
                        if !cur.is_empty() {
                            cur.push(' ');
                        }
                        cur.push_str(w);
                    }
                    self.bump();
                }
                Tok::Punct(c) => {
                    if seen_colon {
                        cur.push(*c);
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        finish_param(item, &mut cur, &mut seen_colon);
    }

    /// Function body: extract calls, panic sites and lock spans until the
    /// matching `}` (consumed).
    fn parse_body(&mut self, item: &mut FnItem) {
        // One entry per open block: candidate-lock indices `let`-bound in
        // that block.
        let mut blocks: Vec<Vec<usize>> = vec![Vec::new()];
        // Locks acquired in the current statement, not yet `let`-anchored.
        let mut stmt_locks: Vec<usize> = Vec::new();
        let mut stmt_has_let = false;

        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('{') => {
                    self.bump();
                    // Guards born in this statement (if let / match / while
                    // let heads) live for the new block.
                    blocks.push(std::mem::take(&mut stmt_locks));
                    stmt_has_let = false;
                }
                Tok::Punct('}') => {
                    self.bump();
                    if blocks.len() == 1 {
                        return;
                    }
                    blocks.pop();
                }
                Tok::Punct(';') => {
                    self.bump();
                    if stmt_has_let {
                        let anchored = std::mem::take(&mut stmt_locks);
                        if let Some(top) = blocks.last_mut() {
                            top.extend(anchored);
                        }
                    } else {
                        stmt_locks.clear();
                    }
                    stmt_has_let = false;
                }
                Tok::Punct('#') => self.skip_attribute(),
                Tok::Punct('[') => {
                    // Indexing when the previous significant token can end
                    // an expression.
                    let line = self.line();
                    if self.prev_ends_expr() {
                        item.panics.push(PanicSite {
                            line: line + 1,
                            idiom: "index[]",
                            allowed: panic_site_allowed(self.lines, line),
                        });
                    }
                    self.bump();
                }
                Tok::Ident(kw) if kw == "fn" => {
                    // Nested function: a sibling item, not part of this body.
                    let module = item.module.clone();
                    let self_ty = item.self_ty.clone();
                    self.parse_fn(&module, self_ty.as_deref());
                }
                Tok::Ident(kw) if kw == "let" => {
                    stmt_has_let = true;
                    self.bump();
                }
                Tok::Ident(w) => {
                    let w = w.clone();
                    let line = self.line();
                    // `name!` — macro invocation.
                    if self.is_punct(1, '!') {
                        if let Some(idiom) = panic_macro(&w) {
                            item.panics.push(PanicSite {
                                line: line + 1,
                                idiom,
                                allowed: panic_site_allowed(self.lines, line),
                            });
                        }
                        self.bump();
                        self.bump();
                        continue;
                    }
                    if is_keyword(&w) {
                        self.bump();
                        continue;
                    }
                    // Assemble a path: Ident (:: Ident)*, optional
                    // turbofish, then maybe `(`.
                    let method = self.prev_is_dot();
                    let mut path = vec![w];
                    let mut off = 1;
                    loop {
                        if self.is_punct(off, ':') && self.is_punct(off + 1, ':') {
                            if let Some(seg) = self.ident_at(off + 2) {
                                path.push(seg.to_string());
                                off += 3;
                                continue;
                            }
                            // Turbofish `::<..>` — skip it.
                            if self.is_punct(off + 2, '<') {
                                off += 2 + self.balanced_len(off + 2, '<', '>');
                                continue;
                            }
                        }
                        break;
                    }
                    if self.is_punct(off, '(') {
                        let args = self.count_args(off);
                        let name = path.last().cloned().unwrap_or_default();
                        let held: Vec<usize> = blocks
                            .iter()
                            .flatten()
                            .copied()
                            .chain(stmt_locks.iter().copied())
                            .collect();
                        if name == "unwrap" && method && args == 0 {
                            item.panics.push(PanicSite {
                                line: line + 1,
                                idiom: "unwrap()",
                                allowed: panic_site_allowed(self.lines, line),
                            });
                        } else if name == "expect" && method && args == 1 {
                            item.panics.push(PanicSite {
                                line: line + 1,
                                idiom: "expect()",
                                allowed: panic_site_allowed(self.lines, line),
                            });
                        }
                        if method && args == 0 {
                            if let Some(kind) = lock_method(&name) {
                                let recv = self.receiver_field();
                                if !recv.is_empty() {
                                    let idx = item.locks.len();
                                    for &h in &held {
                                        item.nested_locks.push((h, idx));
                                    }
                                    item.locks.push(LockSite {
                                        line: line + 1,
                                        recv,
                                        kind,
                                        allowed: lexer::allowed(self.lines, line, "lock-order"),
                                    });
                                    stmt_locks.push(idx);
                                }
                            }
                        }
                        item.calls.push(Call {
                            line: line + 1,
                            path,
                            method,
                            args,
                            held,
                        });
                        // Advance past the path; the `(` contents are
                        // re-scanned for nested calls.
                        for _ in 0..=off {
                            self.bump();
                        }
                        continue;
                    }
                    for _ in 0..off {
                        self.bump();
                    }
                }
                _ => self.bump(),
            }
        }
    }

    /// Token length of a balanced group starting at `off` (which must be
    /// the opener); 1 if unbalanced.
    fn balanced_len(&self, off: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut k = off;
        while let Some(t) = self.peek_at(k) {
            match t {
                Tok::Punct(c) if *c == open => depth += 1,
                Tok::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return k - off + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        1
    }

    /// Count call arguments in the paren group starting at `off`. Top-level
    /// commas + 1, 0 for `()`. Commas inside closure parameter lists
    /// (`|a, b|`) are skipped.
    fn count_args(&self, off: usize) -> usize {
        let mut depth = 0usize;
        let mut commas = 0usize;
        let mut content = false;
        let mut k = off;
        let mut in_closure_params = false;
        while let Some(t) = self.peek_at(k) {
            match t {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                    if depth > 0 {
                        content = true;
                    }
                    depth += 1;
                }
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    content = true;
                }
                Tok::Punct('|') if depth == 1 => {
                    // Heuristic: at call-argument level, `|` brackets a
                    // closure parameter list; a binary `|` inside an
                    // unparenthesized call argument is rare.
                    in_closure_params = !in_closure_params;
                    content = true;
                }
                Tok::Punct(',') if depth == 1 && !in_closure_params => {
                    commas += 1;
                    content = true;
                }
                _ => {
                    if depth > 0 {
                        content = true;
                    }
                }
            }
            k += 1;
        }
        if !content {
            0
        } else {
            commas + 1
        }
    }

    /// True when the token before `pos` is `.` (method-call syntax).
    fn prev_is_dot(&self) -> bool {
        self.pos > 0 && matches!(self.toks[self.pos - 1].tok, Tok::Punct('.'))
    }

    /// True when the previous token can end an expression (for indexing
    /// detection): identifier (non-keyword), literal, `)`, `]`.
    fn prev_ends_expr(&self) -> bool {
        if self.pos == 0 {
            return false;
        }
        match &self.toks[self.pos - 1].tok {
            Tok::Ident(w) => !is_keyword(w),
            Tok::Lit => true,
            Tok::Punct(')') | Tok::Punct(']') => true,
            _ => false,
        }
    }

    /// Walking back from the `.` before the current method name: the final
    /// field/variable segment of the receiver chain
    /// (`self.pool.lock()` → `pool`, `POOL.lock()` → `POOL`).
    fn receiver_field(&self) -> String {
        // pos is at the method name; pos-1 is `.`.
        let mut k = self.pos.checked_sub(2);
        while let Some(i) = k {
            match &self.toks[i].tok {
                Tok::Ident(w) if !is_keyword(w) => return w.clone(),
                // `.0` tuple access: step back past the literal and its dot.
                Tok::Lit => {
                    if i >= 1 && matches!(self.toks[i - 1].tok, Tok::Punct('.')) {
                        k = i.checked_sub(2);
                        continue;
                    }
                    return String::new();
                }
                _ => return String::new(),
            }
        }
        String::new()
    }
}

fn finish_param(item: &mut FnItem, cur: &mut String, seen_colon: &mut bool) {
    if *seen_colon && !cur.trim().is_empty() {
        item.params.push(cur.trim().to_string());
    }
    cur.clear();
    *seen_colon = false;
}

/// `Mutex<..>` / `RwLock<..>` (std or parking_lot), possibly wrapped in
/// `Arc<..>` / tuples. Returns `Some(is_rwlock)`.
fn lock_type(ty: &str) -> Option<bool> {
    if ty.contains("RwLock") {
        Some(true)
    } else if ty.contains("Mutex") {
        Some(false)
    } else {
        None
    }
}

fn lock_method(name: &str) -> Option<LockKind> {
    match name {
        "lock" => Some(LockKind::Lock),
        "read" => Some(LockKind::Read),
        "write" => Some(LockKind::Write),
        _ => None,
    }
}

fn panic_macro(name: &str) -> Option<&'static str> {
    match name {
        "panic" => Some("panic!"),
        "unreachable" => Some("unreachable!"),
        "todo" => Some("todo!"),
        "unimplemented" => Some("unimplemented!"),
        _ => None,
    }
}

fn panic_site_allowed(lines: &[LineInfo], line_idx: usize) -> bool {
    lexer::allowed(lines, line_idx, "panic-freedom")
        || lexer::allowed(lines, line_idx, "panic-path")
}

/// `#[test]` / `#[cfg(test)]` in the attribute block directly above.
fn attr_block_has_test(lines: &[LineInfo], fn_line: usize) -> bool {
    let mut i = fn_line;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        if code.starts_with("#[") || code.starts_with("#![") {
            if code.contains("test") {
                return true;
            }
        } else if !code.is_empty() || lines[i].comment.trim().is_empty() {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> ParsedFile {
        parse_source("crates/online/src/x.rs", src)
    }

    #[test]
    fn extracts_modules_impls_and_signatures() {
        let src = "mod inner {\n    pub struct Engine { pool: Mutex<Vec<u8>> }\n    impl Engine {\n        pub fn run(&self, n: usize, opts: &RequestOptions) -> u32 { helper(n) }\n    }\n    fn helper(n: usize) -> u32 { n as u32 }\n}\n";
        let pf = fns(src);
        assert_eq!(pf.fns.len(), 2, "{:#?}", pf.fns);
        let run = &pf.fns[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.module, vec!["inner".to_string()]);
        assert_eq!(run.self_ty.as_deref(), Some("Engine"));
        assert!(run.has_self);
        assert_eq!(
            run.params,
            vec!["usize".to_string(), "& RequestOptions".to_string()]
        );
        assert_eq!(run.qualified(), "online::inner::Engine::run");
        assert_eq!(run.calls.len(), 1);
        assert_eq!(run.calls[0].path, vec!["helper".to_string()]);
        assert_eq!(run.calls[0].args, 1);
        assert_eq!(pf.lock_fields.len(), 1);
        assert_eq!(pf.lock_fields[0].field, "pool");
        assert!(!pf.lock_fields[0].rw);
    }

    #[test]
    fn trait_impls_bind_the_self_type_after_for() {
        let src = "impl Visitor for Walker {\n    fn visit(&mut self) { self.step() }\n}\n";
        let pf = fns(src);
        assert_eq!(pf.fns[0].self_ty.as_deref(), Some("Walker"));
        assert_eq!(pf.fns[0].calls[0].path, vec!["step".to_string()]);
        assert!(pf.fns[0].calls[0].method);
        assert!(pf.fns[0].has_self);
    }

    #[test]
    fn method_and_path_calls_with_arity() {
        let src = "fn f(t: &Table) {\n    t.scan_window(1, 2, 3);\n    storage::Table::open(\"x\");\n    let v = Vec::<u8>::with_capacity(8);\n    drop(v);\n}\n";
        let pf = fns(src);
        let calls = &pf.fns[0].calls;
        let scan = calls
            .iter()
            .find(|c| c.path.last().unwrap() == "scan_window")
            .unwrap();
        assert!(scan.method);
        assert_eq!(scan.args, 3);
        let open = calls
            .iter()
            .find(|c| c.path.last().unwrap() == "open")
            .unwrap();
        assert_eq!(
            open.path,
            vec![
                "storage".to_string(),
                "Table".to_string(),
                "open".to_string()
            ]
        );
        assert_eq!(open.args, 1);
        let wc = calls
            .iter()
            .find(|c| c.path.last().unwrap() == "with_capacity")
            .unwrap();
        assert_eq!(wc.args, 1);
    }

    #[test]
    fn closure_commas_do_not_inflate_arity() {
        let src = "fn f(v: &[u32]) -> u32 {\n    v.iter().fold(0, |acc, x| acc + x)\n}\n";
        let pf = fns(src);
        let fold = pf.fns[0]
            .calls
            .iter()
            .find(|c| c.path[0] == "fold")
            .unwrap();
        assert_eq!(fold.args, 2);
    }

    #[test]
    fn panic_sites_are_collected_with_allows() {
        let src = "fn f(o: Option<u32>, v: &[u32]) -> u32 {\n    let a = o.unwrap();\n    let b = o.expect(\"set\");\n    if v.is_empty() { panic!(\"empty\") }\n    // analysis:allow(panic-freedom): bounds checked above.\n    let c = v[0];\n    a + b + c\n}\n";
        let pf = fns(src);
        let p = &pf.fns[0].panics;
        assert_eq!(p.len(), 4, "{p:#?}");
        assert_eq!(p[0].idiom, "unwrap()");
        assert!(!p[0].allowed);
        assert_eq!(p[1].idiom, "expect()");
        assert_eq!(p[2].idiom, "panic!");
        assert_eq!(p[3].idiom, "index[]");
        assert!(p[3].allowed);
    }

    #[test]
    fn indexing_heuristics_skip_types_attributes_and_patterns() {
        let src = "fn f(v: &[u32]) -> u32 {\n    let _t: [u8; 4] = [0; 4];\n    let w = &v[..];\n    v[0] + w.len() as u32\n}\n";
        let pf = fns(src);
        let idx: Vec<_> = pf.fns[0]
            .panics
            .iter()
            .filter(|p| p.idiom == "index[]")
            .collect();
        // `v[..]` and `v[0]` are real indexing; the array type annotation
        // and array literal are not.
        assert_eq!(idx.len(), 2, "{:#?}", pf.fns[0].panics);
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n";
        assert!(fns(src).fns[0].panics.is_empty());
    }

    #[test]
    fn let_bound_guards_nest_until_block_end() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n        drop((g, h));\n    }\n}\n";
        let pf = fns(src);
        let f = &pf.fns[0];
        assert_eq!(f.locks.len(), 2, "{:#?}", f.locks);
        assert_eq!(f.nested_locks, vec![(0, 1)]);
        assert_eq!(f.locks[0].recv, "a");
        assert_eq!(f.locks[1].recv, "b");
    }

    #[test]
    fn temporary_guards_release_at_statement_end() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        *self.a.lock() += 1;\n        *self.b.lock() += 1;\n    }\n}\n";
        let pf = fns(src);
        assert!(pf.fns[0].nested_locks.is_empty(), "{:#?}", pf.fns[0]);
    }

    #[test]
    fn match_head_guard_lives_for_the_match_body() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        match *self.a.lock() {\n            0 => { let g = self.b.lock(); drop(g); }\n            _ => {}\n        }\n    }\n}\n";
        let pf = fns(src);
        assert_eq!(pf.fns[0].nested_locks, vec![(0, 1)], "{:#?}", pf.fns[0]);
    }

    #[test]
    fn calls_record_held_locks() {
        let src = "struct S { a: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock();\n        helper();\n        drop(g);\n    }\n}\nfn helper() {}\n";
        let pf = fns(src);
        let f = &pf.fns[0];
        let call = f.calls.iter().find(|c| c.path[0] == "helper").unwrap();
        assert_eq!(call.held, vec![0]);
    }

    #[test]
    fn hot_marker_test_regions_and_fn_allows() {
        let src = "// HOT: request path.\nfn hot() { cold() }\n\n// analysis:allow(deadline-reachability): scan is bounded.\nfn cold() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::hot() }\n}\n";
        let pf = fns(src);
        assert!(pf.fns[0].is_hot);
        assert!(!pf.fns[0].is_test);
        assert_eq!(pf.fns[1].allows, vec!["deadline-reachability"]);
        assert!(pf.fns[2].is_test);
    }

    #[test]
    fn nested_fns_are_siblings_not_body() {
        let src = "fn outer() {\n    fn inner(o: Option<u32>) -> u32 { o.unwrap() }\n    inner(Some(1));\n}\n";
        let pf = fns(src);
        assert_eq!(pf.fns.len(), 2);
        let inner = pf.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer = pf.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(inner.panics.len(), 1);
        assert!(outer.panics.is_empty());
        assert!(outer.calls.iter().any(|c| c.path[0] == "inner"));
    }

    #[test]
    fn statics_with_lock_types_are_recorded() {
        let src = "static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());\nstatic ROUTES: RwLock<u32> = RwLock::new(0);\nfn after() { helper() }\nfn helper() {}\n";
        let pf = fns(src);
        assert_eq!(pf.lock_fields.len(), 2, "{:#?}", pf.lock_fields);
        assert_eq!(pf.lock_fields[0].owner, "static");
        assert!(pf.lock_fields[1].rw);
        // Item parsing resumes cleanly after the initializers.
        assert_eq!(pf.fns.len(), 2);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait Provider {\n    fn fetch(&self, k: u64) -> u32;\n    fn double(&self, k: u64) -> u32 { self.fetch(k) * 2 }\n}\n";
        let pf = fns(src);
        assert_eq!(pf.fns.len(), 2);
        assert!(!pf.fns[0].has_body);
        assert_eq!(pf.fns[0].self_ty.as_deref(), Some("Provider"));
        assert!(pf.fns[1].has_body);
    }
}
