//! Line-oriented lexer: splits Rust source into a code channel, a comment
//! channel and a string-literal channel, tracking multi-line constructs
//! (block comments — which nest in Rust — and raw strings with arbitrary
//! `#` delimiters) across physical lines.
//!
//! Both the line rules in `lib.rs` and the syntax layer in [`crate::parse`]
//! consume this lexer, so a desync here arms or disarms rules on the wrong
//! lines in *every* analysis. The regression suite at the bottom pins the
//! historically buggy cases: multi-hash raw strings (`r##"..."##`) and
//! nested `/* /* */ */` block comments.

/// One physical line, split into channels.
#[derive(Debug, Default, Clone)]
pub struct LineInfo {
    pub code: String,
    pub comment: String,
    /// Contents of string literals that *start* on this line (escape
    /// sequences kept verbatim). Rules that inspect literal payloads — like
    /// `metric-name` — read this channel; the code channel only keeps the
    /// quotes.
    pub strings: Vec<String>,
    /// Inside a `#[cfg(test)]` item body (or the attribute/header lines of
    /// one) — lint rules skip these lines.
    pub in_test: bool,
    /// Inside the brace span of an item whose leading comment block carries
    /// a `// HOT:` marker — the `hot-path-alloc` rule applies here.
    pub in_hot: bool,
}

#[derive(Debug, Default)]
pub struct LexState {
    /// Nesting depth of `/* */` block comments (Rust block comments nest).
    block_comment: usize,
    /// Inside an unterminated `"` string continued on the next line.
    in_string: bool,
    /// Inside a raw string; the payload is the `#` count of its delimiter.
    in_raw_string: Option<usize>,
}

/// Lex one physical line into (code, comment, string-literal contents),
/// updating cross-line state. Only literals that *start* on this line are
/// collected; a literal left open at end of line yields its first-line
/// fragment (metric names never wrap).
pub fn lex_line(line: &str, st: &mut LexState) -> (String, String, Vec<String>) {
    let chars: Vec<char> = line.chars().collect();
    let n = chars.len();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings = Vec::new();
    // Payload of the literal currently being collected; `None` while outside
    // a literal or inside one continued from a previous line.
    let mut lit: Option<String> = None;
    let mut i = 0;

    while i < n {
        if st.block_comment > 0 {
            if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                st.block_comment -= 1;
                i += 2;
            } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                st.block_comment += 1;
                i += 2;
            } else {
                comment.push(chars[i]);
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = st.in_raw_string {
            // Close on `"` followed by at least `hashes` `#` characters,
            // consuming exactly the delimiter (`1 + hashes` chars) — any
            // surplus `#` is ordinary code, as in Rust itself.
            if chars[i] == '"' && chars[i + 1..].iter().take_while(|c| **c == '#').count() >= hashes
            {
                st.in_raw_string = None;
                if let Some(s) = lit.take() {
                    strings.push(s);
                }
                // Represent the closing delimiter with the quote the opener
                // did not emit, so quote-counting heuristics stay balanced.
                code.push('"');
                i += 1 + hashes;
            } else {
                if let Some(s) = lit.as_mut() {
                    s.push(chars[i]);
                }
                i += 1;
            }
            continue;
        }
        if st.in_string {
            if chars[i] == '\\' {
                if let Some(s) = lit.as_mut() {
                    s.push(chars[i]);
                    if i + 1 < n {
                        s.push(chars[i + 1]);
                    }
                }
                i += 2;
            } else if chars[i] == '"' {
                st.in_string = false;
                if let Some(s) = lit.take() {
                    strings.push(s);
                }
                code.push('"');
                i += 1;
            } else {
                if let Some(s) = lit.as_mut() {
                    s.push(chars[i]);
                }
                i += 1;
            }
            continue;
        }
        match chars[i] {
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                comment.push_str(&line[line.char_indices().nth(i).map_or(0, |(b, _)| b)..]);
                i = n;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                st.block_comment += 1;
                i += 2;
            }
            'r' | 'b'
                if raw_string_hashes(&chars[i..]).is_some()
                    // Not part of a longer identifier like `avatar"`.
                    && (i == 0 || !is_ident_char(chars[i - 1])) =>
            {
                let (prefix_len, hashes) =
                    raw_string_hashes(&chars[i..]).expect("checked by guard");
                code.push('"');
                st.in_raw_string = Some(hashes);
                lit = Some(String::new());
                i += prefix_len;
            }
            '"' => {
                code.push('"');
                st.in_string = true;
                lit = Some(String::new());
                i += 1;
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // chars; a lifetime is `'` + identifier with no closing `'`.
                if i + 1 < n && chars[i + 1] == '\\' {
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    code.push_str("' '");
                    i += 1;
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    code.push_str("' '");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    // Literal still open at end of line: keep its first-line fragment.
    if let Some(s) = lit {
        strings.push(s);
    }
    (code, comment, strings)
}

/// Detect `r"`, `r#"`, `br##"`, ... at the slice start. Returns
/// (prefix length in chars, hash count).
pub fn raw_string_hashes(chars: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    if chars.first() == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let hashes = chars[i..].iter().take_while(|c| **c == '#').count();
    i += hashes;
    if chars.get(i) == Some(&'"') {
        Some((i + 1, hashes))
    } else {
        None
    }
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex the whole file and mark `#[cfg(test)]` regions.
pub fn preprocess(src: &str) -> Vec<LineInfo> {
    let mut st = LexState::default();
    let mut lines = Vec::new();
    // Test-region tracking: once `#[cfg(test)]` is seen, everything up to
    // and including the item's closing brace is test code. `region_depth`
    // is the brace depth *outside* the item; the region ends when depth
    // falls back to it.
    let mut depth = 0usize;
    let mut pending_test = false;
    let mut test_region_depth: Option<usize> = None;
    // `// HOT:` tracking mirrors the test-region tracking: the marker arms
    // a pending flag, the next opening brace starts the region, and the
    // region ends when depth falls back to where it started.
    let mut pending_hot = false;
    let mut hot_region_depth: Option<usize> = None;

    for raw in src.lines() {
        let (code, comment, strings) = lex_line(raw, &mut st);
        let code_trim = code.trim();

        if test_region_depth.is_none()
            && (code_trim.contains("#[cfg(test)]")
                || code_trim.contains("#[cfg(all(test")
                || code_trim.contains("#[cfg(any(test"))
        {
            pending_test = true;
        }
        if hot_region_depth.is_none() && comment.contains("HOT:") {
            pending_hot = true;
        }

        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if pending_test && opens > 0 {
            test_region_depth = Some(depth);
            pending_test = false;
        }
        if pending_hot && opens > 0 {
            hot_region_depth = Some(depth);
            pending_hot = false;
        }
        depth = (depth + opens).saturating_sub(closes);

        let in_test = pending_test || test_region_depth.is_some();
        let in_hot = hot_region_depth.is_some();
        lines.push(LineInfo {
            code,
            comment,
            strings,
            in_test,
            in_hot,
        });

        if let Some(rd) = test_region_depth {
            if depth <= rd {
                test_region_depth = None;
            }
        }
        if let Some(rd) = hot_region_depth {
            if depth <= rd {
                hot_region_depth = None;
            }
        }
    }
    lines
}

/// True when the comment channel of `line_idx` or the contiguous
/// comment/attribute block directly above it contains `needle`.
pub fn comment_block_contains(lines: &[LineInfo], line_idx: usize, needles: &[&str]) -> bool {
    let hit = |s: &str| needles.iter().any(|n| s.contains(n));
    if hit(&lines[line_idx].comment) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let li = &lines[i];
        let code = li.code.trim();
        if code.is_empty() && !li.comment.trim().is_empty() {
            // Comment-only line: part of the block.
            if hit(&li.comment) {
                return true;
            }
        } else if code.starts_with("#[") || code.starts_with("#![") {
            // Attributes sit between the comment and the item.
            if hit(&li.comment) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

pub fn allowed(lines: &[LineInfo], line_idx: usize, rule: &str) -> bool {
    let marker = format!("analysis:allow({rule})");
    comment_block_contains(lines, line_idx, &[&marker])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channels(src: &str) -> Vec<(String, String)> {
        preprocess(src)
            .into_iter()
            .map(|li| (li.code, li.comment))
            .collect()
    }

    #[test]
    fn multi_hash_raw_string_swallows_inner_delimiters() {
        // `"#` inside an `r##"..."##` literal must not close it: everything
        // up to `"##` is literal payload, and the payload lands in the
        // string channel, not the code or comment channel.
        let src = "let s = r##\"has \"# inner and // not a comment\"##;\nlet t = x.unwrap();\n";
        let lines = preprocess(src);
        assert_eq!(lines[0].code, "let s = \"\";", "payload must be stripped");
        assert!(lines[0].comment.is_empty(), "payload leaked into comments");
        assert_eq!(
            lines[0].strings,
            vec!["has \"# inner and // not a comment".to_string()]
        );
        // The next line is back in sync: real code again.
        assert_eq!(lines[1].code, "let t = x.unwrap();");
    }

    #[test]
    fn multi_hash_raw_string_spanning_lines_resyncs() {
        let src =
            "let s = r##\"first\nmiddle \"# still inside\nend\"##; let x = f();\nlet y = g();\n";
        let lines = channels(src);
        assert_eq!(lines[0].0, "let s = \"");
        assert!(lines[1].0.is_empty(), "interior line is all literal");
        assert_eq!(lines[2].0, "\"; let x = f();");
        assert_eq!(lines[3].0, "let y = g();");
    }

    #[test]
    fn raw_string_surplus_hashes_stay_code() {
        // `r#"a"##` closes at `"#`; the surplus `#` is ordinary code.
        let src = "let s = r#\"a\"##;\n";
        let lines = channels(src);
        assert_eq!(lines[0].0, "let s = \"\"#;");
    }

    #[test]
    fn raw_string_comment_markers_do_not_arm_regions() {
        // `// HOT:` and `#[cfg(test)]` inside a raw string are payload, not
        // markers: the following function stays lintable.
        let src =
            "let s = r##\"\n// HOT: not a marker\n#[cfg(test)]\n\"##;\nfn f() {\n    g();\n}\n";
        let lines = preprocess(src);
        assert!(lines.iter().all(|li| !li.in_test), "{lines:?}");
        assert!(lines.iter().all(|li| !li.in_hot), "{lines:?}");
    }

    #[test]
    fn nested_block_comments_single_line() {
        let src = "/* outer /* inner */ tail */ let x = f();\n";
        let lines = channels(src);
        assert_eq!(lines[0].0.trim(), "let x = f();");
        assert!(lines[0].1.contains("outer"));
        assert!(lines[0].1.contains("inner"));
        assert!(lines[0].1.contains("tail"));
    }

    #[test]
    fn nested_block_comments_spanning_lines() {
        // The inner `*/` must only close the inner comment; code resumes
        // after the outer close two lines later.
        let src = "/* outer /* inner */\nstill comment */ let x = f();\nlet y = g();\n";
        let lines = channels(src);
        assert!(lines[0].0.trim().is_empty(), "{lines:?}");
        assert_eq!(lines[1].0.trim(), "let x = f();");
        assert_eq!(lines[2].0.trim(), "let y = g();");
    }

    #[test]
    fn block_comment_openers_inside_raw_strings_are_payload() {
        let src = "let s = r#\"/* not a comment\"#; let x = f();\nlet y = g();\n";
        let lines = channels(src);
        assert_eq!(lines[0].0, "let s = \"\"; let x = f();");
        assert_eq!(lines[1].0, "let y = g();");
    }

    #[test]
    fn raw_string_quote_representation_is_balanced() {
        // Openers emit one quote and closers the other, so code-channel
        // quote counts stay even (brace/quote heuristics depend on this).
        for src in [
            "let s = r\"x\";\n",
            "let s = r#\"x\"#;\n",
            "let s = br##\"x\"##;\n",
            "let s = \"x\";\n",
        ] {
            let lines = channels(src);
            let quotes = lines[0].0.matches('"').count();
            assert_eq!(quotes, 2, "{src:?} -> {:?}", lines[0].0);
        }
    }

    #[test]
    fn byte_strings_and_identifiers_ending_in_r_or_b() {
        let src = "let a = b\"bytes\"; let avatar = r; let grab = b;\n";
        let lines = preprocess(src);
        assert_eq!(lines[0].strings, vec!["bytes".to_string()]);
        assert!(lines[0].code.contains("let avatar = r"));
    }

    #[test]
    fn nested_comment_cannot_smuggle_cfg_test_into_code() {
        // If the inner `*/` wrongly closed the outer comment, the
        // `#[cfg(test)]` text would land in the code channel and disarm
        // every rule for the following item.
        let src = "/* /* */ #[cfg(test)] */\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let lines = preprocess(src);
        assert!(lines[0].code.trim().is_empty(), "{:?}", lines[0].code);
        assert!(!lines[1].in_test);
    }

    #[test]
    fn line_comment_inside_block_comment_does_not_end_it() {
        let src = "/* // line marker inside\nstill */ let x = f();\n";
        let lines = channels(src);
        assert!(lines[0].0.trim().is_empty());
        assert_eq!(lines[1].0.trim(), "let x = f();");
    }
}
