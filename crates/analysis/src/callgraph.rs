//! Name-resolved intra-workspace call graph over the parsed facts.
//!
//! Resolution is deliberately over-approximate (documented in DESIGN.md
//! §13): method calls resolve by name + arity to *every* workspace method
//! that matches, bare calls resolve in tiers (same file → same crate →
//! whole workspace), and qualified paths (`storage::Table::open`) must
//! additionally match the candidate's self type, module, or crate. The
//! rules built on top treat an edge as "may call" — good enough to prove
//! absence (no reachable panic, no deadline-dropping scan, no lock-order
//! cycle) at the cost of occasional false positives that the
//! `analysis:allow` annotations absorb.

use crate::parse::{FnItem, ParsedFile};
use std::collections::{HashMap, VecDeque};

/// The whole-workspace graph: flattened functions plus resolved edges.
pub struct CallGraph {
    pub fns: Vec<FnItem>,
    /// `edges[i]` = indices of functions that `fns[i]` may call, in call
    /// order, deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// For each edge `(i, j)` the index into `fns[i].calls` that produced
    /// it (first occurrence), for line/held-lock lookups.
    pub edge_call: HashMap<(usize, usize), usize>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from every parsed file in the workspace.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let fns: Vec<FnItem> = files.iter().flat_map(|f| f.fns.iter().cloned()).collect();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut g = CallGraph {
            edges: vec![Vec::new(); fns.len()],
            edge_call: HashMap::new(),
            fns,
            by_name,
        };
        for i in 0..g.fns.len() {
            g.resolve_edges(i);
        }
        g
    }

    /// Candidate callees for call site `c` of function `i`.
    pub fn resolve(&self, i: usize, c: usize) -> Vec<usize> {
        let caller = &self.fns[i];
        let call = &caller.calls[c];
        let name = match call.path.last() {
            Some(n) => n,
            None => return Vec::new(),
        };
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };

        if call.method {
            // `recv.name(a, b)` — any workspace method with a receiver and
            // matching arity may be the target.
            return cands
                .iter()
                .copied()
                .filter(|&j| self.fns[j].has_self && self.fns[j].params.len() == call.args)
                .collect();
        }

        if call.path.len() >= 2 {
            // Qualified path: the segment before the name must match the
            // candidate's self type, trailing module segment, or crate.
            let qual = &call.path[call.path.len() - 2];
            let qual = if qual == "Self" {
                caller.self_ty.as_deref().unwrap_or(qual)
            } else {
                qual
            };
            return cands
                .iter()
                .copied()
                .filter(|&j| {
                    let f = &self.fns[j];
                    let arity_ok = (!f.has_self && f.params.len() == call.args)
                        // UFCS: `Type::method(recv, ..)`.
                        || (f.has_self && f.params.len() + 1 == call.args);
                    arity_ok
                        && (f.self_ty.as_deref() == Some(qual)
                            || f.module.last().map(String::as_str) == Some(qual)
                            || f.crate_name == qual
                            || qual == "self" // `self::helper(..)`
                            || qual == "super"
                            || qual == "crate")
                })
                .collect();
        }

        // Bare call: prefer same-file, then same-crate, then workspace.
        let matches: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&j| !self.fns[j].has_self && self.fns[j].params.len() == call.args)
            .collect();
        for narrower in [
            matches
                .iter()
                .copied()
                .filter(|&j| self.fns[j].file == caller.file)
                .collect::<Vec<_>>(),
            matches
                .iter()
                .copied()
                .filter(|&j| self.fns[j].crate_name == caller.crate_name)
                .collect::<Vec<_>>(),
        ] {
            if !narrower.is_empty() {
                return narrower;
            }
        }
        matches
    }

    fn resolve_edges(&mut self, i: usize) {
        let n_calls = self.fns[i].calls.len();
        let mut out = Vec::new();
        for c in 0..n_calls {
            for j in self.resolve(i, c) {
                if !out.contains(&j) {
                    out.push(j);
                    self.edge_call.insert((i, j), c);
                }
            }
        }
        self.edges[i] = out;
    }

    /// Indices of functions with the given name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// BFS from `roots`, returning for each reached function the index of
    /// the function it was first reached from (`usize::MAX` for roots).
    /// `filter` prunes traversal (a pruned function is neither visited nor
    /// expanded).
    pub fn reach(&self, roots: &[usize], filter: impl Fn(usize) -> bool) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if filter(r) && !parent.contains_key(&r) {
                parent.insert(r, usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if filter(j) && !parent.contains_key(&j) {
                    parent.insert(j, i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// Reconstruct the root → … → `target` chain from a `reach` parent
    /// map, as qualified names per hop.
    pub fn chain(&self, parent: &HashMap<usize, usize>, target: usize) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == usize::MAX {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter().map(|&i| self.fns[i].qualified()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<_> = files.iter().map(|(p, s)| parse_source(p, s)).collect();
        CallGraph::build(&parsed)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.named(name)[0]
    }

    #[test]
    fn bare_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn go() { helper() }\nfn helper() {}\n",
            ),
            ("crates/a/src/other.rs", "fn helper() {}\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let go = idx(&g, "go");
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(g.fns[g.edges[go][0]].file, "crates/a/src/lib.rs");
    }

    #[test]
    fn cross_crate_bare_calls_fall_through_to_workspace() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn go() { helper(1) }\n"),
            ("crates/b/src/lib.rs", "fn helper(n: u32) {}\n"),
        ]);
        let go = idx(&g, "go");
        assert_eq!(g.edges[go], vec![idx(&g, "helper")]);
    }

    #[test]
    fn method_calls_over_approximate_by_name_and_arity() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "struct A; impl A { fn run(&self, n: u32) {} }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "struct B; impl B { fn run(&self, n: u32) {} fn run_other(&self) {} }\nfn go(b: &B) { b.run(1) }\n",
            ),
        ]);
        let go = idx(&g, "go");
        // Both `run` methods match (arity 1); `run_other` does not.
        assert_eq!(g.edges[go].len(), 2, "{:?}", g.edges[go]);
    }

    #[test]
    fn qualified_paths_filter_by_type_module_or_crate() {
        let g = graph(&[
            (
                "crates/storage/src/table.rs",
                "pub struct Table;\nimpl Table { pub fn open(p: u32) {} }\n",
            ),
            (
                "crates/online/src/lib.rs",
                "pub struct Table;\nimpl Table { pub fn open(p: u32, q: u32) {} }\nfn go() { storage::Table::open(1); }\n",
            ),
        ]);
        let go = idx(&g, "go");
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(g.fns[g.edges[go][0]].crate_name, "storage");
    }

    #[test]
    fn self_paths_resolve_through_the_impl_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n    fn a(&self) { Self::b(1) }\n    fn b(n: u32) {}\n}\n",
        )]);
        let a = idx(&g, "a");
        assert_eq!(g.edges[a], vec![idx(&g, "b")]);
    }

    #[test]
    fn reach_and_chain_reconstruct_paths() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid() }\nfn mid() { leaf() }\nfn leaf() {}\nfn stray() {}\n",
        )]);
        let root = idx(&g, "root");
        let leaf = idx(&g, "leaf");
        let parent = g.reach(&[root], |_| true);
        assert!(parent.contains_key(&leaf));
        assert!(!parent.contains_key(&idx(&g, "stray")));
        assert_eq!(
            g.chain(&parent, leaf),
            vec![
                "a::root".to_string(),
                "a::mid".to_string(),
                "a::leaf".to_string()
            ]
        );
    }

    #[test]
    fn reach_filter_prunes_subtrees() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid() }\nfn mid() { leaf() }\nfn leaf() {}\n",
        )]);
        let root = idx(&g, "root");
        let mid = idx(&g, "mid");
        let parent = g.reach(&[root], |i| i != mid);
        assert!(!parent.contains_key(&idx(&g, "leaf")));
    }
}
