//! SARIF 2.1.0 output for GitHub code scanning.
//!
//! Hand-rolled JSON, like the text report: the workspace is offline and
//! carries no serialization dependency. New violations are `error`-level
//! results; baselined debt is emitted at `note` level so code scanning
//! shows the full picture without failing the check. The content
//! fingerprint rides along in `partialFingerprints` so GitHub's dedup
//! lines up with the local baseline.

use crate::{BaselineOutcome, Violation, RULES};
use std::fmt::Write;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn rule_description(rule: &str) -> &'static str {
    match rule {
        "safety-comment" => "unsafe blocks need a // SAFETY: comment",
        "relaxed-ordering" => "Ordering::Relaxed needs a justifying comment",
        "panic-path" => "no unwrap/expect/panic in HOT regions",
        "lossy-cast" => "no as-casts that can drop bits on data paths",
        "metric-name" => "metric names must be snake_case with a unit suffix",
        "hot-path-alloc" => "no allocation idioms in HOT regions",
        "deadline-reachability" => {
            "request-path functions that reach storage scans must thread a Deadline"
        }
        "panic-freedom" => "nothing reachable from a HOT function may panic",
        "lock-order" => "nested lock acquisitions must form a consistent order",
        _ => "workspace lint",
    }
}

fn write_result(out: &mut String, v: &Violation, level: &str) {
    let _ = write!(
        out,
        "      {{\n        \"ruleId\": \"{}\",\n        \"level\": \"{}\",\n        \"message\": {{\"text\": \"{}",
        v.rule,
        level,
        esc(&v.excerpt)
    );
    if !v.chain.is_empty() {
        let _ = write!(out, "\\n\\nCall chain:\\n  {}", esc(&v.chain.join("\n  ")));
    }
    let _ = write!(
        out,
        "\"}},\n        \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}],\n        \"partialFingerprints\": {{\"openmldbAnalysis/v1\": \"{}\"}}\n      }}",
        esc(&v.path),
        v.line.max(1),
        esc(&v.fingerprint())
    );
}

/// Render the scan outcome as a single-run SARIF log.
pub fn render_sarif(outcome: &BaselineOutcome) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"openmldb-analysis\",\n          \"informationUri\": \"https://github.com/4paradigm/OpenMLDB\",\n          \"rules\": [\n",
    );
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r,
            esc(rule_description(r))
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [\n");
    let mut first = true;
    for (level, v) in outcome
        .new
        .iter()
        .map(|v| ("error", v))
        .chain(outcome.baselined.iter().map(|v| ("note", v)))
    {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write_result(&mut out, v, level);
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_baseline;
    use std::collections::HashMap;

    #[test]
    fn sarif_contains_rule_result_and_fingerprint() {
        let v = Violation {
            rule: "panic-freedom",
            path: "crates/exec/src/run.rs".into(),
            line: 7,
            excerpt: "HOT exec::step reaches exec::leaf: unwrap()".into(),
            chain: vec![
                "exec::step".into(),
                "exec::leaf".into(),
                "unwrap() at crates/exec/src/run.rs:9".into(),
            ],
        };
        let outcome = apply_baseline(std::slice::from_ref(&v), &HashMap::new());
        let sarif = render_sarif(&outcome);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"panic-freedom\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("Call chain"));
        assert!(sarif.contains(&esc(&v.fingerprint())));
        // Every declared rule is present in the driver metadata.
        for r in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{r}\"")), "{r}");
        }
    }

    #[test]
    fn baselined_findings_downgrade_to_note() {
        let v = Violation {
            rule: "lossy-cast",
            path: "crates/types/src/codec.rs".into(),
            line: 3,
            excerpt: "x as u32".into(),
            chain: Vec::new(),
        };
        let baseline = HashMap::from([(v.fingerprint(), 1usize)]);
        let outcome = apply_baseline(std::slice::from_ref(&v), &baseline);
        let sarif = render_sarif(&outcome);
        assert!(sarif.contains("\"level\": \"note\""));
        assert!(!sarif.contains("\"level\": \"error\""));
    }
}
