//! Source-level lints for the concurrency-sensitive parts of the workspace.
//!
//! The compiler enforces memory safety; these lints enforce the *project
//! conventions* that keep the unsafe and atomic-heavy code reviewable:
//!
//! * `safety-comment` — every `unsafe` token in non-test code must carry a
//!   `// SAFETY:` (or `# Safety` doc section) justification in the comment
//!   block directly above it or on the same line.
//! * `relaxed-ordering` — `Ordering::Relaxed` in `crates/storage/src` is
//!   suspect by default: relaxed loads/stores on skiplist link pointers are
//!   exactly the bug class the schedule explorer hunts. Counters, RNG seeds
//!   and pre-publication stores opt out with an
//!   `// analysis:allow(relaxed-ordering): <reason>` annotation.
//! * `panic-path` — no `.unwrap()` / `.expect(` in non-test code of the
//!   hot-path crates (`storage`, `online`, `exec`); a panic inside a request
//!   path tears down a worker thread. Provably-unreachable sites opt out
//!   with `// analysis:allow(panic-path): <reason>`.
//! * `lossy-cast` — narrowing `as` casts in the type codec
//!   (`crates/types/src/codec`) silently truncate row data; use `try_from`
//!   or annotate with `// analysis:allow(lossy-cast): <reason>`.
//! * `hot-path-alloc` — a `// HOT:` comment directly above an item marks it
//!   as steady-state request-path code; inside the item's brace span,
//!   `.clone()`, `.to_vec()` and `Vec::new()` are flagged in the hot-path
//!   crates (`storage`, `online`, `exec`). The streaming scan→aggregate
//!   pipeline's zero-allocation contract is enforced by the bench gate at
//!   runtime; this rule stops allocating idioms from creeping back in at
//!   review time. Deliberate cold branches (cold-start growth, error paths)
//!   opt out with `// analysis:allow(hot-path-alloc): <reason>`.
//! * `metric-name` — string literals registering observability metrics must
//!   follow `openmldb_<crate>_<name>_<unit>` (the convention documented in
//!   `crates/obs`); a malformed name silently fragments dashboards. Applies
//!   to every engine crate; `crates/obs` (defines the convention) and this
//!   crate (quotes prefixes) are exempt. Opt out with
//!   `// analysis:allow(metric-name): <reason>`.
//!
//! Existing, reviewed debt lives in a baseline file keyed by a
//! line-content fingerprint (not line numbers, so code motion does not
//! churn it). The lint fails only when a fingerprint's violation count
//! *grows* beyond the baseline; shrinkage is reported as stale-baseline
//! info so the file can be re-curated.
//!
//! The scanner is a line-oriented lexer, not a full parser: it strips
//! strings, char literals and comments (tracking multi-line block comments
//! and raw strings across lines), tracks `#[cfg(test)]` regions by brace
//! depth, and keeps the comment text separately so the SAFETY / allow
//! annotations can be matched against the comment channel only.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;

use lexer::{allowed, comment_block_contains, is_ident_char, preprocess};

/// Rule identifiers, in report order. The first six are line rules; the
/// last three are the call-graph rules implemented in [`rules`].
pub const RULES: [&str; 9] = [
    "safety-comment",
    "relaxed-ordering",
    "panic-path",
    "lossy-cast",
    "metric-name",
    "hot-path-alloc",
    "deadline-reachability",
    "panic-freedom",
    "lock-order",
];

/// One lint hit at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending code line, trimmed (for `metric-name`: the offending
    /// literal itself, so each bad name fingerprints separately; for graph
    /// rules: a stable description of the finding, line-number free).
    pub excerpt: String,
    /// For call-graph rules: the root → … → sink call chain (qualified
    /// function names). Excluded from the fingerprint so intermediate
    /// refactors do not churn the baseline.
    pub chain: Vec<String>,
}

impl Violation {
    /// Baseline key: content-addressed, line-number free, whitespace
    /// collapsed so reformatting does not churn the baseline.
    pub fn fingerprint(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, normalize(&self.excerpt))
    }
}

fn normalize(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut last_space = true;
    for ch in code.trim().chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(ch);
            last_space = false;
        }
    }
    out
}

/// Word-boundary search for `word` in `code`.
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok =
            abs == 0 || !is_ident_char(code[..abs].chars().next_back().expect("abs > 0"));
        let after = abs + word.len();
        let after_ok =
            after >= code.len() || !is_ident_char(code[after..].chars().next().expect("in range"));
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Cast targets that can drop value bits. Widening targets (`u64`, `i64`,
/// `f64`) are deliberately absent; `usize`/`isize` are included because
/// their width is platform-dependent.
const LOSSY_CAST_TARGETS: [&str; 9] = [
    "u8", "i8", "u16", "i16", "u32", "i32", "f32", "usize", "isize",
];

fn has_lossy_cast(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let abs = start + pos;
        let tail = code[abs + 4..].trim_start();
        let ty: String = tail.chars().take_while(|c| is_ident_char(*c)).collect();
        if LOSSY_CAST_TARGETS.contains(&ty.as_str()) {
            return true;
        }
        start = abs + 4;
    }
    false
}

/// Metric naming convention, mirrored from `crates/obs`: the lint must not
/// depend on the crate it audits, so the lists are duplicated here and the
/// obs unit tests pin both sides to the same convention.
const METRIC_CRATES: [&str; 8] = [
    "online", "core", "storage", "exec", "sql", "bench", "obs", "chaos",
];
const METRIC_UNITS: [&str; 8] = [
    "total", "bytes", "ns", "ms", "seconds", "ratio", "rows", "count",
];
const METRIC_LABEL_KEYS: [&str; 5] = ["deployment", "worker", "key", "quantile", "stage"];

/// Undo source-literal artifacts before validating a metric-name literal:
/// the lexer keeps `\"` escapes verbatim, and literals destined for
/// `format!` double their braces (`{{worker=\"{w}\"}}`). Interpolation
/// placeholders like `{w}` survive normalization — legal in a label *value*
/// (it stays quoted), flagged in key position (a dynamic label key defeats
/// the closed vocabulary).
fn normalize_metric_literal(lit: &str) -> String {
    let unescaped = lit.replace("\\\"", "\"");
    let mut out = String::with_capacity(unescaped.len());
    let mut chars = unescaped.chars().peekable();
    while let Some(c) = chars.next() {
        if (c == '{' || c == '}') && chars.peek() == Some(&c) {
            chars.next();
        }
        out.push(c);
    }
    out
}

/// Checks `openmldb_<crate>_<name>_<unit>` plus an optional
/// `{key="value",...}` label suffix whose keys must come from the closed
/// [`METRIC_LABEL_KEYS`] vocabulary. Mirrors
/// `openmldb_obs::validate_metric_name` after normalizing source-literal
/// escapes.
fn valid_metric_name(name: &str) -> bool {
    let name = normalize_metric_literal(name);
    let base = name.split('{').next().unwrap_or(&name);
    let Some(rest) = base.strip_prefix("openmldb_") else {
        return false;
    };
    let Some((crate_seg, tail)) = rest.split_once('_') else {
        return false;
    };
    if !METRIC_CRATES.contains(&crate_seg) {
        return false;
    }
    let Some((stem, unit)) = tail.rsplit_once('_') else {
        return false;
    };
    if stem.is_empty() || !METRIC_UNITS.contains(&unit) {
        return false;
    }
    if !base
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    valid_label_suffix(&name[base.len()..])
}

/// Mirrors `openmldb_obs::validate_label_suffix`: empty is fine, otherwise
/// every `key="value"` pair needs a vocabulary key and a double-quoted
/// value with no embedded `"`.
fn valid_label_suffix(suffix: &str) -> bool {
    if suffix.is_empty() {
        return true;
    }
    let Some(inner) = suffix.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return false;
    };
    if inner.is_empty() {
        return false;
    }
    inner.split(',').all(|pair| {
        let Some((k, v)) = pair.split_once('=') else {
            return false;
        };
        METRIC_LABEL_KEYS.contains(&k)
            && v.len() >= 2
            && v.starts_with('"')
            && v.ends_with('"')
            && !v[1..v.len() - 1].contains('"')
    })
}

/// Which rules apply to a repo-relative path.
fn rules_for(path: &str) -> Vec<&'static str> {
    let mut rules = Vec::new();
    if path.starts_with("crates/") && path.contains("/src/") {
        rules.push("safety-comment");
    }
    if path.starts_with("crates/")
        && path.contains("/src/")
        // obs defines the convention (its validator quotes the bare prefix);
        // this crate mirrors it. Both would self-flag.
        && !path.starts_with("crates/obs/src/")
        && !path.starts_with("crates/analysis/src/")
    {
        rules.push("metric-name");
    }
    if path.starts_with("crates/storage/src/") {
        rules.push("relaxed-ordering");
    }
    if path.starts_with("crates/storage/src/")
        || path.starts_with("crates/online/src/")
        || path.starts_with("crates/exec/src/")
        // The serving path now spans core (request dispatch, failover
        // registry) and chaos (inlined into every injection site): a panic
        // there takes down the same requests a storage panic would.
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/chaos/src/")
    {
        rules.push("panic-path");
    }
    if path.starts_with("crates/types/src/codec") {
        rules.push("lossy-cast");
    }
    if path.starts_with("crates/storage/src/")
        || path.starts_with("crates/online/src/")
        || path.starts_with("crates/exec/src/")
    {
        rules.push("hot-path-alloc");
    }
    rules
}

/// Allocating idioms banned inside `// HOT:` regions. `.clone()` covers
/// `Arc` bumps too — cheap, but an `Arc` clone on the per-row path usually
/// means a borrowed read was available; annotate the deliberate ones.
/// `format!` / `vec![` / `String::new()` / `Box::new(` / `.to_string()`
/// each allocate on every evaluation; an error-message `format!` on a
/// result path that is *usually* `Ok` still belongs behind a cold branch
/// (`ok_or_else`, not `ok_or`) or an explicit allow.
const HOT_ALLOC_IDIOMS: [&str; 8] = [
    ".clone()",
    ".to_vec()",
    "Vec::new()",
    "format!",
    "vec![",
    "String::new()",
    "Box::new(",
    ".to_string()",
];

fn has_hot_alloc(code: &str) -> bool {
    HOT_ALLOC_IDIOMS.iter().any(|idiom| code.contains(idiom))
}

/// Scan one file's source. `rel_path` selects the applicable rules.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let rules = rules_for(rel_path);
    if rules.is_empty() {
        return Vec::new();
    }
    let lines = preprocess(src);
    let mut out = Vec::new();
    let mut violate = |rule: &'static str, idx: usize, code: &str| {
        out.push(Violation {
            rule,
            path: rel_path.to_string(),
            line: idx + 1,
            excerpt: code.trim().to_string(),
            chain: Vec::new(),
        });
    };

    for (idx, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let code = &li.code;
        if code.trim().is_empty() {
            continue;
        }
        if rules.contains(&"safety-comment")
            && contains_word(code, "unsafe")
            && !comment_block_contains(&lines, idx, &["SAFETY", "# Safety"])
            && !allowed(&lines, idx, "safety-comment")
        {
            violate("safety-comment", idx, code);
        }
        if rules.contains(&"relaxed-ordering")
            && code.contains("Ordering::Relaxed")
            && !allowed(&lines, idx, "relaxed-ordering")
        {
            violate("relaxed-ordering", idx, code);
        }
        if rules.contains(&"panic-path")
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(&lines, idx, "panic-path")
        {
            violate("panic-path", idx, code);
        }
        if rules.contains(&"lossy-cast")
            && has_lossy_cast(code)
            && !allowed(&lines, idx, "lossy-cast")
        {
            violate("lossy-cast", idx, code);
        }
        if rules.contains(&"hot-path-alloc")
            && li.in_hot
            && has_hot_alloc(code)
            && !allowed(&lines, idx, "hot-path-alloc")
        {
            violate("hot-path-alloc", idx, code);
        }
        if rules.contains(&"metric-name") {
            for lit in &li.strings {
                // Only literals claiming the metric namespace are checked;
                // the excerpt is the offending name so distinct names get
                // distinct baseline fingerprints.
                if lit.starts_with("openmldb_")
                    && !valid_metric_name(lit)
                    && !allowed(&lines, idx, "metric-name")
                {
                    violate("metric-name", idx, lit);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Repository walk
// ---------------------------------------------------------------------------

/// All `crates/*/src/**/*.rs` files under `root`, repo-relative, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for krate in read_dir_sorted(&crates)? {
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole repository rooted at `root` with the line rules only.
pub fn scan_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for (rel, src) in read_sources(root)? {
        all.extend(scan_source(&rel, &src));
    }
    Ok(all)
}

/// Read every workspace source as `(repo-relative path, contents)`.
pub fn read_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    Ok(out)
}

/// Full analysis: line rules plus the three call-graph rules
/// (deadline-reachability, panic-freedom, lock-order).
pub fn analyze_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let sources = read_sources(root)?;
    let mut all = Vec::new();
    for (rel, src) in &sources {
        all.extend(scan_source(rel, src));
    }
    all.extend(rules::graph_scan(&sources));
    Ok(all)
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Outcome of comparing a scan against the curated baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Violations covered by the baseline (accepted debt).
    pub baselined: Vec<Violation>,
    /// Violations beyond the baseline: these fail the run.
    pub new: Vec<Violation>,
    /// Baseline fingerprints whose count shrank (or vanished): stale debt
    /// entries, reported so the baseline can be re-curated. `(fingerprint,
    /// baseline_count, current_count)`.
    pub stale: Vec<(String, usize, usize)>,
}

/// Parse the baseline text: `<count>\t<fingerprint>` per line, `#` comments.
pub fn parse_baseline(text: &str) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((count, fp)) = line.split_once('\t') {
            if let Ok(count) = count.trim().parse::<usize>() {
                *map.entry(fp.to_string()).or_insert(0) += count;
            }
        }
    }
    map
}

/// Serialize the violation set as a fresh baseline (sorted, deduplicated).
pub fn render_baseline(violations: &[Violation]) -> String {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for v in violations {
        *counts.entry(v.fingerprint()).or_insert(0) += 1;
    }
    let mut entries: Vec<(String, usize)> = counts.into_iter().collect();
    entries.sort();
    let mut out = String::from(
        "# Curated lint debt. One entry per accepted violation:\n\
         # <count>\\t<rule>|<path>|<normalized line>\n\
         # Regenerate with: cargo run -p openmldb-analysis -- lint --write-baseline\n",
    );
    for (fp, count) in entries {
        let _ = writeln!(out, "{count}\t{fp}");
    }
    out
}

/// Split violations into baselined vs new, and find stale baseline entries.
pub fn apply_baseline(
    violations: &[Violation],
    baseline: &HashMap<String, usize>,
) -> BaselineOutcome {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut out = BaselineOutcome::default();
    for v in violations {
        let fp = v.fingerprint();
        let n = seen.entry(fp.clone()).or_insert(0);
        *n += 1;
        if *n <= baseline.get(&fp).copied().unwrap_or(0) {
            out.baselined.push(v.clone());
        } else {
            out.new.push(v.clone());
        }
    }
    let mut stale: Vec<(String, usize, usize)> = baseline
        .iter()
        .filter_map(|(fp, b)| {
            let cur = seen.get(fp).copied().unwrap_or(0);
            (cur < *b).then(|| (fp.clone(), *b, cur))
        })
        .collect();
    stale.sort();
    out.stale = stale;
    out
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report (hand-rolled JSON; the workspace is offline and
/// carries no serialization dependency).
pub fn render_report(outcome: &BaselineOutcome) -> String {
    let mut out = String::from("{\n  \"tool\": \"openmldb-analysis\",\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{r}\"");
    }
    let total = outcome.baselined.len() + outcome.new.len();
    let _ = write!(
        out,
        "],\n  \"total\": {}, \"baselined\": {}, \"new\": {}, \"stale_baseline_entries\": {},\n",
        total,
        outcome.baselined.len(),
        outcome.new.len(),
        outcome.stale.len()
    );
    out.push_str("  \"violations\": [\n");
    let mut first = true;
    for (status, v) in outcome
        .new
        .iter()
        .map(|v| ("new", v))
        .chain(outcome.baselined.iter().map(|v| ("baselined", v)))
    {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"status\": \"{}\", \"excerpt\": \"{}\"",
            v.rule,
            json_escape(&v.path),
            v.line,
            status,
            json_escape(&v.excerpt)
        );
        if !v.chain.is_empty() {
            out.push_str(", \"chain\": [");
            for (i, hop) in v.chain.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json_escape(hop));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STORAGE: &str = "crates/storage/src/x.rs";

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "fn f() {\n    unsafe { danger() };\n}\n";
        let v = scan_source(STORAGE, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies() {
        let above = "fn f() {\n    // SAFETY: pointer is pinned.\n    unsafe { danger() };\n}\n";
        assert!(scan_source(STORAGE, above).is_empty());
        let inline = "fn f() {\n    unsafe { danger() }; // SAFETY: pinned.\n}\n";
        assert!(scan_source(STORAGE, inline).is_empty());
        let doc = "/// Frees the node.\n///\n/// # Safety\n/// Caller holds the guard.\npub unsafe fn free() {}\n";
        assert!(scan_source(STORAGE, doc).is_empty());
    }

    #[test]
    fn safety_comment_survives_interleaved_attributes() {
        let src = "// SAFETY: single-threaded registry.\n#[inline]\nunsafe fn g() {}\n";
        assert!(scan_source(STORAGE, src).is_empty());
    }

    #[test]
    fn unsafe_inside_strings_and_comments_is_ignored() {
        let src = "fn f() {\n    let s = \"unsafe\";\n    // unsafe in prose\n    /* unsafe block comment */\n}\n";
        assert!(scan_source(STORAGE, src).is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_annotation() {
        let bare = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let v = scan_source(STORAGE, bare);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering");

        let annotated = "fn f(c: &AtomicU64) {\n    // analysis:allow(relaxed-ordering): statistics counter.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(scan_source(STORAGE, annotated).is_empty());
    }

    #[test]
    fn relaxed_ordering_scoped_to_storage() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(scan_source("crates/online/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_path_flags_unwrap_and_expect_in_hot_crates() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\nfn g(o: Option<u32>) -> u32 {\n    o.expect(\"set\")\n}\n";
        for path in [
            "crates/storage/src/x.rs",
            "crates/online/src/x.rs",
            "crates/exec/src/x.rs",
            "crates/core/src/x.rs",
            "crates/chaos/src/x.rs",
        ] {
            let v = scan_source(path, src);
            assert_eq!(v.len(), 2, "{path}");
            assert!(v.iter().all(|v| v.rule == "panic-path"));
        }
        // Out-of-scope crate: no rule.
        assert!(scan_source("crates/sql/src/x.rs", src).is_empty());
        // unwrap_or / expect_err are not panic paths.
        let fine = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap_or(0)\n}\n";
        assert!(scan_source(STORAGE, fine).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn hot() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x: Option<u32> = Some(1);\n        x.unwrap();\n        unsafe { core::hint::unreachable_unchecked() };\n    }\n}\n";
        assert!(scan_source(STORAGE, src).is_empty());
    }

    #[test]
    fn code_after_test_region_is_scanned_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn hot(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
        let v = scan_source(STORAGE, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn lossy_cast_in_codec_only() {
        let src = "fn f(x: u64) -> u32 {\n    x as u32\n}\n";
        let v = scan_source("crates/types/src/codec/mod.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lossy-cast");
        assert!(scan_source(STORAGE, src).is_empty());

        let widening = "fn f(x: u32) -> u64 {\n    x as u64\n}\n";
        assert!(scan_source("crates/types/src/codec/mod.rs", widening).is_empty());

        let annotated = "fn f(x: u64) -> u32 {\n    // analysis:allow(lossy-cast): bounded by header check above.\n    x as u32\n}\n";
        assert!(scan_source("crates/types/src/codec/mod.rs", annotated).is_empty());
    }

    #[test]
    fn metric_name_convention_enforced() {
        // Well-formed names in every position pass.
        let good = "fn f(r: &Registry) {\n    r.counter(\"openmldb_storage_seeks_total\", \"h\");\n    r.gauge(\"openmldb_core_memory_used_bytes\", \"h\");\n}\n";
        assert!(scan_source(STORAGE, good).is_empty());

        // A `{label="..."}` suffix (format-string escaped) is ignored when
        // validating the base name.
        let labeled = r#"fn f(r: &Registry) {
    r.gauge(&format!("openmldb_online_union_worker_load_rows{{worker=\"{w}\"}}"), "h");
}
"#;
        assert!(scan_source("crates/online/src/x.rs", labeled).is_empty());

        // Missing unit, unknown crate segment, uppercase: all flagged, with
        // the literal itself as the excerpt.
        let bad = "fn f(r: &Registry) {\n    r.counter(\"openmldb_storage_seeks\", \"h\");\n    r.counter(\"openmldb_web_requests_total\", \"h\");\n    r.counter(\"openmldb_storage_Seeks_total\", \"h\");\n}\n";
        let v = scan_source(STORAGE, bad);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "metric-name"));
        assert_eq!(v[0].excerpt, "openmldb_storage_seeks");
        assert_eq!(v[1].line, 3);

        // Annotation opts out; strings without the metric prefix (crate
        // names, prose) are not the rule's business.
        let annotated = "fn f(r: &Registry) {\n    // analysis:allow(metric-name): legacy dashboard key.\n    r.counter(\"openmldb_storage_seeks\", \"h\");\n    let _ = \"openmldb-analysis\";\n    let _ = \"openmldb\";\n}\n";
        assert!(scan_source(STORAGE, annotated).is_empty());
    }

    #[test]
    fn metric_label_keys_enforced() {
        // A label key outside the closed vocabulary is a violation even
        // when the base name is well-formed.
        let bad_key = r#"fn f(r: &Registry) {
    r.gauge(&format!("openmldb_online_union_worker_load_rows{{tenant=\"{w}\"}}"), "h");
}
"#;
        let v = scan_source("crates/online/src/x.rs", bad_key);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "metric-name");

        // A dynamic (interpolated) label key defeats the closed vocabulary;
        // interpolation in *value* position is fine — values are minted at
        // runtime by the label registry.
        let dynamic_key = r#"fn f(r: &Registry) {
    r.gauge(&format!("openmldb_online_load_rows{{{k}=\"x\"}}"), "h");
}
"#;
        assert_eq!(scan_source("crates/online/src/x.rs", dynamic_key).len(), 1);
        let dynamic_value = r#"fn f(r: &Registry) {
    r.gauge(&format!("openmldb_online_load_rows{{deployment=\"{d}\"}}"), "h");
}
"#;
        assert!(scan_source("crates/online/src/x.rs", dynamic_value).is_empty());

        // Unquoted values and empty label sets are violations.
        let unquoted = "fn f(r: &Registry) {\n    r.counter(\"openmldb_online_x_total{deployment=d1}\", \"h\");\n}\n";
        assert_eq!(scan_source("crates/online/src/x.rs", unquoted).len(), 1);
        let empty =
            "fn f(r: &Registry) {\n    r.counter(\"openmldb_online_x_total{}\", \"h\");\n}\n";
        assert_eq!(scan_source("crates/online/src/x.rs", empty).len(), 1);

        // Multi-label series with vocabulary keys pass.
        let multi = "fn f(r: &Registry) {\n    r.counter(\"openmldb_online_x_total{deployment=\\\"d\\\",stage=\\\"plan\\\"}\", \"h\");\n}\n";
        assert!(scan_source("crates/online/src/x.rs", multi).is_empty());
    }

    #[test]
    fn metric_name_validator_mirrors_obs() {
        // The lint must not depend on the crate it audits, so the validator
        // is duplicated; this pins both copies to the same convention.
        let corpus = [
            "openmldb_online_requests_total",
            "openmldb_storage_scan_len_rows",
            "openmldb_online_union_worker_load_rows{worker=\"3\"}",
            "openmldb_bench_p99_ms",
            "openmldb_storage_seeks",
            "openmldb_web_requests_total",
            "openmldb_storage_Seeks_total",
            "openmldb__total",
            "openmldb_",
            "requests_total",
            // Tail-latency attribution names: the obs and chaos crates now
            // register their own metrics, and the bench harness publishes
            // tailtrace gate tallies.
            "openmldb_obs_postmortems_total",
            "openmldb_chaos_injected_faults_total",
            "openmldb_bench_tailtrace_anomalies_total",
            "openmldb_bench_tailtrace_postmortems_total",
            // Workload-attribution names: labeled series keep the bare-name
            // convention; suffixes must use vocabulary keys + quoted values.
            "openmldb_online_deployment_requests_total",
            "openmldb_online_deployment_requests_total{deployment=\"d1\"}",
            "openmldb_online_deployment_duration_ns{deployment=\"d1\",quantile=\"0.99\"}",
            "openmldb_online_x_total{tenant=\"d1\"}",
            "openmldb_online_x_total{deployment=d1}",
            "openmldb_online_x_total{deployment=\"a\"b\"}",
            "openmldb_online_x_total{}",
            // Durability names: the WAL/snapshot layer lives in storage and
            // recovery accounting in core.
            "openmldb_storage_wal_appends_total",
            "openmldb_storage_wal_bytes_total",
            "openmldb_storage_wal_fsyncs_total",
            "openmldb_storage_wal_torn_tails_total",
            "openmldb_storage_snapshots_total",
            "openmldb_storage_snapshot_bytes_total",
            "openmldb_storage_snapshots_invalid_total",
            "openmldb_core_recoveries_total",
            "openmldb_core_recovered_rows_total",
            "openmldb_core_recovery_duration_ms",
            // Compiled-program names: deploy-time specialization in exec,
            // per-request compiled/fallback serving attribution in online.
            "openmldb_exec_program_plans_total",
            "openmldb_exec_program_windows_total",
            "openmldb_exec_program_fallbacks_total",
            "openmldb_online_compiled_windows_total",
            "openmldb_online_compiled_fallback_total",
            // Consistency-sentinel names: warm-path sampling and the
            // background audit live in online; the HTTP exposition counter
            // in obs.
            "openmldb_online_sentinel_samples_total",
            "openmldb_online_sentinel_audits_total",
            "openmldb_online_sentinel_divergences_total",
            "openmldb_online_sentinel_stale_skips_total",
            "openmldb_online_sentinel_dropped_total",
            "openmldb_online_sentinel_errors_total",
            "openmldb_online_sentinel_lag_count",
            "openmldb_online_deployment_divergences_total",
            "openmldb_online_deployment_divergences_total{deployment=\"d1\"}",
            "openmldb_obs_ops_requests_total",
        ];
        for name in [
            "openmldb_obs_postmortems_total",
            "openmldb_chaos_injected_faults_total",
            "openmldb_bench_tailtrace_anomalies_total",
            "openmldb_bench_tailtrace_postmortems_total",
            "openmldb_storage_wal_appends_total",
            "openmldb_storage_wal_bytes_total",
            "openmldb_storage_wal_fsyncs_total",
            "openmldb_storage_wal_torn_tails_total",
            "openmldb_storage_snapshots_total",
            "openmldb_storage_snapshot_bytes_total",
            "openmldb_storage_snapshots_invalid_total",
            "openmldb_core_recoveries_total",
            "openmldb_core_recovered_rows_total",
            "openmldb_core_recovery_duration_ms",
            "openmldb_exec_program_plans_total",
            "openmldb_exec_program_windows_total",
            "openmldb_exec_program_fallbacks_total",
            "openmldb_online_compiled_windows_total",
            "openmldb_online_compiled_fallback_total",
            "openmldb_online_sentinel_samples_total",
            "openmldb_online_sentinel_audits_total",
            "openmldb_online_sentinel_divergences_total",
            "openmldb_online_sentinel_stale_skips_total",
            "openmldb_online_sentinel_dropped_total",
            "openmldb_online_sentinel_errors_total",
            "openmldb_online_sentinel_lag_count",
            "openmldb_online_deployment_divergences_total",
            "openmldb_obs_ops_requests_total",
        ] {
            assert!(valid_metric_name(name), "{name} must satisfy the lint");
        }
        for name in corpus {
            assert_eq!(
                valid_metric_name(name),
                openmldb_obs::validate_metric_name(name),
                "validators diverge on {name:?}"
            );
        }
        for crate_seg in METRIC_CRATES {
            assert!(openmldb_obs::METRIC_CRATES.contains(&crate_seg));
        }
        for unit in METRIC_UNITS {
            assert!(openmldb_obs::METRIC_UNITS.contains(&unit));
        }
        for key in METRIC_LABEL_KEYS {
            assert!(openmldb_obs::METRIC_LABEL_KEYS.contains(&key));
        }
        assert_eq!(METRIC_CRATES.len(), openmldb_obs::METRIC_CRATES.len());
        assert_eq!(METRIC_UNITS.len(), openmldb_obs::METRIC_UNITS.len());
        assert_eq!(
            METRIC_LABEL_KEYS.len(),
            openmldb_obs::METRIC_LABEL_KEYS.len()
        );
    }

    #[test]
    fn metric_name_scope_and_test_exemptions() {
        let bad = "fn f(r: &Registry) {\n    r.counter(\"openmldb_bogus\", \"h\");\n}\n";
        // The convention's own home and this linter are exempt.
        assert!(scan_source("crates/obs/src/lib.rs", bad).is_empty());
        assert!(scan_source("crates/analysis/src/lib.rs", bad).is_empty());
        // Any engine crate is in scope, including ones with no other rules.
        assert_eq!(scan_source("crates/sql/src/x.rs", bad).len(), 1);
        // Test regions keep their freedom to name things badly.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t(r: &Registry) {\n        r.counter(\"openmldb_bogus\", \"h\");\n    }\n}\n";
        assert!(scan_source(STORAGE, test_only).is_empty());
        // Metric names quoted in comments are prose, not registrations.
        let prose = "fn f() {}\n// render emits \"openmldb_bogus\" lines\n";
        assert!(scan_source(STORAGE, prose).is_empty());
    }

    #[test]
    fn hot_path_alloc_flags_marked_regions_only() {
        // Outside a HOT region: allocating idioms are fine.
        let cold = "fn setup(v: &[u32]) -> Vec<u32> {\n    v.to_vec()\n}\n";
        assert!(scan_source(STORAGE, cold).is_empty());

        // Inside: .clone(), .to_vec() and Vec::new() are each flagged.
        let hot = "// HOT: per-row scan step.\nfn scan(v: &[u32]) {\n    let a = v.to_vec();\n    let b = a.clone();\n    let c: Vec<u32> = Vec::new();\n    drop((b, c));\n}\n";
        let v = scan_source(STORAGE, hot);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "hot-path-alloc"));
        assert_eq!(v[0].line, 3);

        // The extended idiom list: format!, vec![, String::new(),
        // Box::new( and .to_string() each allocate per evaluation.
        let hot2 = "// HOT: per-row path.\nfn f(x: u32) {\n    let a = format!(\"{x}\");\n    let b = vec![x];\n    let c = String::new();\n    let d = Box::new(x);\n    let e = 1.to_string();\n    drop((a, b, c, d, e));\n}\n";
        let v = scan_source(STORAGE, hot2);
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "hot-path-alloc"));

        // `.to_string()` outside a HOT region stays legal, and an allow
        // annotation covers the extended idioms too.
        let cold2 = "fn label(x: u32) -> String {\n    x.to_string()\n}\n";
        assert!(scan_source(STORAGE, cold2).is_empty());
        let allowed2 = "// HOT: request path.\nfn f(e: &E) -> Result<(), Error> {\n    // analysis:allow(hot-path-alloc): cold error branch.\n    Err(Error::Storage(format!(\"{e}\")))\n}\n";
        assert!(scan_source(STORAGE, allowed2).is_empty());

        // The region ends with the item's closing brace.
        let after = "// HOT: tight loop.\nfn scan(v: &[u32]) -> u32 {\n    v[0]\n}\n\nfn cold(v: &[u32]) -> Vec<u32> {\n    v.to_vec()\n}\n";
        assert!(scan_source(STORAGE, after).is_empty());

        // Annotated cold branches inside a HOT region opt out.
        let annotated = "// HOT: steady-state request path.\nfn run(v: &[u32]) {\n    // analysis:allow(hot-path-alloc): cold-start growth only.\n    let grown = v.to_vec();\n    drop(grown);\n}\n";
        assert!(scan_source(STORAGE, annotated).is_empty());

        // Scoped to the hot-path crates; HOT elsewhere is just a comment.
        let src = "// HOT: marker.\nfn f(v: &[u32]) -> Vec<u32> {\n    v.to_vec()\n}\n";
        assert!(scan_source("crates/sql/src/x.rs", src).is_empty());
        for path in [
            "crates/online/src/x.rs",
            "crates/exec/src/x.rs",
            "crates/storage/src/x.rs",
        ] {
            assert_eq!(scan_source(path, src).len(), 1, "{path}");
        }

        // `HOT:` quoted in code (a string literal) does not arm the rule.
        let quoted = "fn f() {\n    let s = \"HOT: not a marker\";\n    let v: Vec<u32> = Vec::new();\n    drop((s, v));\n}\n";
        assert!(scan_source(STORAGE, quoted).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'g>(x: &'g str) -> &'g str {\n    x\n}\nfn c() -> char {\n    '\\''\n}\n";
        assert!(scan_source(STORAGE, src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "fn f() -> &'static str {\n    r#\"unsafe .unwrap() Ordering::Relaxed\"#\n}\n";
        assert!(scan_source(STORAGE, src).is_empty());
    }

    #[test]
    fn baseline_absorbs_existing_debt_but_flags_growth() {
        let debt = Violation {
            rule: "panic-path",
            path: STORAGE.into(),
            line: 10,
            excerpt: "o.unwrap()".into(),
            chain: Vec::new(),
        };
        let baseline = parse_baseline(&render_baseline(std::slice::from_ref(&debt)));
        // Same debt: fully baselined.
        let ok = apply_baseline(std::slice::from_ref(&debt), &baseline);
        assert!(ok.new.is_empty());
        assert_eq!(ok.baselined.len(), 1);
        // Same line moved: still baselined (fingerprint has no line number).
        let moved = Violation {
            line: 99,
            ..debt.clone()
        };
        assert!(apply_baseline(&[moved], &baseline).new.is_empty());
        // Duplicate of the same fingerprint: growth ⇒ one new.
        let grown = apply_baseline(&[debt.clone(), debt.clone()], &baseline);
        assert_eq!(grown.new.len(), 1);
        assert_eq!(grown.baselined.len(), 1);
        // Debt paid down: stale entry reported, nothing fails.
        let paid = apply_baseline(&[], &baseline);
        assert!(paid.new.is_empty());
        assert_eq!(paid.stale.len(), 1);
    }

    #[test]
    fn baseline_is_stable_under_function_motion_and_sibling_renames() {
        // A flagged function near the top of the file, plus an unrelated
        // sibling.
        let before = "\
fn sibling_one() {}

// HOT: per-row inner loop.
fn hot_step(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
";
        // The same flagged function moved to the bottom, the sibling
        // renamed, and extra padding shifting every line number.
        let after = "\
fn renamed_sibling() {}

fn extra_padding() {}

fn more_padding() {}

// HOT: per-row inner loop.
fn hot_step(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
";
        let baseline = parse_baseline(&render_baseline(&scan_source(STORAGE, before)));
        let outcome = apply_baseline(&scan_source(STORAGE, after), &baseline);
        assert!(outcome.new.is_empty(), "motion churned: {:#?}", outcome.new);
        assert!(
            outcome.stale.is_empty(),
            "motion went stale: {:#?}",
            outcome.stale
        );

        // A *second* violation with identical content is still growth: the
        // baseline is count-based, not a blanket pardon for the content.
        let grown = format!(
            "{after}
// HOT: another inner loop.
fn hot_step_two(data: &[u8]) -> Vec<u8> {{
    data.to_vec()
}}
"
        );
        let outcome = apply_baseline(&scan_source(STORAGE, &grown), &baseline);
        assert_eq!(outcome.new.len(), 1, "{:#?}", outcome.new);
    }

    #[test]
    fn report_is_valid_enough_json() {
        let v = Violation {
            rule: "safety-comment",
            path: "crates/storage/src/a\"b.rs".into(),
            line: 3,
            excerpt: "unsafe { \"x\\y\" }".into(),
            chain: Vec::new(),
        };
        let outcome = apply_baseline(&[v], &HashMap::new());
        let report = render_report(&outcome);
        assert!(report.contains("\\\"b.rs"));
        assert!(report.contains("\\\\y"));
        assert!(report.contains("\"new\": 1"));
    }
}
