//! The three call-graph rules: deadline-reachability, transitive
//! panic-freedom, and lock-order acyclicity.
//!
//! All three work on the "may call" graph from [`crate::callgraph`] and
//! emit [`Violation`]s whose excerpts are line-number free so the
//! content-fingerprint baseline stays stable under refactors; the full
//! call chain (with line numbers) rides along in `Violation::chain` for
//! the report only.

use crate::callgraph::CallGraph;
use crate::parse::{parse_source, FnItem, LockField, LockKind, LockSite, ParsedFile};
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Functions that start a request on the serving path.
const REQUEST_ROOTS: [&str; 2] = ["execute_request", "execute_request_with"];

/// Parameter-type fragments that count as "threads a deadline".
const DEADLINE_TYPES: [&str; 3] = ["Deadline", "RequestOptions", "Ctx"];

/// Run all three graph rules over the given `(repo-relative path, source)`
/// pairs and return the combined findings.
pub fn graph_scan(sources: &[(String, String)]) -> Vec<Violation> {
    let parsed: Vec<ParsedFile> = sources.iter().map(|(p, s)| parse_source(p, s)).collect();
    let lock_fields: Vec<LockField> = parsed
        .iter()
        .flat_map(|f| f.lock_fields.iter().cloned())
        .collect();
    let g = CallGraph::build(&parsed);
    let mut out = deadline_reachability(&g);
    out.extend(panic_freedom(&g));
    out.extend(lock_order(&g, &lock_fields));
    out
}

// ---------------------------------------------------------------------------
// Rule: deadline-reachability
// ---------------------------------------------------------------------------

/// True when `f` is one of the storage-layer scan/seek entry points whose
/// callers must be deadline-aware.
fn is_storage_scan_api(f: &FnItem) -> bool {
    f.crate_name == "storage"
        && f.has_self
        && (f.name.starts_with("scan")
            || f.name.starts_with("seek")
            || f.name.starts_with("latest")
            || f.name == "range_visit")
}

fn threads_deadline(f: &FnItem) -> bool {
    f.params
        .iter()
        .any(|p| DEADLINE_TYPES.iter().any(|t| p.contains(t)))
}

/// Every function reachable from the request roots that calls a storage
/// scan/seek API must take a `Deadline`/`RequestOptions`/`Ctx` parameter —
/// otherwise the scan it issues cannot be cut off at the request budget.
fn deadline_reachability(g: &CallGraph) -> Vec<Violation> {
    let storage_api: HashSet<usize> = (0..g.fns.len())
        .filter(|&i| is_storage_scan_api(&g.fns[i]))
        .collect();
    let roots: Vec<usize> = REQUEST_ROOTS
        .iter()
        .flat_map(|n| g.named(n).iter().copied())
        .filter(|&i| !g.fns[i].is_test)
        .collect();
    let parent = g.reach(&roots, |i| !g.fns[i].is_test);
    let mut reached: Vec<usize> = parent.keys().copied().collect();
    reached.sort_unstable();

    let mut out = Vec::new();
    for i in reached {
        let f = &g.fns[i];
        // The storage layer itself is where deadlines are *consumed*;
        // the rule polices the layers above it.
        if f.crate_name == "storage" || f.allows.contains(&"deadline-reachability") {
            continue;
        }
        let Some(&api) = g.edges[i].iter().find(|j| storage_api.contains(j)) else {
            continue;
        };
        if threads_deadline(f) {
            continue;
        }
        let mut chain = g.chain(&parent, i);
        chain.push(g.fns[api].qualified());
        out.push(Violation {
            rule: "deadline-reachability",
            path: f.file.clone(),
            line: f.line,
            excerpt: format!(
                "{} calls {} without a Deadline/RequestOptions parameter",
                f.qualified(),
                g.fns[api].qualified()
            ),
            chain,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: panic-freedom (transitive)
// ---------------------------------------------------------------------------

/// A `// HOT:` function is flagged if any workspace function reachable
/// from it contains an un-allowed panic-capable expression. An
/// `analysis:allow(panic-freedom)` on an intermediate function vouches for
/// it *and* everything reached only through it.
fn panic_freedom(g: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for h in 0..g.fns.len() {
        let hot = &g.fns[h];
        if !hot.is_hot || hot.is_test || !hot.has_body || hot.allows.contains(&"panic-freedom") {
            continue;
        }
        let parent = g.reach(&[h], |i| {
            !g.fns[i].is_test && !g.fns[i].allows.contains(&"panic-freedom")
        });
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable();
        let mut seen: HashSet<(usize, &str)> = HashSet::new();
        for i in reached {
            let f = &g.fns[i];
            for p in &f.panics {
                if p.allowed || !seen.insert((i, p.idiom)) {
                    continue;
                }
                let mut chain = g.chain(&parent, i);
                chain.push(format!("{} at {}:{}", p.idiom, f.file, p.line));
                out.push(Violation {
                    rule: "panic-freedom",
                    path: hot.file.clone(),
                    line: hot.line,
                    excerpt: format!(
                        "HOT {} reaches {}: {}",
                        hot.qualified(),
                        f.qualified(),
                        p.idiom
                    ),
                    chain,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------------

struct LockNames {
    /// field name → (owner, is_rwlock) declarations.
    by_field: HashMap<String, Vec<(String, bool)>>,
}

impl LockNames {
    fn new(fields: &[LockField]) -> LockNames {
        let mut by_field: HashMap<String, Vec<(String, bool)>> = HashMap::new();
        for lf in fields {
            by_field
                .entry(lf.field.clone())
                .or_default()
                .push((lf.owner.clone(), lf.rw));
        }
        LockNames { by_field }
    }

    /// Canonical id: `Owner.field` when the field name is unambiguous
    /// across the workspace, bare `field` otherwise.
    fn canonical(&self, field: &str) -> String {
        match self.by_field.get(field) {
            Some(decls) => {
                let owners: BTreeSet<&str> = decls.iter().map(|(o, _)| o.as_str()).collect();
                if owners.len() == 1 {
                    format!("{}.{}", decls[0].0, field)
                } else {
                    field.to_string()
                }
            }
            None => field.to_string(),
        }
    }

    fn is_rwlock(&self, field: &str) -> bool {
        self.by_field
            .get(field)
            .is_some_and(|d| d.iter().any(|(_, rw)| *rw))
    }

    /// The lock id a site acquires, or `None` when the site is not
    /// actually a lock (`.read()`/`.write()` on a non-RwLock receiver).
    fn site_id(&self, site: &LockSite) -> Option<String> {
        match site.kind {
            // `.lock()` is assumed to be a Mutex even on receivers we
            // could not type — false negatives are worse than extra nodes.
            LockKind::Lock => Some(self.canonical(&site.recv)),
            LockKind::Read | LockKind::Write => self
                .is_rwlock(&site.recv)
                .then(|| self.canonical(&site.recv)),
        }
    }
}

/// Nested lock acquisitions define an order; a cycle in that order is a
/// potential deadlock. Edges come from lexically nested guards and from
/// calls made while a guard is held (using per-function transitive
/// "locks it may acquire" summaries).
fn lock_order(g: &CallGraph, fields: &[LockField]) -> Vec<Violation> {
    let names = LockNames::new(fields);
    let active = |i: usize| !g.fns[i].is_test && !g.fns[i].allows.contains(&"lock-order");

    // Per-function transitive summaries: which lock ids may this function
    // (or anything it calls) acquire?
    let mut summary: Vec<BTreeSet<String>> = (0..g.fns.len())
        .map(|i| {
            let mut s = BTreeSet::new();
            if active(i) {
                for site in &g.fns[i].locks {
                    if !site.allowed {
                        if let Some(id) = names.site_id(site) {
                            s.insert(id);
                        }
                    }
                }
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..g.fns.len() {
            if !active(i) {
                continue;
            }
            for &j in &g.edges[i] {
                if summary[j].is_empty() {
                    continue;
                }
                let add: Vec<String> = summary[j]
                    .iter()
                    .filter(|id| !summary[i].contains(*id))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    summary[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: (held, acquired) → (description, file, line) of the
    // first site that produced the edge.
    let mut edges: BTreeMap<(String, String), (String, String, usize)> = BTreeMap::new();
    for i in 0..g.fns.len() {
        if !active(i) {
            continue;
        }
        let f = &g.fns[i];
        for &(h, a) in &f.nested_locks {
            if f.locks[h].allowed || f.locks[a].allowed {
                continue;
            }
            let (Some(hid), Some(aid)) = (names.site_id(&f.locks[h]), names.site_id(&f.locks[a]))
            else {
                continue;
            };
            if hid == aid {
                // Same-id nesting is re-entrancy, not ordering; instance
                // aliasing is not decidable lexically, so skip it.
                continue;
            }
            edges.entry((hid.clone(), aid.clone())).or_insert((
                format!(
                    "{} acquires {} while holding {} ({}:{})",
                    f.qualified(),
                    aid,
                    hid,
                    f.file,
                    f.locks[a].line
                ),
                f.file.clone(),
                f.locks[a].line,
            ));
        }
        for (ci, call) in f.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            for j in g.resolve(i, ci) {
                if !active(j) || summary[j].is_empty() {
                    continue;
                }
                for &h in &call.held {
                    if f.locks[h].allowed {
                        continue;
                    }
                    let Some(hid) = names.site_id(&f.locks[h]) else {
                        continue;
                    };
                    for aid in &summary[j] {
                        if *aid == hid {
                            continue;
                        }
                        edges.entry((hid.clone(), aid.clone())).or_insert((
                            format!(
                                "{} calls {} holding {}; callee may acquire {} ({}:{})",
                                f.qualified(),
                                g.fns[j].qualified(),
                                hid,
                                aid,
                                f.file,
                                call.line
                            ),
                            f.file.clone(),
                            call.line,
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the order graph. For each edge u → v, look for
    // a path v → … → u; the pair closes a cycle. Cycles are deduplicated
    // by node set and rotated to start at the smallest id so the excerpt
    // (and hence the fingerprint) is stable.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u).or_default().push(v);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (u, v) in edges.keys() {
        let Some(path) = shortest_path(&adj, v, u) else {
            continue;
        };
        // Cycle nodes: u, v, then the path back up to (but excluding) u.
        let mut cycle = vec![u.clone(), v.clone()];
        cycle.extend(path[..path.len() - 1].iter().cloned());
        let mut key = cycle.clone();
        key.sort();
        if !reported.insert(key) {
            continue;
        }
        // Rotate so the smallest id leads.
        let min = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_str())
            .map_or(0, |(k, _)| k);
        cycle.rotate_left(min);
        let mut display = cycle.clone();
        display.push(cycle[0].clone());
        let mut chain = Vec::new();
        for w in display.windows(2) {
            if let Some((desc, _, _)) = edges.get(&(w[0].clone(), w[1].clone())) {
                chain.push(desc.clone());
            }
        }
        let (_, file, line) = &edges[&(display[0].clone(), display[1].clone())];
        out.push(Violation {
            rule: "lock-order",
            path: file.clone(),
            line: *line,
            excerpt: format!("lock-order cycle: {}", display.join(" -> ")),
            chain,
        });
    }
    out
}

/// BFS shortest path `from` → … → `to` over the order graph; returns the
/// node list starting *after* `from` and ending at `to`.
fn shortest_path(
    adj: &BTreeMap<&String, Vec<&String>>,
    from: &String,
    to: &String,
) -> Option<Vec<String>> {
    let mut parent: HashMap<&String, &String> = HashMap::new();
    let mut queue: VecDeque<&String> = VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut rev = vec![n.clone()];
            let mut cur = n;
            while let Some(&p) = parent.get(cur) {
                rev.push(p.clone());
                cur = p;
            }
            // `rev` ends at `from`; we want the path after `from`.
            rev.pop();
            rev.reverse();
            return Some(rev);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if next != from && !parent.contains_key(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        graph_scan(&sources)
    }

    fn rule<'a>(vs: &'a [Violation], name: &str) -> Vec<&'a Violation> {
        vs.iter().filter(|v| v.rule == name).collect()
    }

    // -- deadline-reachability -------------------------------------------

    const STORAGE_TABLE: &str = "pub struct Table;\nimpl Table {\n    pub fn scan_window(&self, key: u64, lo: u64, hi: u64) -> u32 { 0 }\n}\n";

    #[test]
    fn planted_deadline_dropping_call_is_flagged_with_chain() {
        let vs = scan(&[
            ("crates/storage/src/table.rs", STORAGE_TABLE),
            (
                "crates/online/src/engine.rs",
                "pub struct Engine { t: Table }\nimpl Engine {\n    pub fn execute_request(&self, q: u64, opts: &RequestOptions) -> u32 {\n        self.helper(q)\n    }\n    fn helper(&self, q: u64) -> u32 {\n        self.t.scan_window(q, 0, 100)\n    }\n}\n",
            ),
        ]);
        let hits = rule(&vs, "deadline-reachability");
        assert_eq!(hits.len(), 1, "{vs:#?}");
        let v = hits[0];
        assert_eq!(v.path, "crates/online/src/engine.rs");
        assert!(
            v.excerpt.contains("online::Engine::helper"),
            "{}",
            v.excerpt
        );
        assert!(v.excerpt.contains("storage::Table::scan_window"));
        // Full chain from the root through the offender to the API.
        assert_eq!(
            v.chain,
            vec![
                "online::Engine::execute_request".to_string(),
                "online::Engine::helper".to_string(),
                "storage::Table::scan_window".to_string(),
            ]
        );
    }

    #[test]
    fn threading_request_options_silences_deadline_rule() {
        let vs = scan(&[
            ("crates/storage/src/table.rs", STORAGE_TABLE),
            (
                "crates/online/src/engine.rs",
                "pub struct Engine { t: Table }\nimpl Engine {\n    pub fn execute_request(&self, q: u64, opts: &RequestOptions) -> u32 {\n        self.helper(q, opts)\n    }\n    fn helper(&self, q: u64, opts: &RequestOptions) -> u32 {\n        self.t.scan_window(q, 0, 100)\n    }\n}\n",
            ),
        ]);
        assert!(rule(&vs, "deadline-reachability").is_empty(), "{vs:#?}");
    }

    #[test]
    fn deadline_allow_annotation_silences_the_finding() {
        let vs = scan(&[
            ("crates/storage/src/table.rs", STORAGE_TABLE),
            (
                "crates/online/src/engine.rs",
                "pub struct Engine { t: Table }\nimpl Engine {\n    pub fn execute_request(&self, q: u64, opts: &RequestOptions) -> u32 {\n        self.helper(q)\n    }\n    // analysis:allow(deadline-reachability): scan is bounded to one key.\n    fn helper(&self, q: u64) -> u32 {\n        self.t.scan_window(q, 0, 100)\n    }\n}\n",
            ),
        ]);
        assert!(rule(&vs, "deadline-reachability").is_empty(), "{vs:#?}");
    }

    #[test]
    fn unreachable_scan_callers_are_not_deadline_checked() {
        let vs = scan(&[
            ("crates/storage/src/table.rs", STORAGE_TABLE),
            (
                "crates/tools/src/dump.rs",
                "pub fn dump_all(t: &Table) -> u32 { t.scan_window(0, 0, 100) }\n",
            ),
        ]);
        assert!(rule(&vs, "deadline-reachability").is_empty(), "{vs:#?}");
    }

    // -- panic-freedom ---------------------------------------------------

    #[test]
    fn planted_transitive_unwrap_under_hot_is_flagged_with_chain() {
        let vs = scan(&[(
            "crates/exec/src/run.rs",
            "// HOT: per-row inner loop.\npub fn step(n: u32) -> u32 { mid(n) }\nfn mid(n: u32) -> u32 { leaf(n) }\nfn leaf(n: u32) -> u32 { Some(n).unwrap() }\n",
        )]);
        let hits = rule(&vs, "panic-freedom");
        assert_eq!(hits.len(), 1, "{vs:#?}");
        let v = hits[0];
        // Anchored at the HOT function, chain down to the panic site.
        assert_eq!(v.line, 2);
        assert!(v.excerpt.contains("HOT exec::step"), "{}", v.excerpt);
        assert!(v.excerpt.contains("unwrap()"));
        assert_eq!(v.chain.len(), 4, "{:#?}", v.chain);
        assert_eq!(v.chain[0], "exec::step");
        assert_eq!(v.chain[2], "exec::leaf");
        assert!(v.chain[3].contains("crates/exec/src/run.rs:4"));
    }

    #[test]
    fn allow_on_the_panic_site_silences_the_transitive_finding() {
        let vs = scan(&[(
            "crates/exec/src/run.rs",
            "// HOT: per-row inner loop.\npub fn step(n: u32) -> u32 { mid(n) }\nfn mid(n: u32) -> u32 { leaf(n) }\n// analysis:allow(panic-freedom): input validated at the boundary.\nfn leaf(n: u32) -> u32 { Some(n).unwrap() }\n",
        )]);
        assert!(rule(&vs, "panic-freedom").is_empty(), "{vs:#?}");
    }

    #[test]
    fn panics_in_test_functions_do_not_taint_hot_paths() {
        let vs = scan(&[(
            "crates/exec/src/run.rs",
            "// HOT: per-row inner loop.\npub fn step(n: u32) -> u32 { n }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::step(1), Some(1).unwrap()) }\n}\n",
        )]);
        assert!(rule(&vs, "panic-freedom").is_empty(), "{vs:#?}");
    }

    #[test]
    fn cold_functions_may_unwrap_without_findings() {
        let vs = scan(&[(
            "crates/exec/src/run.rs",
            "pub fn cold(n: u32) -> u32 { Some(n).unwrap() }\n",
        )]);
        assert!(rule(&vs, "panic-freedom").is_empty(), "{vs:#?}");
    }

    // -- lock-order ------------------------------------------------------

    const TWO_LOCKS: &str = "pub struct Shard { rows: Mutex<u32>, index: Mutex<u32> }\n";

    #[test]
    fn planted_lock_order_cycle_is_flagged() {
        let vs = scan(&[(
            "crates/storage/src/shard.rs",
            &format!(
                "{TWO_LOCKS}impl Shard {{\n    fn insert(&self) {{\n        let r = self.rows.lock();\n        let i = self.index.lock();\n        drop((r, i));\n    }}\n    fn compact(&self) {{\n        let i = self.index.lock();\n        let r = self.rows.lock();\n        drop((i, r));\n    }}\n}}\n"
            ),
        )]);
        let hits = rule(&vs, "lock-order");
        assert_eq!(hits.len(), 1, "{vs:#?}");
        let v = hits[0];
        assert_eq!(
            v.excerpt,
            "lock-order cycle: Shard.index -> Shard.rows -> Shard.index"
        );
        assert_eq!(v.chain.len(), 2, "{:#?}", v.chain);
        assert!(
            v.chain.iter().any(|c| c.contains("insert")),
            "{:#?}",
            v.chain
        );
        assert!(v.chain.iter().any(|c| c.contains("compact")));
    }

    #[test]
    fn cross_function_cycle_through_calls_is_flagged() {
        let vs = scan(&[(
            "crates/storage/src/shard.rs",
            &format!(
                "{TWO_LOCKS}impl Shard {{\n    fn insert(&self) {{\n        let r = self.rows.lock();\n        self.reindex();\n        drop(r);\n    }}\n    fn reindex(&self) {{\n        let i = self.index.lock();\n        drop(i);\n    }}\n    fn compact(&self) {{\n        let i = self.index.lock();\n        self.touch_rows();\n        drop(i);\n    }}\n    fn touch_rows(&self) {{\n        let r = self.rows.lock();\n        drop(r);\n    }}\n}}\n"
            ),
        )]);
        let hits = rule(&vs, "lock-order");
        assert_eq!(hits.len(), 1, "{vs:#?}");
        assert!(hits[0].chain.iter().any(|c| c.contains("may acquire")));
    }

    #[test]
    fn consistent_lock_order_is_quiet() {
        let vs = scan(&[(
            "crates/storage/src/shard.rs",
            &format!(
                "{TWO_LOCKS}impl Shard {{\n    fn insert(&self) {{\n        let r = self.rows.lock();\n        let i = self.index.lock();\n        drop((r, i));\n    }}\n    fn compact(&self) {{\n        let r = self.rows.lock();\n        let i = self.index.lock();\n        drop((r, i));\n    }}\n}}\n"
            ),
        )]);
        assert!(rule(&vs, "lock-order").is_empty(), "{vs:#?}");
    }

    #[test]
    fn lock_order_allow_annotation_silences_the_cycle() {
        let vs = scan(&[(
            "crates/storage/src/shard.rs",
            &format!(
                "{TWO_LOCKS}impl Shard {{\n    fn insert(&self) {{\n        let r = self.rows.lock();\n        let i = self.index.lock();\n        drop((r, i));\n    }}\n    // analysis:allow(lock-order): compaction runs single-threaded at startup.\n    fn compact(&self) {{\n        let i = self.index.lock();\n        let r = self.rows.lock();\n        drop((i, r));\n    }}\n}}\n"
            ),
        )]);
        assert!(rule(&vs, "lock-order").is_empty(), "{vs:#?}");
    }

    #[test]
    fn graph_rule_fingerprints_are_stable_under_motion() {
        use crate::{apply_baseline, parse_baseline, render_baseline};
        let before = scan(&[(
            "crates/exec/src/run.rs",
            "// HOT: per-row inner loop.\npub fn step(n: u32) -> u32 { mid(n) }\nfn mid(n: u32) -> u32 { leaf(n) }\nfn leaf(n: u32) -> u32 { Some(n).unwrap() }\nfn sibling() {}\n",
        )]);
        let baseline = parse_baseline(&render_baseline(&before));
        // Reorder the functions, rename the sibling, shift every line: the
        // transitive finding keeps its fingerprint (anchored on qualified
        // names, never line numbers).
        let after = scan(&[(
            "crates/exec/src/run.rs",
            "fn renamed_sibling() {}\n\nfn leaf(n: u32) -> u32 { Some(n).unwrap() }\n\nfn mid(n: u32) -> u32 { leaf(n) }\n\n// HOT: per-row inner loop.\npub fn step(n: u32) -> u32 { mid(n) }\n",
        )]);
        let outcome = apply_baseline(&after, &baseline);
        assert!(outcome.new.is_empty(), "{:#?}", outcome.new);
        assert!(outcome.stale.is_empty(), "{:#?}", outcome.stale);
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let vs = scan(&[(
            "crates/storage/src/db.rs",
            "pub struct Db { tables: RwLock<u32>, meta: Mutex<u32> }\nimpl Db {\n    fn a(&self) {\n        let t = self.tables.read();\n        let m = self.meta.lock();\n        drop((t, m));\n    }\n    fn b(&self) {\n        let m = self.meta.lock();\n        let t = self.tables.write();\n        drop((m, t));\n    }\n}\n",
        )]);
        assert_eq!(rule(&vs, "lock-order").len(), 1, "{vs:#?}");
    }

    #[test]
    fn plain_read_write_methods_are_not_locks() {
        // `.read()`/`.write()` on receivers that are not declared RwLock
        // fields (e.g. io::Read) must not create phantom lock nodes.
        let vs = scan(&[(
            "crates/storage/src/io.rs",
            "pub struct Wal { file: u32, meta: Mutex<u32> }\nimpl Wal {\n    fn flush(&self) {\n        let m = self.meta.lock();\n        self.file.write();\n        drop(m);\n    }\n    fn load(&self) {\n        self.file.read();\n        let m = self.meta.lock();\n        drop(m);\n    }\n}\n",
        )]);
        assert!(rule(&vs, "lock-order").is_empty(), "{vs:#?}");
    }
}
