//! Offline batch execution engine (paper Section 6).
//!
//! Offline mode computes, for *every* historical row of the base table, the
//! same feature vector the online engine would produce had that row been the
//! request — one compiled plan, two engines, identical results (the
//! consistency guarantee of Section 4).
//!
//! Per window the engine groups rows by partition key, sorts each group by
//! the order column once, and sweeps it with the subtract-and-evict
//! incremental state. A `RecomputePerRow` mode re-aggregates each row's
//! frame from scratch — both the Spark-like baseline for the benchmarks and
//! the fallback for `EXCLUDE CURRENT_ROW`.

use std::collections::HashMap;

use openmldb_exec::{evaluate, SlidingWindow, WindowAggSet};
use openmldb_sql::ast::Frame;
use openmldb_sql::plan::{BoundWindow, CompiledQuery};
use openmldb_types::{Error, KeyValue, Result, Row, RowBatch, Value};

use crate::parallel;
use crate::skew::SkewConfig;

/// Rows of each window partition, tagged with (order ts, row, base-row index).
/// Union-table rows carry `None` — they feed state but emit no output.
pub(crate) type GroupedRows<'a> = HashMap<Vec<KeyValue>, Vec<(i64, &'a Row, Option<usize>)>>;

/// How each window's aggregates are computed along a sorted partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowExecMode {
    /// Subtract-and-evict sweep: O(n) state updates per partition.
    Incremental,
    /// Per-row frame re-aggregation: O(n × frame) — the naive baseline.
    RecomputePerRow,
}

/// Offline execution options.
#[derive(Debug, Clone)]
pub struct OfflineOptions {
    /// Compute independent windows on parallel threads (Section 6.1).
    pub parallel_windows: bool,
    /// Threads available to window/partition parallelism.
    pub threads: usize,
    /// Time-aware skew repartitioning (Section 6.2); None disables.
    pub skew: Option<SkewConfig>,
    pub mode: WindowExecMode,
}

impl Default for OfflineOptions {
    fn default() -> Self {
        OfflineOptions {
            parallel_windows: true,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            skew: None,
            mode: WindowExecMode::Incremental,
        }
    }
}

/// The input relation set: table name → rows.
pub type Tables = HashMap<String, Vec<Row>>;

/// Execute a compiled feature query in batch over `tables`, producing one
/// output row per base-table row (in input order).
pub fn execute_batch(
    query: &CompiledQuery,
    tables: &Tables,
    opts: &OfflineOptions,
) -> Result<RowBatch> {
    let base = tables
        .get(&query.base_table)
        .ok_or_else(|| Error::Storage(format!("missing table `{}`", query.base_table)))?;

    // 1. Per-window aggregate values per base row index (the synthetic index
    //    column of Section 6.1 is the row's position here).
    let window_results = parallel::compute_windows(query, tables, base, opts)?;

    // 2. LAST JOIN lookup structures: right-table rows keyed by join key,
    //    keeping only the "last" row per key (max order column).
    let join_lookups: Vec<HashMap<Vec<KeyValue>, Vec<Row>>> = query
        .joins
        .iter()
        .map(|join| {
            let rows = tables
                .get(&join.table)
                .ok_or_else(|| Error::Storage(format!("missing table `{}`", join.table)))?;
            let right_keys: Vec<usize> = join.eq_pairs.iter().map(|&(_, r)| r).collect();
            let mut lookup: HashMap<Vec<KeyValue>, Vec<Row>> = HashMap::new();
            for row in rows {
                lookup
                    .entry(row.key_for(&right_keys))
                    .or_default()
                    .push(row.clone());
            }
            // Order candidates newest-first by the join's order column so a
            // residual predicate scans in LAST JOIN order.
            for candidates in lookup.values_mut() {
                if let Some(oc) = join.order_col {
                    candidates.sort_by_key(|r| std::cmp::Reverse(r.ts_at(oc)));
                }
            }
            Ok(lookup)
        })
        .collect::<Result<Vec<_>>>()?;

    // 3. Assemble output rows.
    let by_window = query.aggregates_by_window();
    let mut out_rows = Vec::with_capacity(base.len());
    for (idx, row) in base.iter().enumerate() {
        // Combined row: base columns, then each join's matched columns.
        let mut combined: Vec<Value> = row.values().to_vec();
        for (join, lookup) in query.joins.iter().zip(&join_lookups) {
            let key: Vec<KeyValue> = join
                .eq_pairs
                .iter()
                .map(|&(l, _)| KeyValue::from(&combined[l]))
                .collect();
            let matched = match lookup.get(&key) {
                None => None,
                Some(candidates) => {
                    let mut hit = None;
                    for cand in candidates {
                        let passes = match &join.residual {
                            None => true,
                            Some(pred) => {
                                let mut probe = combined.clone();
                                probe.extend(cand.values().iter().cloned());
                                evaluate(pred, &probe, &[])?.as_bool()?
                            }
                        };
                        if passes {
                            hit = Some(cand);
                            break;
                        }
                    }
                    hit
                }
            };
            match matched {
                Some(r) => combined.extend(r.values().iter().cloned()),
                None => combined.extend((0..join.schema.len()).map(|_| Value::Null)),
            }
        }

        // WHERE filter drops the row from the batch output.
        if let Some(pred) = &query.where_clause {
            if !evaluate(pred, &combined, &[])?.as_bool()? {
                continue;
            }
        }

        // Gather aggregate values for this row from each window result.
        let mut agg_values = vec![Value::Null; query.aggregates.len()];
        for (wid, slots) in by_window.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let per_row = &window_results[wid][idx];
            for (slot, v) in slots.iter().zip(per_row.iter()) {
                agg_values[*slot] = v.clone();
            }
        }

        let mut out = Vec::with_capacity(query.select.len());
        for col in &query.select {
            out.push(evaluate(&col.expr, &combined, &agg_values)?);
        }
        out_rows.push(Row::new(out));
        if let Some(limit) = query.limit {
            if out_rows.len() >= limit {
                break;
            }
        }
    }
    Ok(RowBatch::new(query.output_schema.clone(), out_rows))
}

/// Compute one window's aggregates for every base row. Returns, per base row
/// index, the aggregate values in `aggs` order. Union-table rows participate
/// in windows without producing outputs.
pub fn sweep_window(
    query: &CompiledQuery,
    window: &BoundWindow,
    tables: &Tables,
    base: &[Row],
    agg_ids: &[usize],
    mode: WindowExecMode,
) -> Result<Vec<Vec<Value>>> {
    let agg_refs: Vec<_> = agg_ids.iter().map(|&i| &query.aggregates[i]).collect();

    // Tag rows: (key, ts, row, base_index or None for union rows).
    let mut tagged: Vec<(Vec<KeyValue>, i64, &Row, Option<usize>)> = Vec::new();
    for (i, row) in base.iter().enumerate() {
        tagged.push((
            row.key_for(&window.partition_cols),
            row.ts_at(window.order_col),
            row,
            Some(i),
        ));
    }
    for name in &window.union_tables {
        let rows = tables
            .get(name)
            .ok_or_else(|| Error::Storage(format!("missing union table `{name}`")))?;
        for row in rows {
            tagged.push((
                row.key_for(&window.partition_cols),
                row.ts_at(window.order_col),
                row,
                None,
            ));
        }
    }

    // Group by key, sort each group chronologically (union rows with equal
    // ts sort before the base row is irrelevant to set aggregates; keep the
    // base row last for equal ts so it anchors).
    let mut groups: GroupedRows = HashMap::new();
    for (key, ts, row, idx) in tagged {
        groups.entry(key).or_default().push((ts, row, idx));
    }

    let mut results: Vec<Vec<Value>> = vec![Vec::new(); base.len()];
    for (_key, mut group) in groups {
        group.sort_by_key(|(ts, _, idx)| (*ts, idx.is_some()));
        for (i, outs) in sweep_group(&group, window, &agg_refs, mode)? {
            results[i] = outs;
        }
        // MAXSIZE is a memory cap on the online path; the batch sweep keeps
        // exact semantics (results identical when under the cap).
    }
    Ok(results)
}

/// Whether the window's attributes force the per-row recompute path (the
/// incremental sweep cannot exclude rows per output row).
fn needs_recompute(window: &BoundWindow) -> bool {
    window.exclude_current_row || window.instance_not_in_window
}

/// Sweep one time-sorted partition group, returning `(base_index, values)`
/// for every output-producing row. Shared by the plain sweep and the
/// skew-repartitioned sweep of Section 6.2 (where expanded context rows
/// carry `idx = None` and produce no output).
pub fn sweep_group(
    group: &[(i64, &Row, Option<usize>)],
    window: &BoundWindow,
    agg_refs: &[&openmldb_sql::plan::BoundAggregate],
    mode: WindowExecMode,
) -> Result<Vec<(usize, Vec<Value>)>> {
    let mut out = Vec::new();
    match mode {
        WindowExecMode::Incremental if !needs_recompute(window) => {
            // Emit after each run of equal timestamps so every output row
            // sees all of its ts-peers — exactly what online request mode
            // sees (the request anchors after every stored tuple with
            // ts <= its own).
            let mut sliding = SlidingWindow::new(window.frame, agg_refs)?;
            let mut start = 0usize;
            while start < group.len() {
                let run_ts = group[start].0;
                let mut end = start;
                while end < group.len() && group[end].0 == run_ts {
                    end += 1;
                }
                for (ts, row, _) in &group[start..end] {
                    sliding.push(*ts, row.values())?;
                }
                let outs = sliding.outputs();
                for (_, _, idx) in &group[start..end] {
                    if let Some(i) = idx {
                        out.push((*i, outs.clone()));
                    }
                }
                start = end;
            }
        }
        _ => {
            // Recompute the frame slice for each output row. Range frames
            // are peer-inclusive (all rows with ts == anchor participate,
            // matching online request mode); count frames take the
            // `preceding` rows before the anchor position.
            for (pos, (ts, _row, idx)) in group.iter().enumerate() {
                let Some(i) = idx else { continue };
                let lo = frame_start(group, pos, window.frame);
                let hi = match window.frame {
                    Frame::Rows { .. } => pos + 1,
                    _ => group.partition_point(|(gts, _, _)| gts <= ts),
                };
                let mut set = WindowAggSet::new(agg_refs)?;
                for (gpos, (gts, grow, gidx)) in group.iter().enumerate().take(hi).skip(lo) {
                    if let Frame::RowsRange { preceding_ms } = window.frame {
                        if ts - gts > preceding_ms {
                            continue;
                        }
                    }
                    // EXCLUDE CURRENT_ROW drops only the anchor row itself.
                    if window.exclude_current_row && gpos == pos {
                        continue;
                    }
                    // INSTANCE_NOT_IN_WINDOW: the instance table's other
                    // rows stay out — only union rows and the current row.
                    if window.instance_not_in_window && gidx.is_some() && gpos != pos {
                        continue;
                    }
                    set.update(grow.values())?;
                }
                out.push((*i, set.outputs()));
            }
        }
    }
    Ok(out)
}

/// First group position inside the frame anchored at `group[pos]`.
fn frame_start(group: &[(i64, &Row, Option<usize>)], pos: usize, frame: Frame) -> usize {
    match frame {
        Frame::Unbounded => 0,
        Frame::Rows { preceding } => pos.saturating_sub(preceding as usize),
        Frame::RowsRange { preceding_ms } => {
            let anchor = group[pos].0;
            group.partition_point(|(ts, _, _)| anchor - ts > preceding_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_types::{DataType, Schema};

    struct Cat(HashMap<String, Schema>);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            self.0.get(name).cloned()
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn profile_schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("age", DataType::Int),
            ("updated", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn cat() -> Cat {
        let mut m = HashMap::new();
        m.insert("t".to_string(), schema());
        m.insert("u".to_string(), schema());
        m.insert("p".to_string(), profile_schema());
        Cat(m)
    }

    fn row(k: i64, v: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(k),
            Value::Double(v),
            Value::Timestamp(ts),
        ])
    }

    fn compile(sql: &str) -> CompiledQuery {
        compile_select(&parse_select(sql).unwrap(), &cat()).unwrap()
    }

    fn opts(mode: WindowExecMode) -> OfflineOptions {
        OfflineOptions {
            parallel_windows: false,
            threads: 2,
            skew: None,
            mode,
        }
    }

    #[test]
    fn batch_window_per_row() {
        let q = compile(
            "SELECT k, sum(v) OVER w AS s FROM t WINDOW w AS \
             (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)",
        );
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            vec![
                row(1, 1.0, 0),
                row(1, 2.0, 50),
                row(1, 4.0, 200),
                row(2, 8.0, 50),
            ],
        );
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0][1], Value::Double(1.0));
        assert_eq!(out.rows[1][1], Value::Double(3.0));
        assert_eq!(out.rows[2][1], Value::Double(4.0), "ts 0 and 50 fell out");
        assert_eq!(out.rows[3][1], Value::Double(8.0), "separate key");
    }

    #[test]
    fn incremental_and_recompute_agree() {
        let q = compile(
            "SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c, max(v) OVER w AS m FROM t \
             WINDOW w AS (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 70 PRECEDING AND CURRENT ROW)",
        );
        let rows: Vec<Row> = (0..200)
            .map(|i| row(i % 5, (i % 17) as f64, (i * 13) % 400))
            .collect();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rows);
        let a = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        let b = execute_batch(&q, &tables, &opts(WindowExecMode::RecomputePerRow)).unwrap();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn rows_frame_batch() {
        let q = compile(
            "SELECT sum(v) OVER w AS s FROM t WINDOW w AS \
             (PARTITION BY k ORDER BY ts ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)",
        );
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            vec![row(1, 1.0, 0), row(1, 2.0, 10), row(1, 4.0, 20)],
        );
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        let sums: Vec<&Value> = out.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(
            sums,
            vec![
                &Value::Double(1.0),
                &Value::Double(3.0),
                &Value::Double(6.0)
            ]
        );
    }

    #[test]
    fn window_union_tables_in_batch() {
        let q = compile(
            "SELECT count(v) OVER w AS c FROM t WINDOW w AS \
             (UNION u PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)",
        );
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), vec![row(1, 1.0, 100)]);
        tables.insert("u".to_string(), vec![row(1, 9.0, 60), row(1, 9.0, 600)]);
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        assert_eq!(out.rows.len(), 1, "union rows produce no output rows");
        assert_eq!(
            out.rows[0][0],
            Value::Bigint(2),
            "base row + one union row in frame"
        );
    }

    #[test]
    fn last_join_batch_semantics() {
        let q = compile("SELECT t.k, p.age FROM t LAST JOIN p ORDER BY p.updated ON t.k = p.k");
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), vec![row(1, 0.0, 0), row(2, 0.0, 0)]);
        tables.insert(
            "p".to_string(),
            vec![
                Row::new(vec![Value::Bigint(1), Value::Int(10), Value::Timestamp(5)]),
                Row::new(vec![Value::Bigint(1), Value::Int(20), Value::Timestamp(9)]),
            ],
        );
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        assert_eq!(out.rows[0][1], Value::Int(20), "latest by updated");
        assert_eq!(out.rows[1][1], Value::Null, "no match NULL-pads");
    }

    #[test]
    fn where_and_limit_in_batch() {
        let q = compile("SELECT k FROM t WHERE v > 1.5 LIMIT 1");
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            vec![row(1, 1.0, 0), row(2, 2.0, 0), row(3, 3.0, 0)],
        );
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Bigint(2));
    }

    #[test]
    fn exclude_current_row_in_batch() {
        let q = compile(
            "SELECT sum(v) OVER w AS s FROM t WINDOW w AS \
             (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW \
              EXCLUDE CURRENT_ROW)",
        );
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), vec![row(1, 1.0, 0), row(1, 2.0, 10)]);
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        assert_eq!(out.rows[0][0], Value::Null, "empty window");
        assert_eq!(out.rows[1][0], Value::Double(1.0));
    }

    #[test]
    fn order_dependent_aggregate_in_batch() {
        let q = compile(
            "SELECT drawdown(v) OVER w AS d FROM t WINDOW w AS \
             (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 10000 PRECEDING AND CURRENT ROW)",
        );
        let mut tables = HashMap::new();
        tables.insert(
            "t".to_string(),
            vec![row(1, 100.0, 0), row(1, 60.0, 10), row(1, 80.0, 20)],
        );
        let out = execute_batch(&q, &tables, &opts(WindowExecMode::Incremental)).unwrap();
        let Value::Double(d) = out.rows[2][0] else {
            panic!()
        };
        assert!((d - 0.4).abs() < 1e-9, "peak 100 → trough 60");
    }
}
