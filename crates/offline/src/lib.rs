//! # openmldb-offline
//!
//! The offline batch execution engine (paper Section 6): it executes the
//! same compiled plan as the online engine over historical tables, producing
//! one training feature row per base-table row.
//!
//! * [`engine`] — batch executor with incremental (subtract-and-evict)
//!   partition sweeps and the naive recompute baseline;
//! * [`parallel`] — multi-window parallel optimization with the synthetic
//!   index column and Concat Join (Section 6.1);
//! * [`skew`] — time-aware skew repartitioning: percentile boundaries,
//!   PART_ID slices, EXPANDED_ROW context rows (Section 6.2).

pub mod engine;
pub mod parallel;
pub mod skew;

pub use engine::{execute_batch, sweep_window, OfflineOptions, Tables, WindowExecMode};
pub use parallel::{compute_windows, concat_join};
pub use skew::{percentile_boundaries, sweep_window_skewed, SkewConfig, SkewStats};
