//! Multi-window parallel optimization (paper Section 6.1).
//!
//! A query with several independent windows is traditionally computed
//! serially. Here each window runs on its own thread over the shared input,
//! with a synthetic **index column** (each base row's position) keeping
//! results alignable regardless of per-window partition order. The final
//! **Concat Join** stitches the per-window feature columns back onto each
//! base row by that index — a one-to-one LAST JOIN in the paper's plan
//! vocabulary (`SimpleProject` marks the segment start, `ConcatJoin` the
//! end).

use openmldb_sql::plan::CompiledQuery;
use openmldb_types::{Result, Row, Value};

use crate::engine::{sweep_window, OfflineOptions, Tables};
use crate::skew::sweep_window_skewed;

/// Sweep one window honoring the skew option.
fn sweep(
    query: &CompiledQuery,
    wid: usize,
    tables: &Tables,
    base: &[Row],
    ids: &[usize],
    opts: &OfflineOptions,
) -> Result<Vec<Vec<Value>>> {
    match &opts.skew {
        Some(cfg) => sweep_window_skewed(
            query,
            &query.windows[wid],
            tables,
            base,
            ids,
            opts.mode,
            cfg,
            opts.threads,
        )
        .map(|(r, _stats)| r),
        None => sweep_window(query, &query.windows[wid], tables, base, ids, opts.mode),
    }
}

/// Compute every window's aggregates, parallel or serial per
/// `opts.parallel_windows`. Returns `results[window_id][base_row_index] =
/// Vec<Value>` with values in `aggregates_by_window()[window_id]` order.
pub fn compute_windows(
    query: &CompiledQuery,
    tables: &Tables,
    base: &[Row],
    opts: &OfflineOptions,
) -> Result<Vec<Vec<Vec<Value>>>> {
    let by_window = query.aggregates_by_window();
    let work: Vec<(usize, &Vec<usize>)> = by_window
        .iter()
        .enumerate()
        .filter(|(_, ids)| !ids.is_empty())
        .collect();

    let mut results: Vec<Vec<Vec<Value>>> = (0..query.windows.len()).map(|_| Vec::new()).collect();

    if opts.parallel_windows && work.len() > 1 {
        // SimpleProject: the shared input (with implicit index column) fans
        // out to one thread per window; ConcatJoin collects by window id.
        let computed: Vec<(usize, Result<Vec<Vec<Value>>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .map(|(wid, ids)| {
                    let wid = *wid;
                    let ids: &[usize] = ids;
                    scope.spawn(move || (wid, sweep(query, wid, tables, base, ids, opts)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("window thread panicked"))
                .collect()
        });
        for (wid, res) in computed {
            results[wid] = res?;
        }
    } else {
        for (wid, ids) in work {
            results[wid] = sweep(query, wid, tables, base, ids, opts)?;
        }
    }
    Ok(results)
}

/// Concat-join per-window results onto base rows by the index column.
/// Exposed for the multi-window benchmark; `execute_batch` performs the same
/// stitch inline.
pub fn concat_join(base: &[Row], window_results: &[Vec<Vec<Value>>]) -> Vec<Row> {
    base.iter()
        .enumerate()
        .map(|(idx, row)| {
            let mut values: Vec<Value> = row.values().to_vec();
            for per_window in window_results {
                if let Some(vals) = per_window.get(idx) {
                    values.extend(vals.iter().cloned());
                }
            }
            Row::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WindowExecMode;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_types::{DataType, Schema};
    use std::collections::HashMap;

    struct Cat(Schema);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            (name == "t").then(|| self.0.clone())
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Bigint),
            ("age", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    /// The Section 6.1 example: w1 partitions by name, w2 by age — no
    /// dependency, different partition orders.
    fn two_window_query() -> CompiledQuery {
        compile_select(
            &parse_select(
                "SELECT name, sum(v) OVER w1 AS by_name, sum(v) OVER w2 AS by_age FROM t \
                 WINDOW w1 AS (PARTITION BY name ORDER BY ts ROWS_RANGE BETWEEN 1000 PRECEDING AND CURRENT ROW), \
                        w2 AS (PARTITION BY age ORDER BY ts ROWS_RANGE BETWEEN 1000 PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &Cat(schema()),
        )
        .unwrap()
    }

    fn rows() -> Vec<Row> {
        (0..100)
            .map(|i| {
                Row::new(vec![
                    Value::Bigint(i % 7),
                    Value::Bigint(i % 3),
                    Value::Double(1.0),
                    Value::Timestamp(i * 10),
                ])
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let q = two_window_query();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rows());
        let base = tables["t"].clone();
        let serial = compute_windows(
            &q,
            &tables,
            &base,
            &OfflineOptions {
                parallel_windows: false,
                threads: 1,
                skew: None,
                mode: WindowExecMode::Incremental,
            },
        )
        .unwrap();
        let parallel = compute_windows(
            &q,
            &tables,
            &base,
            &OfflineOptions {
                parallel_windows: true,
                threads: 4,
                skew: None,
                mode: WindowExecMode::Incremental,
            },
        )
        .unwrap();
        assert_eq!(serial, parallel, "index alignment keeps results identical");
    }

    #[test]
    fn concat_join_aligns_by_index() {
        let base = vec![
            Row::new(vec![Value::Bigint(10)]),
            Row::new(vec![Value::Bigint(20)]),
        ];
        let w1 = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let w2 = vec![vec![Value::Int(7)], vec![Value::Int(8)]];
        let joined = concat_join(&base, &[w1, w2]);
        assert_eq!(
            joined[0].values(),
            &[Value::Bigint(10), Value::Int(1), Value::Int(7)]
        );
        assert_eq!(
            joined[1].values(),
            &[Value::Bigint(20), Value::Int(2), Value::Int(8)]
        );
    }
}
