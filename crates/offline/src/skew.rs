//! Time-aware data-skew resolving (paper Section 6.2).
//!
//! Salting (random key prefixes) breaks window semantics: same-key tuples
//! land in different partitions and lose their time order. Instead, hot
//! partitions are split along the **timestamp** axis:
//!
//! 1. **Determine partition boundaries** — timestamp percentiles, estimated
//!    from a fixed-size histogram rather than a full sort (HyperLogLog
//!    estimates the key cardinality that decides whether splitting can help
//!    at all).
//! 2. **Assign repartition identifiers** — each tuple gets a `PART_ID`
//!    (which time slice it belongs to) and an `EXPANDED_ROW` flag.
//! 3. **Augment window data** — each slice (except the first) is prepended
//!    with the preceding rows its window frames need, marked
//!    `EXPANDED_ROW = true`.
//! 4. **Redistribute** — (key, PART_ID) units spread across workers,
//!    multiplying parallelism for hot keys.
//! 5. **Compute** — expanded rows provide context but produce no output.

use std::collections::HashMap;

use parking_lot::Mutex;

use openmldb_sql::ast::Frame;
use openmldb_sql::plan::{BoundWindow, CompiledQuery};
use openmldb_storage::HyperLogLog;
use openmldb_types::{KeyValue, Result, Row, Value};

use crate::engine::{sweep_group, GroupedRows, Tables, WindowExecMode};

/// Skew-resolution configuration.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Time-slice partitions per hot key ("skew 2" = double partitions).
    pub factor: usize,
    /// A key is *hot* when it holds at least this share of all rows.
    pub hot_threshold: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            factor: 2,
            hot_threshold: 0.2,
        }
    }
}

/// Histogram-based percentile boundaries: split `ts_values` into `parts`
/// roughly equal slices without sorting. Returns `parts - 1` boundary
/// timestamps (a tuple belongs to slice `i` when
/// `boundaries[i-1] < ts <= boundaries[i]`).
pub fn percentile_boundaries(ts_values: &[i64], parts: usize) -> Vec<i64> {
    if parts <= 1 || ts_values.is_empty() {
        return Vec::new();
    }
    let (mut min, mut max) = (i64::MAX, i64::MIN);
    for &t in ts_values {
        min = min.min(t);
        max = max.max(t);
    }
    if min == max {
        return Vec::new(); // indivisible along time
    }
    const BUCKETS: usize = 1024;
    let span = (max - min) as u128 + 1;
    let mut hist = [0u64; BUCKETS];
    for &t in ts_values {
        let b = ((t - min) as u128 * BUCKETS as u128 / span) as usize;
        hist[b.min(BUCKETS - 1)] += 1;
    }
    let total = ts_values.len() as u64;
    let mut boundaries = Vec::with_capacity(parts - 1);
    let mut cum = 0u64;
    let mut next_cut = 1;
    for (b, &count) in hist.iter().enumerate() {
        cum += count;
        while next_cut < parts && cum * parts as u64 >= next_cut as u64 * total {
            // Upper edge of bucket b, mapped back to timestamp space.
            let edge = min + ((b as u128 + 1) * span / BUCKETS as u128) as i64 - 1;
            boundaries.push(edge.min(max - 1));
            next_cut += 1;
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
}

/// One repartitioned work unit: a time slice of one key's rows, prefixed
/// with its expanded context rows.
struct Slice<'a> {
    /// `(ts, row, output index)`; expanded rows carry `None`.
    rows: Vec<(i64, &'a Row, Option<usize>)>,
}

/// Statistics from one skewed sweep, for tests and the benchmark harness.
#[derive(Debug, Default, Clone)]
pub struct SkewStats {
    pub hot_keys: usize,
    pub slices: usize,
    pub expanded_rows: usize,
    pub estimated_distinct_keys: f64,
}

/// Sweep one window with time-aware skew repartitioning. Results are
/// identical to the plain sweep; only the work decomposition changes.
#[allow(clippy::too_many_arguments)] // mirrors sweep_window's signature plus the skew knobs
pub fn sweep_window_skewed(
    query: &CompiledQuery,
    window: &BoundWindow,
    tables: &Tables,
    base: &[Row],
    agg_ids: &[usize],
    mode: WindowExecMode,
    cfg: &SkewConfig,
    threads: usize,
) -> Result<(Vec<Vec<Value>>, SkewStats)> {
    let agg_refs: Vec<_> = agg_ids.iter().map(|&i| &query.aggregates[i]).collect();

    // Group rows (base + union tables) by partition key.
    let mut groups: GroupedRows = HashMap::new();
    let mut hll = HyperLogLog::default();
    let mut total_rows = 0usize;
    for (i, row) in base.iter().enumerate() {
        let key = row.key_for(&window.partition_cols);
        hll.add_bytes(crate::skew::render(&key).as_bytes());
        groups
            .entry(key)
            .or_default()
            .push((row.ts_at(window.order_col), row, Some(i)));
        total_rows += 1;
    }
    for name in &window.union_tables {
        if let Some(rows) = tables.get(name) {
            for row in rows {
                let key = row.key_for(&window.partition_cols);
                groups
                    .entry(key)
                    .or_default()
                    .push((row.ts_at(window.order_col), row, None));
                total_rows += 1;
            }
        }
    }

    let mut stats = SkewStats {
        estimated_distinct_keys: hll.estimate(),
        ..Default::default()
    };

    // Build slices: hot keys split along time, cold keys stay whole.
    let mut slices: Vec<Slice> = Vec::new();
    for (_key, mut group) in groups {
        group.sort_by_key(|(ts, _, idx)| (*ts, idx.is_some()));
        let share = group.len() as f64 / total_rows.max(1) as f64;
        let splittable = !matches!(window.frame, Frame::Unbounded);
        if cfg.factor <= 1 || share < cfg.hot_threshold || !splittable {
            slices.push(Slice { rows: group });
            continue;
        }
        stats.hot_keys += 1;
        let ts_values: Vec<i64> = group.iter().map(|(ts, _, _)| *ts).collect();
        let boundaries = percentile_boundaries(&ts_values, cfg.factor);
        if boundaries.is_empty() {
            slices.push(Slice { rows: group });
            continue;
        }
        // Split positions: first index with ts > boundary.
        let mut cut_positions: Vec<usize> = boundaries
            .iter()
            .map(|b| group.partition_point(|(ts, _, _)| ts <= b))
            .collect();
        cut_positions.push(group.len());
        let mut start = 0usize;
        for &end in &cut_positions {
            if end <= start {
                continue;
            }
            // Expanded context: preceding rows the slice's frames reach.
            let slice_first_ts = group[start].0;
            let context_from = match window.frame {
                Frame::RowsRange { preceding_ms } => {
                    group[..start].partition_point(|(ts, _, _)| slice_first_ts - ts > preceding_ms)
                }
                Frame::Rows { preceding } => start.saturating_sub(preceding as usize),
                Frame::Unbounded => unreachable!("unbounded is not splittable"),
            };
            let mut rows: Vec<(i64, &Row, Option<usize>)> = Vec::new();
            for (ts, row, _) in &group[context_from..start] {
                rows.push((*ts, *row, None)); // EXPANDED_ROW = true
                stats.expanded_rows += 1;
            }
            rows.extend(group[start..end].iter().copied());
            slices.push(Slice { rows });
            start = end;
        }
    }
    stats.slices = slices.len();

    // Redistribute: workers pull slices from a shared queue.
    let queue = Mutex::new(slices);
    let results: Mutex<Vec<Vec<Value>>> = Mutex::new(vec![Vec::new(); base.len()]);
    let threads = threads.max(1);
    let first_err: Mutex<Option<openmldb_types::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some(slice) = queue.lock().pop() else {
                    return;
                };
                match sweep_group(&slice.rows, window, &agg_refs, mode) {
                    Ok(outs) => {
                        let mut res = results.lock();
                        for (i, v) in outs {
                            res[i] = v;
                        }
                    }
                    Err(e) => {
                        first_err.lock().get_or_insert(e);
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }
    Ok((results.into_inner(), stats))
}

pub(crate) fn render(key: &[KeyValue]) -> String {
    key.iter()
        .map(KeyValue::render)
        .collect::<Vec<_>>()
        .join("\u{1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sweep_window;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_types::{DataType, Schema};

    struct Cat(Schema);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            (name == "t").then(|| self.0.clone())
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn query(frame: &str) -> CompiledQuery {
        compile_select(
            &parse_select(&format!(
                "SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c FROM t \
                 WINDOW w AS (PARTITION BY k ORDER BY ts {frame})"
            ))
            .unwrap(),
            &Cat(schema()),
        )
        .unwrap()
    }

    /// 90% of rows on key 0 (the skew scenario), the rest spread out.
    fn skewed_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let k = if i % 10 != 0 {
                    0
                } else {
                    1 + (i / 10) as i64 % 5
                };
                Row::new(vec![
                    Value::Bigint(k),
                    Value::Double((i % 13) as f64),
                    Value::Timestamp((i * 7) as i64),
                ])
            })
            .collect()
    }

    #[test]
    fn percentile_boundaries_split_evenly() {
        let ts: Vec<i64> = (0..10_000).collect();
        let b = percentile_boundaries(&ts, 4);
        assert_eq!(b.len(), 3);
        for (i, bound) in b.iter().enumerate() {
            let expected = 2_500 * (i as i64 + 1);
            assert!(
                (bound - expected).abs() < 100,
                "boundary {i} at {bound}, expected near {expected}"
            );
        }
        assert!(
            percentile_boundaries(&[5, 5, 5], 4).is_empty(),
            "constant ts indivisible"
        );
        assert!(percentile_boundaries(&[], 4).is_empty());
    }

    #[test]
    fn skewed_sweep_matches_plain_sweep_range_frame() {
        let q = query("ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW");
        let base = skewed_rows(500);
        let tables = Tables::new();
        let agg_ids: Vec<usize> = (0..q.aggregates.len()).collect();
        let plain = sweep_window(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
        )
        .unwrap();
        for factor in [2, 4] {
            let (skewed, stats) = sweep_window_skewed(
                &q,
                &q.windows[0],
                &tables,
                &base,
                &agg_ids,
                WindowExecMode::Incremental,
                &SkewConfig {
                    factor,
                    hot_threshold: 0.2,
                },
                4,
            )
            .unwrap();
            assert_eq!(
                plain, skewed,
                "factor {factor} changes work layout, not results"
            );
            assert_eq!(stats.hot_keys, 1, "key 0 is the hot key");
            assert!(
                stats.slices >= factor,
                "hot key split into {factor}+ slices"
            );
            assert!(stats.expanded_rows > 0, "context rows were added");
        }
    }

    #[test]
    fn skewed_sweep_matches_plain_sweep_rows_frame() {
        let q = query("ROWS BETWEEN 7 PRECEDING AND CURRENT ROW");
        let base = skewed_rows(300);
        let tables = Tables::new();
        let agg_ids: Vec<usize> = (0..q.aggregates.len()).collect();
        let plain = sweep_window(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
        )
        .unwrap();
        let (skewed, _) = sweep_window_skewed(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
            &SkewConfig {
                factor: 3,
                hot_threshold: 0.2,
            },
            4,
        )
        .unwrap();
        assert_eq!(plain, skewed);
    }

    #[test]
    fn unbounded_frames_are_not_split() {
        let q = query("ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW");
        let base = skewed_rows(100);
        let tables = Tables::new();
        let agg_ids: Vec<usize> = (0..q.aggregates.len()).collect();
        let plain = sweep_window(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
        )
        .unwrap();
        let (skewed, stats) = sweep_window_skewed(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
            &SkewConfig {
                factor: 4,
                hot_threshold: 0.2,
            },
            2,
        )
        .unwrap();
        assert_eq!(plain, skewed);
        assert_eq!(
            stats.hot_keys, 0,
            "unbounded frames fall back to whole groups"
        );
    }

    #[test]
    fn hll_estimates_key_cardinality() {
        let q = query("ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW");
        let base = skewed_rows(1_000);
        let tables = Tables::new();
        let agg_ids: Vec<usize> = (0..q.aggregates.len()).collect();
        let (_, stats) = sweep_window_skewed(
            &q,
            &q.windows[0],
            &tables,
            &base,
            &agg_ids,
            WindowExecMode::Incremental,
            &SkewConfig::default(),
            2,
        )
        .unwrap();
        assert!(
            (4.0..9.0).contains(&stats.estimated_distinct_keys),
            "6 distinct keys, estimated {}",
            stats.estimated_distinct_keys
        );
    }
}
