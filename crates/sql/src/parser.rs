//! Recursive-descent parser for OpenMLDB SQL.
//!
//! Grammar summary (paper Table 1):
//!
//! ```text
//! statement   := select | create_table | insert | deploy
//! select      := SELECT items FROM table_ref (LAST JOIN ...)* [WHERE expr]
//!                [WINDOW window_def (, window_def)*] [LIMIT n]
//! window_def  := name AS ( [UNION table (, table)*]
//!                PARTITION BY cols ORDER BY col [DESC]
//!                (ROWS|ROWS_RANGE) BETWEEN bound PRECEDING AND CURRENT ROW
//!                [MAXSIZE n] [EXCLUDE CURRENT_ROW] [INSTANCE_NOT_IN_WINDOW] )
//! last_join   := LAST JOIN table [ORDER BY col] ON expr
//! deploy      := DEPLOY name [OPTIONS(k="v", ...)] AS select
//! ```

use openmldb_types::{DataType, Error, Result};

use crate::ast::*;
use crate::interval;
use crate::token::{tokenize, Token, TokenKind};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a SELECT, rejecting other statement kinds.
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(Error::Parse {
            message: format!("expected SELECT, found {other:?}"),
            position: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            position: self.here(),
        }
    }

    /// Consume the token if it matches; return whether it did.
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    /// An identifier; keywords that commonly double as identifiers (KEY, TS,
    /// ROW) are accepted too.
    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::Keyword(k)
                if matches!(
                    k.as_str(),
                    "KEY" | "TS" | "ROW" | "INDEX" | "TTL" | "TTL_TYPE"
                ) =>
            {
                Ok(k.to_lowercase())
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(k) if k == "SELECT" => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(k) if k == "CREATE" => self.create_table(),
            TokenKind::Keyword(k) if k == "INSERT" => self.insert(),
            TokenKind::Keyword(k) if k == "DEPLOY" => self.deploy(),
            TokenKind::Keyword(k) if k == "EXPLAIN" => {
                self.bump();
                Ok(Statement::Explain(Box::new(self.select()?)))
            }
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------- SELECT ----

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_kw("SELECT")?;
        let items = self.select_items()?;
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw("LAST") {
            self.expect_kw("JOIN")?;
            joins.push(self.last_join()?);
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut windows = Vec::new();
        if self.eat_kw("WINDOW") {
            loop {
                windows.push(self.window_def()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(self.err(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStatement {
            items,
            from,
            joins,
            where_clause,
            windows,
            limit,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&TokenKind::Comma) {
                return Ok(items);
            }
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `table.*`
        if let (TokenKind::Ident(name), TokenKind::Dot, TokenKind::Star) = (
            self.peek().clone(),
            self.peek_at(1).clone(),
            self.peek_at(2).clone(),
        ) {
            self.bump();
            self.bump();
            self.bump();
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            // Bare alias: `expr alias`
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // `AS` is optional before a table alias: consume it if present, then
        // an identifier (with or without it) is the alias.
        let explicit_as = self.eat_kw("AS");
        let alias = if explicit_as || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn last_join(&mut self) -> Result<LastJoin> {
        let right = self.table_ref()?;
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            Some(self.column_ref()?)
        } else {
            None
        };
        self.expect_kw("ON")?;
        let condition = self.expr()?;
        Ok(LastJoin {
            right,
            order_by,
            condition,
        })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    // ---------------------------------------------------------- WINDOW ----

    fn window_def(&mut self) -> Result<WindowDef> {
        let name = self.ident()?;
        self.expect_kw("AS")?;
        self.expect(&TokenKind::LParen)?;

        let mut union_tables = Vec::new();
        if self.eat_kw("UNION") {
            loop {
                union_tables.push(self.table_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        self.expect_kw("PARTITION")?;
        self.expect_kw("BY")?;
        let mut partition_by = Vec::new();
        loop {
            partition_by.push(self.column_ref()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        self.expect_kw("ORDER")?;
        self.expect_kw("BY")?;
        let order_by = self.column_ref()?;
        let order_desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };

        let frame = self.frame()?;

        let mut maxsize = None;
        let mut exclude_current_row = false;
        let mut instance_not_in_window = false;
        loop {
            if self.eat_kw("MAXSIZE") {
                match self.bump() {
                    TokenKind::Int(n) if n > 0 => maxsize = Some(n as usize),
                    other => {
                        return Err(self.err(format!("expected MAXSIZE count, found {other:?}")))
                    }
                }
            } else if self.eat_kw("EXCLUDE") {
                self.expect_kw("CURRENT_ROW")?;
                exclude_current_row = true;
            } else if self.eat_kw("INSTANCE_NOT_IN_WINDOW") {
                instance_not_in_window = true;
            } else {
                break;
            }
        }

        self.expect(&TokenKind::RParen)?;
        Ok(WindowDef {
            name,
            spec: WindowSpec {
                union_tables,
                partition_by,
                order_by,
                order_desc,
                frame,
                maxsize,
                exclude_current_row,
                instance_not_in_window,
            },
        })
    }

    fn frame(&mut self) -> Result<Frame> {
        let range_based = if self.eat_kw("ROWS_RANGE") {
            true
        } else {
            self.expect_kw("ROWS")?;
            false
        };
        self.expect_kw("BETWEEN")?;
        let frame = match self.bump() {
            TokenKind::Keyword(k) if k == "UNBOUNDED" => Frame::Unbounded,
            TokenKind::Int(n) if n >= 0 => {
                if range_based {
                    // Bare number in ROWS_RANGE means milliseconds.
                    Frame::RowsRange { preceding_ms: n }
                } else {
                    Frame::Rows {
                        preceding: n as u64,
                    }
                }
            }
            TokenKind::Interval { value, unit } => {
                if !range_based {
                    return Err(self.err("time intervals require ROWS_RANGE frames"));
                }
                Frame::RowsRange {
                    preceding_ms: interval::to_ms(value, unit)?,
                }
            }
            other => return Err(self.err(format!("expected frame bound, found {other:?}"))),
        };
        self.expect_kw("PRECEDING")?;
        self.expect_kw("AND")?;
        // CURRENT ROW (two tokens).
        self.expect_kw("CURRENT")?;
        self.expect_kw("ROW")?;
        Ok(frame)
    }

    // ------------------------------------------------------ EXPRESSIONS ---

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            TokenKind::Keyword(k) if k == "IS" => {
                self.bump();
                let negated = self.eat_kw("NOT");
                self.expect_kw("NULL")?;
                return Ok(Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                });
            }
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Literal::Int(n)) => Expr::Literal(Literal::Int(-n)),
                Expr::Literal(Literal::Float(f)) => Expr::Literal(Literal::Float(-f)),
                other => Expr::Binary {
                    op: BinaryOp::Sub,
                    left: Box::new(Expr::Literal(Literal::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Int(n) => Ok(Expr::Literal(Literal::Int(n))),
            TokenKind::Float(f) => Ok(Expr::Literal(Literal::Float(f))),
            TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            TokenKind::Interval { value, unit } => {
                // Intervals in scalar position evaluate to milliseconds.
                Ok(Expr::Literal(Literal::Int(interval::to_ms(value, unit)?)))
            }
            TokenKind::Keyword(k) if k == "NULL" => Ok(Expr::Literal(Literal::Null)),
            TokenKind::Keyword(k) if k == "TRUE" => Ok(Expr::Literal(Literal::Bool(true))),
            TokenKind::Keyword(k) if k == "FALSE" => Ok(Expr::Literal(Literal::Bool(false))),
            TokenKind::Keyword(k) if k == "CASE" => self.case_expr(),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => self.ident_or_call(name),
            TokenKind::Keyword(k) if matches!(k.as_str(), "KEY" | "TS" | "ROW" | "IF") => {
                self.ident_or_call(k.to_lowercase())
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn ident_or_call(&mut self, name: String) -> Result<Expr> {
        // Function call?
        if self.eat(&TokenKind::LParen) {
            let mut args = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    // `count(*)` sugar.
                    if matches!(self.peek(), TokenKind::Star) {
                        self.bump();
                        args.push(Expr::Literal(Literal::Int(1)));
                    } else {
                        args.push(self.expr()?);
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            let over = if self.eat_kw("OVER") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Expr::Call {
                name: name.to_lowercase(),
                args,
                over,
            });
        }
        // Qualified column?
        if self.eat(&TokenKind::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(name),
                column: col,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            table: None,
            column: name,
        }))
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }

    // -------------------------------------------------------------- DDL ---

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut indexes = Vec::new();
        loop {
            if self.eat_kw("INDEX") {
                indexes.push(self.index_def()?);
            } else {
                let col = self.ident()?;
                let dt = self.data_type()?;
                let mut nullable = true;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    nullable = false;
                }
                columns.push((col, dt, nullable));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTableStatement {
            name,
            columns,
            indexes,
        }))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Ok(DataType::Bool),
            "int" | "int32" | "integer" | "smallint" => Ok(DataType::Int),
            "bigint" | "int64" | "long" => Ok(DataType::Bigint),
            "float" => Ok(DataType::Float),
            "double" => Ok(DataType::Double),
            "timestamp" => Ok(DataType::Timestamp),
            "string" | "varchar" => Ok(DataType::String),
            other => Err(self.err(format!("unknown data type `{other}`"))),
        }
    }

    /// `INDEX(KEY=col|（col,col), TS=col, TTL=3d|100, TTL_TYPE=latest|absolute|absorlat|absandlat)`
    fn index_def(&mut self) -> Result<IndexDef> {
        self.expect(&TokenKind::LParen)?;
        let mut key_columns = Vec::new();
        let mut ts_column = None;
        let mut ttl_value: Option<TokenKind> = None;
        let mut ttl_type: Option<String> = None;
        loop {
            let field = self.ident()?.to_ascii_lowercase();
            self.expect(&TokenKind::Eq)?;
            match field.as_str() {
                "key" => {
                    if self.eat(&TokenKind::LParen) {
                        loop {
                            key_columns.push(self.ident()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    } else {
                        key_columns.push(self.ident()?);
                    }
                }
                "ts" => ts_column = Some(self.ident()?),
                "ttl" => ttl_value = Some(self.bump()),
                "ttl_type" => ttl_type = Some(self.ident()?.to_ascii_lowercase()),
                other => return Err(self.err(format!("unknown INDEX field `{other}`"))),
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if key_columns.is_empty() {
            return Err(self.err("INDEX requires KEY="));
        }
        let ttl = self.resolve_ttl(ttl_value, ttl_type)?;
        Ok(IndexDef {
            key_columns,
            ts_column,
            ttl,
        })
    }

    fn resolve_ttl(&self, value: Option<TokenKind>, ttl_type: Option<String>) -> Result<TtlSpec> {
        let kind = ttl_type.as_deref().unwrap_or("absolute");
        let spec = match (kind, value) {
            (_, None) => TtlSpec::Unlimited,
            ("latest", Some(TokenKind::Int(n))) if n >= 0 => TtlSpec::Latest(n as u64),
            ("absolute", Some(TokenKind::Int(ms))) if ms >= 0 => TtlSpec::AbsoluteMs(ms),
            ("absolute", Some(TokenKind::Interval { value, unit })) => {
                TtlSpec::AbsoluteMs(interval::to_ms(value, unit)?)
            }
            ("absorlat" | "absandlat", Some(TokenKind::Int(n))) if n >= 0 => {
                // Single value: interpret as latest bound with no time bound.
                if kind == "absorlat" {
                    TtlSpec::AbsOrLat {
                        ms: i64::MAX,
                        latest: n as u64,
                    }
                } else {
                    TtlSpec::AbsAndLat {
                        ms: i64::MAX,
                        latest: n as u64,
                    }
                }
            }
            (k, v) => return Err(self.err(format!("unsupported TTL combination {k:?} / {v:?}"))),
        };
        Ok(spec)
    }

    // -------------------------------------------------------------- DML ---

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStatement { table, rows }))
    }

    fn literal(&mut self) -> Result<Literal> {
        let neg = self.eat(&TokenKind::Minus);
        let lit = match self.bump() {
            TokenKind::Int(n) => Literal::Int(if neg { -n } else { n }),
            TokenKind::Float(f) => Literal::Float(if neg { -f } else { f }),
            TokenKind::Str(s) if !neg => Literal::Str(s),
            TokenKind::Keyword(k) if k == "NULL" && !neg => Literal::Null,
            TokenKind::Keyword(k) if k == "TRUE" && !neg => Literal::Bool(true),
            TokenKind::Keyword(k) if k == "FALSE" && !neg => Literal::Bool(false),
            other => return Err(self.err(format!("expected literal, found {other:?}"))),
        };
        Ok(lit)
    }

    // ----------------------------------------------------------- DEPLOY ---

    fn deploy(&mut self) -> Result<Statement> {
        self.expect_kw("DEPLOY")?;
        let name = self.ident()?;
        let mut options = Vec::new();
        if self.eat_kw("OPTIONS") {
            self.expect(&TokenKind::LParen)?;
            loop {
                let key = self.ident()?;
                self.expect(&TokenKind::Eq)?;
                let value = match self.bump() {
                    TokenKind::Str(s) => s,
                    TokenKind::Int(n) => n.to_string(),
                    TokenKind::Ident(s) => s,
                    other => {
                        return Err(self.err(format!("expected option value, found {other:?}")))
                    }
                };
                options.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        // `AS` is optional before the SELECT for convenience.
        self.eat_kw("AS");
        let select = self.select()?;
        Ok(Statement::Deploy(DeployStatement {
            name,
            options,
            select,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        // The Section 4.1 example, lightly adapted to the grammar.
        let sql = r#"
            SELECT actions.*,
                   distinct_count(type) OVER w_union_3s AS product_count,
                   avg_cate_where(price, quantity > 1, category) OVER w_union_3s AS product_prices
            FROM actions
            WINDOW w_union_3s AS (
                UNION orders
                PARTITION BY userid ORDER BY ts
                ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW),
            w_action_100d AS (
                PARTITION BY userid ORDER BY ts
                ROWS_RANGE BETWEEN 100d PRECEDING AND CURRENT ROW)
        "#;
        let s = parse_select(sql).unwrap();
        assert_eq!(s.items.len(), 3);
        assert!(matches!(&s.items[0], SelectItem::QualifiedWildcard(t) if t == "actions"));
        assert_eq!(s.windows.len(), 2);
        let w = &s.windows[0];
        assert_eq!(w.name, "w_union_3s");
        assert_eq!(w.spec.union_tables.len(), 1);
        assert_eq!(w.spec.union_tables[0].name, "orders");
        assert_eq!(
            w.spec.frame,
            Frame::RowsRange {
                preceding_ms: 3_000
            }
        );
        assert_eq!(
            s.windows[1].spec.frame,
            Frame::RowsRange {
                preceding_ms: 100 * 86_400_000
            }
        );
    }

    #[test]
    fn parses_last_join_chain() {
        let sql = "SELECT t1.a, t2.b FROM t1 \
                   LAST JOIN t2 ORDER BY t2.ts ON t1.k = t2.k \
                   LAST JOIN t3 ON t1.k = t3.k";
        let s = parse_select(sql).unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].right.name, "t2");
        assert!(s.joins[0].order_by.is_some());
        assert!(s.joins[1].order_by.is_none());
    }

    #[test]
    fn parses_rows_frame_and_attrs() {
        let sql = "SELECT sum(v) OVER w AS s FROM t WINDOW w AS (\
                   PARTITION BY k ORDER BY ts DESC \
                   ROWS BETWEEN 100 PRECEDING AND CURRENT ROW \
                   MAXSIZE 50 EXCLUDE CURRENT_ROW INSTANCE_NOT_IN_WINDOW)";
        let s = parse_select(sql).unwrap();
        let spec = &s.windows[0].spec;
        assert_eq!(spec.frame, Frame::Rows { preceding: 100 });
        assert!(spec.order_desc);
        assert_eq!(spec.maxsize, Some(50));
        assert!(spec.exclude_current_row);
        assert!(spec.instance_not_in_window);
    }

    #[test]
    fn parses_create_table_with_index() {
        let sql = "CREATE TABLE actions (userid BIGINT NOT NULL, price DOUBLE, ts TIMESTAMP, \
                   INDEX(KEY=userid, TS=ts, TTL=100d, TTL_TYPE=absolute))";
        let Statement::CreateTable(ct) = parse_statement(sql).unwrap() else {
            panic!("wrong statement")
        };
        assert_eq!(ct.name, "actions");
        assert_eq!(ct.columns.len(), 3);
        assert!(!ct.columns[0].2, "NOT NULL respected");
        assert_eq!(ct.indexes.len(), 1);
        assert_eq!(ct.indexes[0].key_columns, vec!["userid"]);
        assert_eq!(ct.indexes[0].ts_column.as_deref(), Some("ts"));
        assert_eq!(ct.indexes[0].ttl, TtlSpec::AbsoluteMs(100 * 86_400_000));
    }

    #[test]
    fn parses_insert_multi_row() {
        let sql = "INSERT INTO t VALUES (1, 'a', 2.5, NULL), (-2, 'b', -0.5, TRUE)";
        let Statement::Insert(ins) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[0][0], Literal::Int(1));
        assert_eq!(ins.rows[1][0], Literal::Int(-2));
        assert_eq!(ins.rows[1][3], Literal::Bool(true));
    }

    #[test]
    fn parses_deploy_with_long_windows() {
        let sql = r#"DEPLOY demo OPTIONS(long_windows="w1:1d") AS
                     SELECT sum(v) OVER w1 AS s FROM t
                     WINDOW w1 AS (PARTITION BY k ORDER BY ts
                     ROWS_RANGE BETWEEN 365d PRECEDING AND CURRENT ROW)"#;
        let Statement::Deploy(d) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(d.name, "demo");
        assert_eq!(d.long_windows(), vec![("w1".to_string(), "1d".to_string())]);
    }

    #[test]
    fn parses_case_and_is_null() {
        let sql = "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END AS c, b IS NOT NULL AS n FROM t";
        let s = parse_select(sql).unwrap();
        assert_eq!(s.items.len(), 2);
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Case {
                        branches,
                        else_expr,
                    },
                ..
            } => {
                assert_eq!(branches.len(), 1);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_on_interval_in_rows_frame() {
        let sql = "SELECT sum(v) OVER w AS s FROM t WINDOW w AS (\
                   PARTITION BY k ORDER BY ts ROWS BETWEEN 3s PRECEDING AND CURRENT ROW)";
        assert!(parse_select(sql).is_err());
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_select("SELECT FROM t").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn count_star_sugar() {
        let s = parse_select("SELECT count(*) OVER w AS c FROM t WINDOW w AS (PARTITION BY k ORDER BY ts ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)").unwrap();
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Call { name, args, over },
                ..
            } => {
                assert_eq!(name, "count");
                assert_eq!(args.len(), 1);
                assert_eq!(over.as_deref(), Some("w"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_and_limit() {
        let s = parse_select("SELECT a FROM t WHERE a >= 3 AND b != 'x' LIMIT 10").unwrap();
        assert!(s.where_clause.is_some());
        assert_eq!(s.limit, Some(10));
    }
}
