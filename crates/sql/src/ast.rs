//! Abstract syntax tree for OpenMLDB SQL.
//!
//! The dialect covers the operations of the paper's Table 1: window
//! definitions with `UNION`-ed source tables, `ROWS` / `ROWS_RANGE` frames,
//! `LAST JOIN`, the extended function library, plus the DDL/DML statements
//! the system needs (`CREATE TABLE`, `INSERT`, `DEPLOY ... AS SELECT`).

use std::fmt;

use openmldb_types::DataType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    CreateTable(CreateTableStatement),
    Insert(InsertStatement),
    Deploy(DeployStatement),
    /// `EXPLAIN SELECT ...` — renders the compiled plan tree.
    Explain(Box<SelectStatement>),
}

/// `SELECT ... FROM ... [LAST JOIN ...] [WHERE ...] [WINDOW ...] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    /// Chain of LAST JOINs applied left-to-right.
    pub joins: Vec<LastJoin>,
    pub where_clause: Option<Expr>,
    pub windows: Vec<WindowDef>,
    pub limit: Option<usize>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name expressions should use to qualify columns of this table.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// `LAST JOIN right [ORDER BY col] ON condition` — matches at most one (the
/// latest) right-side row per left row (paper Section 4.1, "Stream Join").
#[derive(Debug, Clone, PartialEq)]
pub struct LastJoin {
    pub right: TableRef,
    /// Optional ordering column picking which right row is "last".
    pub order_by: Option<ColumnRef>,
    pub condition: Expr,
}

/// A named window definition from the WINDOW clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDef {
    pub name: String,
    pub spec: WindowSpec,
}

/// The window specification — this is the unit the optimizer merges when two
/// names share one spec (paper Section 4.2, "Parsing Optimization").
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// Extra tables unioned into the window (`UNION orders, actions`),
    /// the multi-table Window Union of Section 5.2.
    pub union_tables: Vec<TableRef>,
    pub partition_by: Vec<ColumnRef>,
    pub order_by: ColumnRef,
    pub order_desc: bool,
    pub frame: Frame,
    /// Cap on rows kept in the window (MAXSIZE attribute).
    pub maxsize: Option<usize>,
    /// EXCLUDE CURRENT_ROW attribute.
    pub exclude_current_row: bool,
    /// INSTANCE_NOT_IN_WINDOW attribute: the probing row itself joins the
    /// window only as an anchor, not as data.
    pub instance_not_in_window: bool,
}

/// Window frame: either row-count based or time-range based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frame {
    /// `ROWS BETWEEN n PRECEDING AND CURRENT ROW`
    Rows { preceding: u64 },
    /// `ROWS_RANGE BETWEEN <interval> PRECEDING AND CURRENT ROW`,
    /// milliseconds.
    RowsRange { preceding_ms: i64 },
    /// `ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW`
    Unbounded,
}

impl Frame {
    /// Whether a tuple at `ts`/`rank` (0 = current row) is inside the frame
    /// anchored at `anchor_ts`.
    pub fn contains(&self, anchor_ts: i64, ts: i64, rank: u64) -> bool {
        match self {
            Frame::Rows { preceding } => rank <= *preceding,
            Frame::RowsRange { preceding_ms } => ts <= anchor_ts && anchor_ts - ts <= *preceding_ms,
            Frame::Unbounded => true,
        }
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn unqualified(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Scalar literal in the AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    Column(ColumnRef),
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Function call; `over` names the window for aggregate calls
    /// (`sum(price) OVER w1`).
    Call {
        name: String,
        args: Vec<Expr>,
        over: Option<String>,
    },
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// All column references in the expression, in evaluation order.
    pub fn column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Not(e) => e.visit_columns(f),
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit_columns(f);
                    v.visit_columns(f);
                }
                if let Some(e) = else_expr {
                    e.visit_columns(f);
                }
            }
            Expr::Literal(_) => {}
        }
    }

    /// Window names referenced by OVER clauses anywhere in the expression.
    pub fn window_refs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_calls(&mut |name, over| {
            let _ = name;
            if let Some(w) = over {
                out.push(w);
            }
        });
        out
    }

    fn visit_calls<'a>(&'a self, f: &mut impl FnMut(&'a str, Option<&'a str>)) {
        match self {
            Expr::Call { name, args, over } => {
                f(name, over.as_deref());
                for a in args {
                    a.visit_calls(f);
                }
            }
            Expr::Binary { left, right, .. } => {
                left.visit_calls(f);
                right.visit_calls(f);
            }
            Expr::Not(e) => e.visit_calls(f),
            Expr::IsNull { expr, .. } => expr.visit_calls(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit_calls(f);
                    v.visit_calls(f);
                }
                if let Some(e) = else_expr {
                    e.visit_calls(f);
                }
            }
            Expr::Literal(_) | Expr::Column(_) => {}
        }
    }
}

/// `CREATE TABLE name (col type [NOT NULL], ..., INDEX(KEY=..., TS=..., TTL=...))`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    pub name: String,
    pub columns: Vec<(String, DataType, bool)>,
    pub indexes: Vec<IndexDef>,
}

/// Index definition inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    pub key_columns: Vec<String>,
    pub ts_column: Option<String>,
    /// TTL expressed per the index's [`TtlSpec`].
    pub ttl: TtlSpec,
}

/// TTL policies, matching the paper's table types of Section 8.1:
/// `latest` (keep N most recent per key), `absolute` (keep a time range),
/// and the combined forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlSpec {
    /// Keep everything.
    Unlimited,
    /// Keep the latest `n` rows per key (`latest`).
    Latest(u64),
    /// Keep rows younger than this many milliseconds (`absolute`).
    AbsoluteMs(i64),
    /// Keep rows satisfying *both* bounds (`absandlat`).
    AbsAndLat { ms: i64, latest: u64 },
    /// Keep rows satisfying *either* bound (`absorlat`).
    AbsOrLat { ms: i64, latest: u64 },
}

/// `INSERT INTO t VALUES (...), (...)`
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    pub rows: Vec<Vec<Literal>>,
}

/// `DEPLOY name [OPTIONS(key="value", ...)] AS SELECT ...`
///
/// The OPTIONS map carries deployment knobs — notably
/// `long_windows="w1:1d"`, which turns on long-window pre-aggregation with
/// the given bucket granularity (paper Section 9.3.1, Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct DeployStatement {
    pub name: String,
    pub options: Vec<(String, String)>,
    pub select: SelectStatement,
}

impl DeployStatement {
    /// Parse the `long_windows` option into `(window, bucket)` pairs.
    /// Format: `"w1:1d,w2:1h"`.
    pub fn long_windows(&self) -> Vec<(String, String)> {
        self.options
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case("long_windows"))
            .flat_map(|(_, v)| {
                v.split(',').filter_map(|part| {
                    let (w, b) = part.split_once(':')?;
                    Some((w.trim().to_string(), b.trim().to_string()))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_contains() {
        let f = Frame::Rows { preceding: 2 };
        assert!(f.contains(0, 0, 0));
        assert!(f.contains(0, 0, 2));
        assert!(!f.contains(0, 0, 3));

        let f = Frame::RowsRange {
            preceding_ms: 3_000,
        };
        assert!(f.contains(10_000, 7_000, 99));
        assert!(!f.contains(10_000, 6_999, 0));
        assert!(!f.contains(10_000, 10_001, 0)); // future tuple excluded
        assert!(Frame::Unbounded.contains(0, -5, 1_000_000));
    }

    #[test]
    fn expr_visitors() {
        let e = Expr::Binary {
            op: BinaryOp::Add,
            left: Box::new(Expr::Column(ColumnRef::unqualified("a"))),
            right: Box::new(Expr::Call {
                name: "sum".into(),
                args: vec![Expr::Column(ColumnRef::unqualified("b"))],
                over: Some("w1".into()),
            }),
        };
        let cols: Vec<String> = e.column_refs().iter().map(|c| c.column.clone()).collect();
        assert_eq!(cols, vec!["a", "b"]);
        assert_eq!(e.window_refs(), vec!["w1"]);
    }

    #[test]
    fn long_windows_option_parsing() {
        let d = DeployStatement {
            name: "demo".into(),
            options: vec![("long_windows".into(), "w1:1d, w2:1h".into())],
            select: SelectStatement {
                items: vec![SelectItem::Wildcard],
                from: TableRef {
                    name: "t".into(),
                    alias: None,
                },
                joins: vec![],
                where_clause: None,
                windows: vec![],
                limit: None,
            },
        };
        assert_eq!(
            d.long_windows(),
            vec![
                ("w1".to_string(), "1d".to_string()),
                ("w2".to_string(), "1h".to_string())
            ]
        );
    }
}
