//! Global observability handles for the SQL front-end.
//!
//! Each accessor lazily registers its metric in the process-wide
//! [`Registry`](openmldb_obs::Registry) on first use and caches the handle in
//! a `OnceLock`, so hot paths never touch the registry lock.

use openmldb_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

/// Plan-cache probes that found a cached plan.
pub fn plan_cache_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_sql_plan_cache_hits_total",
        "Compilation cache probes that reused a cached plan",
    )
}

/// Plan-cache probes that had to parse and compile.
pub fn plan_cache_misses() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_sql_plan_cache_misses_total",
        "Compilation cache probes that parsed and compiled from scratch",
    )
}
