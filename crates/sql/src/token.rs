//! Tokenizer for OpenMLDB SQL.
//!
//! Keywords are case-insensitive; identifiers keep their original case.
//! Time-interval literals like `3s`, `5m`, `2h`, `100d` are lexed as a
//! dedicated token kind because they appear in `ROWS_RANGE` frames
//! (paper Section 4.1, Table 1).

use openmldb_types::{Error, Result};

/// One lexical token plus its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds produced by [`Lexer`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword, uppercased (`SELECT`, `WINDOW`, `LAST`, ...).
    Keyword(String),
    /// Identifier in original case.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single- or double-quoted string literal, unescaped.
    Str(String),
    /// Interval literal such as `3s` — value plus unit character.
    Interval {
        value: i64,
        unit: char,
    },
    // Punctuation and operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Eof,
}

/// Reserved words recognized as keywords. Everything else is an identifier.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "WINDOW",
    "AS",
    "PARTITION",
    "BY",
    "ORDER",
    "ROWS",
    "ROWS_RANGE",
    "BETWEEN",
    "PRECEDING",
    "AND",
    "OR",
    "NOT",
    "CURRENT",
    "ROW",
    "UNION",
    "LAST",
    "JOIN",
    "ON",
    "OVER",
    "LIMIT",
    "CREATE",
    "TABLE",
    "INSERT",
    "INTO",
    "VALUES",
    "INDEX",
    "KEY",
    "TS",
    "TTL",
    "TTL_TYPE",
    "DEPLOY",
    "OPTIONS",
    "NULL",
    "TRUE",
    "FALSE",
    "DESC",
    "ASC",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "MAXSIZE",
    "EXCLUDE",
    "CURRENT_ROW",
    "INSTANCE_NOT_IN_WINDOW",
    "CURRENT_TIME",
    "UNBOUNDED",
    "IF",
    "IS",
    "EXPLAIN",
];

/// Hand-rolled single-pass lexer.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let end = tok.kind == TokenKind::Eof;
            out.push(tok);
            if end {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `-- line comment`
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            position: self.pos,
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let pos = self.pos;
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(b) if b.is_ascii_digit() => self.lex_number()?,
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.lex_word(),
            Some(b'\'') | Some(b'"') => self.lex_string()?,
            Some(b'`') => self.lex_quoted_ident()?,
            Some(b) => {
                self.pos += 1;
                match b {
                    b',' => TokenKind::Comma,
                    b'.' => TokenKind::Dot,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'*' => TokenKind::Star,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b';' => TokenKind::Semicolon,
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.pos += 1;
                        }
                        TokenKind::Eq
                    }
                    b'!' => {
                        if self.bump() != Some(b'=') {
                            return Err(self.err("expected `=` after `!`"));
                        }
                        TokenKind::NotEq
                    }
                    b'<' => match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::LtEq
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    },
                    b'>' => {
                        if self.peek() == Some(b'=') {
                            self.pos += 1;
                            TokenKind::GtEq
                        } else {
                            TokenKind::Gt
                        }
                    }
                    other => {
                        return Err(self.err(format!("unexpected character `{}`", other as char)))
                    }
                }
            }
        };
        Ok(Token { kind, pos })
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        // Interval suffix: s / m / h / d immediately after digits, not
        // followed by another identifier character.
        if let Some(unit) = self.peek() {
            if matches!(unit, b's' | b'm' | b'h' | b'd')
                && !matches!(self.peek2(), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
            {
                let value: i64 = self.src[start..self.pos]
                    .parse()
                    .map_err(|e| self.err(format!("bad interval value: {e}")))?;
                self.pos += 1;
                return Ok(TokenKind::Interval {
                    value,
                    unit: unit as char,
                });
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b) if b.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.err(format!("bad float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.err(format!("bad integer literal: {e}")))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let upper = text.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            TokenKind::Keyword(upper)
        } else {
            TokenKind::Ident(text.to_string())
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        let quote = self.bump().expect("caller checked");
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(b) if b == quote => return Ok(TokenKind::Str(out)),
                Some(b) => out.push(b as char),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<TokenKind> {
        self.bump(); // opening backtick
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'`' {
                let text = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(TokenKind::Ident(text));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted identifier"))
    }
}

/// Tokenize `src` into a token list ending in [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Window"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Keyword("WINDOW".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn intervals_lexed() {
        assert_eq!(
            kinds("3s 100d 5m 2h"),
            vec![
                TokenKind::Interval {
                    value: 3,
                    unit: 's'
                },
                TokenKind::Interval {
                    value: 100,
                    unit: 'd'
                },
                TokenKind::Interval {
                    value: 5,
                    unit: 'm'
                },
                TokenKind::Interval {
                    value: 2,
                    unit: 'h'
                },
                TokenKind::Eof
            ]
        );
        // `3seconds` is NOT an interval; it's `3` then ident (error-free lexing).
        assert_eq!(
            kinds("3sec"),
            vec![
                TokenKind::Int(3),
                TokenKind::Ident("sec".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            kinds("42 3.25 1e3"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Float(1000.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a >= 1 != <> <="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::GtEq,
                TokenKind::Int(1),
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#"'a\'b' "c""#),
            vec![
                TokenKind::Str("a'b".into()),
                TokenKind::Str("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- comment here\n 1"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds("`select`"),
            vec![TokenKind::Ident("select".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a @ b").unwrap_err();
        match err {
            Error::Parse { position, .. } => assert_eq!(position, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
