//! Time-interval helpers for `ROWS_RANGE` frames and pre-aggregation
//! bucket specifications (`long_windows="w1:1d"`).

use openmldb_types::{Error, Result};

/// Milliseconds per unit.
pub const MS_PER_SECOND: i64 = 1_000;
pub const MS_PER_MINUTE: i64 = 60 * MS_PER_SECOND;
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MINUTE;
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// Convert an interval `(value, unit)` to milliseconds.
/// Units: `s`econd, `m`inute, `h`our, `d`ay.
pub fn to_ms(value: i64, unit: char) -> Result<i64> {
    let mult = match unit {
        's' => MS_PER_SECOND,
        'm' => MS_PER_MINUTE,
        'h' => MS_PER_HOUR,
        'd' => MS_PER_DAY,
        other => {
            return Err(Error::Parse {
                message: format!("unknown interval unit `{other}` (expected s/m/h/d)"),
                position: 0,
            })
        }
    };
    value.checked_mul(mult).ok_or_else(|| Error::Parse {
        message: "interval overflow".into(),
        position: 0,
    })
}

/// Parse a textual interval like `"1d"`, `"30m"`, or a bare millisecond
/// count like `"500"`.
pub fn parse_interval(text: &str) -> Result<i64> {
    let text = text.trim();
    if text.is_empty() {
        return Err(Error::Parse {
            message: "empty interval".into(),
            position: 0,
        });
    }
    let bad = |m: String| Error::Parse {
        message: m,
        position: 0,
    };
    let last = text.chars().last().expect("non-empty");
    if last.is_ascii_digit() {
        return text
            .parse::<i64>()
            .map_err(|e| bad(format!("bad interval `{text}`: {e}")));
    }
    let value: i64 = text[..text.len() - 1]
        .parse()
        .map_err(|e| bad(format!("bad interval `{text}`: {e}")))?;
    to_ms(value, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(to_ms(3, 's').unwrap(), 3_000);
        assert_eq!(to_ms(5, 'm').unwrap(), 300_000);
        assert_eq!(to_ms(2, 'h').unwrap(), 7_200_000);
        assert_eq!(to_ms(100, 'd').unwrap(), 8_640_000_000);
        assert!(to_ms(i64::MAX, 'd').is_err());
        assert!(to_ms(1, 'x').is_err());
    }

    #[test]
    fn textual_parsing() {
        assert_eq!(parse_interval("1d").unwrap(), MS_PER_DAY);
        assert_eq!(parse_interval(" 30m ").unwrap(), 30 * MS_PER_MINUTE);
        assert_eq!(parse_interval("500").unwrap(), 500);
        assert!(parse_interval("").is_err());
        assert!(parse_interval("abc").is_err());
    }
}
