//! The unified query plan generator (paper Section 4.2).
//!
//! `compile_select` turns a parsed [`SelectStatement`] into a
//! [`CompiledQuery`]: every column reference resolved to a positional index,
//! every window deduplicated, every aggregate call bound and deduplicated.
//! Both execution engines — online request-mode and offline batch — execute
//! this *same* compiled artifact, which is what guarantees online/offline
//! feature consistency (the paper's headline design goal).
//!
//! In the original system this stage lowers to LLVM IR; here it lowers to a
//! pre-resolved expression tree ([`PhysExpr`]) interpreted by
//! `openmldb-exec`. Column offsets, function bindings and window ids are all
//! resolved at compile time, so per-request work is a flat tree walk with no
//! name lookups — the property the JIT design is after.

use std::any::Any;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use openmldb_types::{ColumnDef, DataType, Error, Result, Schema, Value};

use crate::ast::*;
use crate::functions::{self, FunctionDef, FunctionKind};

/// Catalog interface the planner resolves table names against.
pub trait Catalog {
    /// Schema for `name`, or `None` if the table does not exist.
    fn table_schema(&self, name: &str) -> Option<Schema>;
}

/// A compiled, position-resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    Literal(Value),
    /// Index into the row the expression is evaluated against.
    Column(usize),
    Binary {
        op: BinaryOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    Not(Box<PhysExpr>),
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    /// Scalar built-in call.
    ScalarCall {
        func: &'static FunctionDef,
        args: Vec<PhysExpr>,
    },
    /// Reference to the result of `CompiledQuery::aggregates[i]`.
    AggRef(usize),
    Case {
        branches: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
}

impl PhysExpr {
    /// Append every column index referenced by this expression to `out`.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            PhysExpr::Column(i) => out.push(*i),
            PhysExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            PhysExpr::Not(e) => e.collect_columns(out),
            PhysExpr::IsNull { expr, .. } => expr.collect_columns(out),
            PhysExpr::ScalarCall { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            PhysExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            PhysExpr::Literal(_) | PhysExpr::AggRef(_) => {}
        }
    }
}

/// One bound LAST JOIN step.
#[derive(Debug, Clone)]
pub struct BoundJoin {
    pub table: String,
    pub schema: Schema,
    /// Offset of this table's first column in the combined schema.
    pub offset: usize,
    /// Equality pairs `(combined-row index, right-table index)` extracted
    /// from the ON condition; these drive index lookups.
    pub eq_pairs: Vec<(usize, usize)>,
    /// Right-table column that orders candidates; the *latest* match wins.
    pub order_col: Option<usize>,
    /// Residual non-equi predicate over the combined row, if any.
    pub residual: Option<PhysExpr>,
}

/// A bound, deduplicated window definition.
#[derive(Debug, Clone)]
pub struct BoundWindow {
    /// Canonical name (the first name that introduced this spec).
    pub name: String,
    /// All source names merged into this window (for EXPLAIN / stats).
    pub merged_names: Vec<String>,
    /// Partition columns, as indices into the *base table* schema.
    pub partition_cols: Vec<usize>,
    /// Order column index in the base table schema.
    pub order_col: usize,
    pub order_desc: bool,
    pub frame: Frame,
    pub maxsize: Option<usize>,
    pub exclude_current_row: bool,
    pub instance_not_in_window: bool,
    /// Window-union source tables (paper Section 5.2); each must be
    /// schema-compatible with the base table.
    pub union_tables: Vec<String>,
}

/// One bound aggregate call, evaluated over a window's rows.
#[derive(Debug, Clone)]
pub struct BoundAggregate {
    pub window_id: usize,
    pub func: &'static FunctionDef,
    /// Argument expressions over the *base table* schema.
    pub args: Vec<PhysExpr>,
    pub output_type: DataType,
}

impl PartialEq for BoundAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.window_id == other.window_id
            && std::ptr::eq(self.func, other.func)
            && self.args == other.args
    }
}

/// Plan-level statistics exposed for tests and EXPLAIN output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Window definitions merged because their specs were identical
    /// (parsing optimization, Section 4.2).
    pub merged_windows: usize,
    /// Aggregate calls deduplicated across the select list
    /// (cyclic binding shares their state, Section 4.2).
    pub deduped_aggregates: usize,
}

/// One output column of the query.
#[derive(Debug, Clone)]
pub struct OutputColumn {
    pub name: String,
    pub expr: PhysExpr,
    pub data_type: DataType,
}

/// Write-once slot where the execution layer attaches the deploy-time
/// specialized program for this plan (paper Section 4.2's "compiled artifact
/// cached with the plan" — the reproduction's stand-in for cached LLVM IR).
///
/// The slot is type-erased (`dyn Any`) so this crate stays independent of
/// the execution crate that defines the program representation. Clones share
/// the slot, which is what makes the program ride along with the
/// `Arc<CompiledQuery>` handed out by the plan cache: every deployment of a
/// cache-hit plan sees the same compiled program without recompiling.
#[derive(Clone, Default)]
pub struct SpecializationSlot(Arc<OnceLock<Arc<dyn Any + Send + Sync>>>);

impl SpecializationSlot {
    /// The cached program, initializing it with `init` on first access.
    /// Concurrent initializers race benignly; one value wins and is returned
    /// to everyone.
    pub fn get_or_init(
        &self,
        init: impl FnOnce() -> Arc<dyn Any + Send + Sync>,
    ) -> Arc<dyn Any + Send + Sync> {
        self.0.get_or_init(init).clone()
    }

    /// The cached program, if one has been attached.
    pub fn get(&self) -> Option<Arc<dyn Any + Send + Sync>> {
        self.0.get().cloned()
    }
}

impl std::fmt::Debug for SpecializationSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "SpecializationSlot(compiled)"
        } else {
            "SpecializationSlot(unset)"
        })
    }
}

/// The compiled query — the single artifact both engines execute.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub base_table: String,
    pub base_schema: Schema,
    pub joins: Vec<BoundJoin>,
    /// Base schema followed by each join table's schema.
    pub combined_schema: Schema,
    pub windows: Vec<BoundWindow>,
    pub aggregates: Vec<BoundAggregate>,
    /// Filter over the combined row.
    pub where_clause: Option<PhysExpr>,
    pub select: Vec<OutputColumn>,
    pub output_schema: Schema,
    pub limit: Option<usize>,
    pub stats: PlanStats,
    /// Deploy-time specialized program, attached lazily by the execution
    /// layer and shared across every clone of this plan (including the
    /// cached `Arc` in [`crate::cache::PlanCache`]).
    pub specialized: SpecializationSlot,
}

impl CompiledQuery {
    /// Aggregate ids grouped per window, in window order — the unit the
    /// engines evaluate in a single pass (cyclic binding).
    pub fn aggregates_by_window(&self) -> Vec<Vec<usize>> {
        let mut by_window = vec![Vec::new(); self.windows.len()];
        for (i, a) in self.aggregates.iter().enumerate() {
            by_window[a.window_id].push(i);
        }
        by_window
    }

    /// Render a plan tree in the paper's Section 6.1 vocabulary: with more
    /// than one window, independent `WindowAgg` nodes feed a `ConcatJoin`
    /// over a shared `SimpleProject` that carries the synthetic index column.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Project {}", self.output_schema);
        if let Some(_w) = &self.where_clause {
            let _ = writeln!(out, "  Filter <predicate>");
        }
        let indent = if self.windows.len() > 1 {
            let _ = writeln!(out, "  ConcatJoin (LAST JOIN on #index)");
            "    "
        } else {
            "  "
        };
        for (wid, w) in self.windows.iter().enumerate() {
            let aggs = self
                .aggregates
                .iter()
                .filter(|a| a.window_id == wid)
                .map(|a| a.func.name)
                .collect::<Vec<_>>()
                .join(", ");
            let union = if w.union_tables.is_empty() {
                String::new()
            } else {
                format!(" UNION [{}]", w.union_tables.join(", "))
            };
            let _ = writeln!(
                out,
                "{indent}WindowAgg {} [{}]{union} frame={:?}",
                w.name, aggs, w.frame
            );
        }
        if self.windows.len() > 1 {
            let _ = writeln!(out, "    SimpleProject (+#index column)");
        }
        for j in &self.joins {
            let _ = writeln!(out, "  LastJoin {} on {:?}", j.table, j.eq_pairs);
        }
        let _ = writeln!(out, "  TableScan {}", self.base_table);
        out
    }

    /// Index requirements this plan would like the storage layer to satisfy:
    /// `(table, key columns, ts column)` per window and join.
    pub fn index_hints(&self) -> Vec<(String, Vec<String>, Option<String>)> {
        let mut hints = Vec::new();
        for w in &self.windows {
            let keys: Vec<String> = w
                .partition_cols
                .iter()
                .map(|&i| self.base_schema.column(i).name.clone())
                .collect();
            let ts = Some(self.base_schema.column(w.order_col).name.clone());
            hints.push((self.base_table.clone(), keys.clone(), ts.clone()));
            for u in &w.union_tables {
                hints.push((u.clone(), keys.clone(), ts.clone()));
            }
        }
        for j in &self.joins {
            let keys: Vec<String> = j
                .eq_pairs
                .iter()
                .map(|&(_, r)| j.schema.column(r).name.clone())
                .collect();
            let ts = j.order_col.map(|i| j.schema.column(i).name.clone());
            hints.push((j.table.clone(), keys, ts));
        }
        hints
    }
}

// ---------------------------------------------------------------- binder --

/// Scope used to resolve column names to combined-row offsets.
struct Scope {
    /// `(qualifier, schema, offset)` per table in join order; base first.
    tables: Vec<(String, Schema, usize)>,
}

impl Scope {
    fn resolve(&self, c: &ColumnRef) -> Result<(usize, DataType)> {
        match &c.table {
            Some(q) => {
                for (name, schema, off) in &self.tables {
                    if name == q {
                        let i = schema.index_of(&c.column)?;
                        return Ok((off + i, schema.column(i).data_type));
                    }
                }
                Err(Error::Plan(format!(
                    "unknown table qualifier `{q}` in `{c}`"
                )))
            }
            None => {
                let mut found = None;
                for (_, schema, off) in &self.tables {
                    if let Ok(i) = schema.index_of(&c.column) {
                        if found.is_some() {
                            return Err(Error::Plan(format!("ambiguous column `{c}`")));
                        }
                        found = Some((off + i, schema.column(i).data_type));
                    }
                }
                found.ok_or_else(|| Error::Plan(format!("unknown column `{c}`")))
            }
        }
    }
}

/// Compile a SELECT against a catalog.
pub fn compile_select(stmt: &SelectStatement, catalog: &dyn Catalog) -> Result<CompiledQuery> {
    let base_schema = catalog
        .table_schema(&stmt.from.name)
        .ok_or_else(|| Error::Plan(format!("unknown table `{}`", stmt.from.name)))?;

    // Build the combined scope: base table, then each LAST JOIN table.
    let mut scope = Scope {
        tables: vec![(
            stmt.from.effective_name().to_string(),
            base_schema.clone(),
            0,
        )],
    };
    let mut combined_schema = base_schema.clone();
    let mut joins = Vec::with_capacity(stmt.joins.len());
    for j in &stmt.joins {
        let schema = catalog
            .table_schema(&j.right.name)
            .ok_or_else(|| Error::Plan(format!("unknown table `{}`", j.right.name)))?;
        let offset = combined_schema.len();
        combined_schema = combined_schema.concat(&schema)?;
        scope
            .tables
            .push((j.right.effective_name().to_string(), schema.clone(), offset));
        joins.push((j, schema, offset));
    }

    // Bind join conditions now that the full scope exists.
    let bound_joins = joins
        .into_iter()
        .map(|(j, schema, offset)| bind_join(j, schema, offset, &scope))
        .collect::<Result<Vec<_>>>()?;

    // Bind and deduplicate windows (parsing optimization: identical specs
    // merge into one window id regardless of name).
    let mut windows: Vec<BoundWindow> = Vec::new();
    let mut name_to_window = std::collections::HashMap::new();
    let mut merged = 0usize;
    for def in &stmt.windows {
        let bound = bind_window(def, &base_schema, catalog)?;
        if let Some(existing) = windows.iter_mut().find(|w| window_spec_eq(w, &bound)) {
            existing.merged_names.push(def.name.clone());
            let id = name_to_window[&existing.name];
            name_to_window.insert(def.name.clone(), id);
            merged += 1;
        } else {
            name_to_window.insert(def.name.clone(), windows.len());
            windows.push(bound);
        }
    }

    // Compile select items; aggregate calls land in `aggregates` (deduped).
    let mut binder = ExprBinder {
        scope: &scope,
        base_schema: &base_schema,
        windows: &name_to_window,
        aggregates: Vec::new(),
        deduped: 0,
    };
    let mut select = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (qi, (_, schema, off)) in scope.tables.iter().enumerate() {
                    for (i, col) in schema.columns().iter().enumerate() {
                        let name = if qi == 0 {
                            col.name.clone()
                        } else {
                            combined_schema.column(off + i).name.clone()
                        };
                        select.push(OutputColumn {
                            name,
                            expr: PhysExpr::Column(off + i),
                            data_type: col.data_type,
                        });
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let (_, schema, off) = scope
                    .tables
                    .iter()
                    .find(|(n, _, _)| n == q)
                    .ok_or_else(|| Error::Plan(format!("unknown table `{q}` in `{q}.*`")))?;
                for (i, col) in schema.columns().iter().enumerate() {
                    select.push(OutputColumn {
                        name: col.name.clone(),
                        expr: PhysExpr::Column(off + i),
                        data_type: col.data_type,
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                let (phys, dt) = binder.bind(expr)?;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| derive_name(expr, select.len()));
                select.push(OutputColumn {
                    name,
                    expr: phys,
                    data_type: dt,
                });
            }
        }
    }

    // WHERE over the combined row; aggregates are not allowed there.
    let where_clause = match &stmt.where_clause {
        Some(e) => {
            if !e.window_refs().is_empty() {
                return Err(Error::Plan("aggregates are not allowed in WHERE".into()));
            }
            Some(binder.bind(e)?.0)
        }
        None => None,
    };

    // Release the scope/schema borrows; keep only the collected aggregates.
    let ExprBinder {
        aggregates,
        deduped,
        ..
    } = binder;

    // Validate that every aggregate names a known window.
    for a in &aggregates {
        if a.window_id >= windows.len() {
            return Err(Error::Plan("aggregate bound to unknown window".into()));
        }
    }

    let mut names_seen = std::collections::HashSet::new();
    let output_schema = Schema::new(
        select
            .iter()
            .map(|c| {
                let mut name = c.name.clone();
                let mut n = 1;
                while !names_seen.insert(name.clone()) {
                    name = format!("{}_{n}", c.name);
                    n += 1;
                }
                ColumnDef::new(name, c.data_type)
            })
            .collect(),
    )?;

    Ok(CompiledQuery {
        base_table: stmt.from.name.clone(),
        base_schema,
        joins: bound_joins,
        combined_schema,
        aggregates,
        stats: PlanStats {
            merged_windows: merged,
            deduped_aggregates: deduped,
        },
        windows,
        where_clause,
        select,
        output_schema,
        limit: stmt.limit,
        specialized: SpecializationSlot::default(),
    })
}

fn window_spec_eq(a: &BoundWindow, b: &BoundWindow) -> bool {
    a.partition_cols == b.partition_cols
        && a.order_col == b.order_col
        && a.order_desc == b.order_desc
        && a.frame == b.frame
        && a.maxsize == b.maxsize
        && a.exclude_current_row == b.exclude_current_row
        && a.instance_not_in_window == b.instance_not_in_window
        && a.union_tables == b.union_tables
}

fn bind_window(
    def: &WindowDef,
    base_schema: &Schema,
    catalog: &dyn Catalog,
) -> Result<BoundWindow> {
    let partition_cols = def
        .spec
        .partition_by
        .iter()
        .map(|c| base_schema.index_of(&c.column))
        .collect::<Result<Vec<_>>>()?;
    let order_col = base_schema.index_of(&def.spec.order_by.column)?;
    let order_type = base_schema.column(order_col).data_type;
    if !matches!(
        order_type,
        DataType::Timestamp | DataType::Bigint | DataType::Int
    ) {
        return Err(Error::Plan(format!(
            "window `{}` ORDER BY column must be time-ordered (TIMESTAMP/BIGINT/INT), got {}",
            def.name, order_type
        )));
    }
    // Union tables must be schema-compatible with the base table so their
    // tuples can flow through the same window aggregators (Section 5.2).
    let mut union_tables = Vec::new();
    for t in &def.spec.union_tables {
        let s = catalog
            .table_schema(&t.name)
            .ok_or_else(|| Error::Plan(format!("unknown union table `{}`", t.name)))?;
        if s != *base_schema {
            return Err(Error::Plan(format!(
                "window `{}` UNION table `{}` must match the base table schema {base_schema}",
                def.name, t.name
            )));
        }
        union_tables.push(t.name.clone());
    }
    Ok(BoundWindow {
        name: def.name.clone(),
        merged_names: vec![def.name.clone()],
        partition_cols,
        order_col,
        order_desc: def.spec.order_desc,
        frame: def.spec.frame,
        maxsize: def.spec.maxsize,
        exclude_current_row: def.spec.exclude_current_row,
        instance_not_in_window: def.spec.instance_not_in_window,
        union_tables,
    })
}

fn bind_join(j: &LastJoin, schema: Schema, offset: usize, scope: &Scope) -> Result<BoundJoin> {
    let order_col = match &j.order_by {
        Some(c) => Some(schema.index_of(&c.column)?),
        None => None,
    };
    // Split the ON condition into conjuncts; keep `left = right` pairs as
    // index-lookup keys and everything else as a residual predicate.
    let mut eq_pairs = Vec::new();
    let mut residual = Vec::new();
    let mut stack = vec![&j.condition];
    let mut conjuncts = Vec::new();
    while let Some(e) = stack.pop() {
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                stack.push(left);
                stack.push(right);
            }
            other => conjuncts.push(other),
        }
    }
    let right_range = offset..offset + schema.len();
    for c in conjuncts {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = c
        {
            if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                let (ia, _) = scope.resolve(a)?;
                let (ib, _) = scope.resolve(b)?;
                match (right_range.contains(&ia), right_range.contains(&ib)) {
                    (false, true) => {
                        eq_pairs.push((ia, ib - offset));
                        continue;
                    }
                    (true, false) => {
                        eq_pairs.push((ib, ia - offset));
                        continue;
                    }
                    _ => {}
                }
            }
        }
        residual.push(c.clone());
    }
    if eq_pairs.is_empty() {
        return Err(Error::Plan(format!(
            "LAST JOIN {} requires at least one equality between left and right columns",
            j.right.name
        )));
    }
    let residual = residual
        .into_iter()
        .map(|e| {
            let mut binder = ExprBinder {
                scope,
                base_schema: &schema, // unused for non-aggregate exprs
                windows: &std::collections::HashMap::new(),
                aggregates: Vec::new(),
                deduped: 0,
            };
            binder.bind(&e).map(|(p, _)| p)
        })
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .reduce(|a, b| PhysExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(a),
            right: Box::new(b),
        });
    Ok(BoundJoin {
        table: j.right.name.clone(),
        schema,
        offset,
        eq_pairs,
        order_col,
        residual,
    })
}

/// Expression binder: resolves columns via `scope`, aggregate arguments via
/// `base_schema`, and collects deduplicated aggregate calls.
struct ExprBinder<'a> {
    scope: &'a Scope,
    base_schema: &'a Schema,
    windows: &'a std::collections::HashMap<String, usize>,
    aggregates: Vec<BoundAggregate>,
    deduped: usize,
}

impl ExprBinder<'_> {
    fn bind(&mut self, e: &Expr) -> Result<(PhysExpr, DataType)> {
        Ok(match e {
            Expr::Literal(l) => {
                let v = literal_value(l);
                let dt = v.data_type().unwrap_or(DataType::Double);
                (PhysExpr::Literal(v), dt)
            }
            Expr::Column(c) => {
                let (idx, dt) = self.scope.resolve(c)?;
                (PhysExpr::Column(idx), dt)
            }
            Expr::Binary { op, left, right } => {
                let (l, lt) = self.bind(left)?;
                let (r, rt) = self.bind(right)?;
                let dt = binary_result_type(*op, lt, rt);
                (
                    PhysExpr::Binary {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    dt,
                )
            }
            Expr::Not(inner) => {
                let (i, _) = self.bind(inner)?;
                (PhysExpr::Not(Box::new(i)), DataType::Bool)
            }
            Expr::IsNull { expr, negated } => {
                let (i, _) = self.bind(expr)?;
                (
                    PhysExpr::IsNull {
                        expr: Box::new(i),
                        negated: *negated,
                    },
                    DataType::Bool,
                )
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut bound = Vec::with_capacity(branches.len());
                let mut dt = None;
                for (c, v) in branches {
                    let (bc, _) = self.bind(c)?;
                    let (bv, vt) = self.bind(v)?;
                    dt.get_or_insert(vt);
                    bound.push((bc, bv));
                }
                let else_bound = match else_expr {
                    Some(e) => {
                        let (b, _) = self.bind(e)?;
                        Some(Box::new(b))
                    }
                    None => None,
                };
                (
                    PhysExpr::Case {
                        branches: bound,
                        else_expr: else_bound,
                    },
                    dt.unwrap_or(DataType::Double),
                )
            }
            Expr::Call { name, args, over } => self.bind_call(name, args, over.as_deref())?,
        })
    }

    fn bind_call(
        &mut self,
        name: &str,
        args: &[Expr],
        over: Option<&str>,
    ) -> Result<(PhysExpr, DataType)> {
        let def = functions::resolve(name, args.len())?;
        match def.kind {
            FunctionKind::Scalar => {
                if over.is_some() {
                    return Err(Error::Plan(format!(
                        "scalar function `{name}` cannot take an OVER clause"
                    )));
                }
                let mut bound = Vec::with_capacity(args.len());
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    let (b, t) = self.bind(a)?;
                    arg_types.push(Some(t));
                    bound.push(b);
                }
                let dt = (def.infer)(&arg_types);
                Ok((
                    PhysExpr::ScalarCall {
                        func: def,
                        args: bound,
                    },
                    dt,
                ))
            }
            FunctionKind::Aggregate => {
                let window_name = over.ok_or_else(|| {
                    Error::Plan(format!(
                        "aggregate `{name}` requires an OVER <window> clause"
                    ))
                })?;
                let window_id = *self.windows.get(window_name).ok_or_else(|| {
                    Error::Plan(format!("unknown window `{window_name}` in OVER clause"))
                })?;
                // Aggregate arguments are evaluated over window rows — the
                // base/union table schema, not the joined row.
                let base_scope = Scope {
                    tables: vec![("".into(), self.base_schema.clone(), 0)],
                };
                let mut sub = ExprBinder {
                    scope: &base_scope,
                    base_schema: self.base_schema,
                    windows: self.windows,
                    aggregates: Vec::new(),
                    deduped: 0,
                };
                let mut bound = Vec::with_capacity(args.len());
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    // Strip qualifiers inside aggregate args: window rows come
                    // from possibly multiple union tables.
                    let stripped = strip_qualifiers(a);
                    let (b, t) = sub.bind(&stripped)?;
                    arg_types.push(Some(t));
                    bound.push(b);
                }
                if !sub.aggregates.is_empty() {
                    return Err(Error::Plan(format!("nested aggregate in `{name}`")));
                }
                let output_type = (def.infer)(&arg_types);
                let candidate = BoundAggregate {
                    window_id,
                    func: def,
                    args: bound,
                    output_type,
                };
                // Cyclic-binding dedup: identical calls share one slot.
                if let Some(i) = self.aggregates.iter().position(|a| *a == candidate) {
                    self.deduped += 1;
                    return Ok((PhysExpr::AggRef(i), output_type));
                }
                self.aggregates.push(candidate);
                Ok((PhysExpr::AggRef(self.aggregates.len() - 1), output_type))
            }
        }
    }
}

/// Remove table qualifiers from every column reference (used for window
/// aggregate arguments, which address window rows positionally).
fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(ColumnRef::unqualified(c.column.clone())),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left)),
            right: Box::new(strip_qualifiers(right)),
        },
        Expr::Not(i) => Expr::Not(Box::new(strip_qualifiers(i))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        Expr::Call { name, args, over } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
            over: over.clone(),
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (strip_qualifiers(c), strip_qualifiers(v)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(strip_qualifiers(e))),
        },
        Expr::Literal(_) => e.clone(),
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(i) => Value::Bigint(*i),
        Literal::Float(f) => Value::Double(*f),
        Literal::Str(s) => Value::string(s.as_str()),
    }
}

fn binary_result_type(op: BinaryOp, lt: DataType, rt: DataType) -> DataType {
    use BinaryOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq | And | Or => DataType::Bool,
        Add | Sub | Mul | Div | Mod => {
            if lt == DataType::Double
                || rt == DataType::Double
                || lt == DataType::Float
                || rt == DataType::Float
                || op == Div
            {
                DataType::Double
            } else {
                DataType::Bigint
            }
        }
    }
}

fn derive_name(e: &Expr, ordinal: usize) -> String {
    match e {
        Expr::Column(c) => c.column.clone(),
        Expr::Call { name, .. } => name.clone(),
        _ => format!("expr_{ordinal}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use std::collections::HashMap;

    struct TestCatalog(HashMap<String, Schema>);

    impl Catalog for TestCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            self.0.get(name).cloned()
        }
    }

    fn catalog() -> TestCatalog {
        let actions = Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("category", DataType::String),
            ("price", DataType::Double),
            ("quantity", DataType::Int),
            ("ts", DataType::Timestamp),
        ])
        .unwrap();
        let profiles = Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("age", DataType::Int),
            ("updated", DataType::Timestamp),
        ])
        .unwrap();
        let mut m = HashMap::new();
        m.insert("actions".into(), actions.clone());
        m.insert("orders".into(), actions); // union tables share the schema
        m.insert("profiles".into(), profiles);
        TestCatalog(m)
    }

    fn compile(sql: &str) -> CompiledQuery {
        compile_select(&parse_select(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn binds_windows_and_aggregates() {
        let q = compile(
            "SELECT userid, sum(price) OVER w AS total, avg(price) OVER w AS mean \
             FROM actions WINDOW w AS (PARTITION BY userid ORDER BY ts \
             ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW)",
        );
        assert_eq!(q.windows.len(), 1);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.output_schema.len(), 3);
        assert_eq!(q.output_schema.column(1).name, "total");
        assert_eq!(q.output_schema.column(1).data_type, DataType::Double);
        assert_eq!(q.windows[0].partition_cols, vec![0]);
        assert_eq!(q.windows[0].order_col, 4);
    }

    #[test]
    fn identical_windows_merge() {
        let q = compile(
            "SELECT sum(price) OVER w1 AS a, count(price) OVER w2 AS b FROM actions \
             WINDOW w1 AS (PARTITION BY userid ORDER BY ts ROWS BETWEEN 10 PRECEDING AND CURRENT ROW), \
                    w2 AS (PARTITION BY userid ORDER BY ts ROWS BETWEEN 10 PRECEDING AND CURRENT ROW)",
        );
        assert_eq!(q.windows.len(), 1, "specs identical → merged");
        assert_eq!(q.stats.merged_windows, 1);
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.aggregates.iter().all(|a| a.window_id == 0));
    }

    #[test]
    fn duplicate_aggregates_dedupe() {
        let q = compile(
            "SELECT sum(price) OVER w AS a, sum(price) OVER w AS b, \
                    sum(price) OVER w + 1 AS c FROM actions \
             WINDOW w AS (PARTITION BY userid ORDER BY ts ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
        );
        assert_eq!(q.aggregates.len(), 1, "one physical sum state");
        assert_eq!(q.stats.deduped_aggregates, 2);
    }

    #[test]
    fn last_join_extracts_eq_pairs() {
        let q = compile(
            "SELECT actions.userid, profiles.age FROM actions \
             LAST JOIN profiles ORDER BY profiles.updated ON actions.userid = profiles.userid",
        );
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].eq_pairs, vec![(0, 0)]);
        assert_eq!(q.joins[0].order_col, Some(2));
        assert!(q.joins[0].residual.is_none());
        assert_eq!(q.combined_schema.len(), 8);
    }

    #[test]
    fn join_residual_predicate_kept() {
        let q = compile(
            "SELECT actions.userid FROM actions \
             LAST JOIN profiles ON actions.userid = profiles.userid AND profiles.age > 18",
        );
        assert!(q.joins[0].residual.is_some());
        assert_eq!(q.joins[0].eq_pairs.len(), 1);
    }

    #[test]
    fn window_union_requires_schema_match() {
        let err = compile_select(
            &parse_select(
                "SELECT count(price) OVER w AS c FROM actions WINDOW w AS (\
                 UNION profiles PARTITION BY userid ORDER BY ts \
                 ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("must match"), "{err}");

        let ok = compile(
            "SELECT count(price) OVER w AS c FROM actions WINDOW w AS (\
             UNION orders PARTITION BY userid ORDER BY ts \
             ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
        );
        assert_eq!(ok.windows[0].union_tables, vec!["orders"]);
    }

    #[test]
    fn aggregate_requires_over() {
        let err = compile_select(
            &parse_select("SELECT sum(price) AS s FROM actions").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("OVER"));
    }

    #[test]
    fn unknown_column_and_table_errors() {
        let c = catalog();
        assert!(compile_select(&parse_select("SELECT x FROM actions").unwrap(), &c).is_err());
        assert!(compile_select(&parse_select("SELECT a FROM missing").unwrap(), &c).is_err());
    }

    #[test]
    fn explain_shows_concat_join_for_multiwindow() {
        let q = compile(
            "SELECT sum(price) OVER w1 AS a, count(price) OVER w2 AS b FROM actions \
             WINDOW w1 AS (PARTITION BY userid ORDER BY ts ROWS BETWEEN 10 PRECEDING AND CURRENT ROW), \
                    w2 AS (PARTITION BY category ORDER BY ts ROWS BETWEEN 10 PRECEDING AND CURRENT ROW)",
        );
        let plan = q.explain();
        assert!(plan.contains("ConcatJoin"), "{plan}");
        assert!(plan.contains("SimpleProject"), "{plan}");
    }

    #[test]
    fn index_hints_cover_windows_and_joins() {
        let q = compile(
            "SELECT actions.userid, profiles.age, sum(price) OVER w AS s FROM actions \
             LAST JOIN profiles ON actions.userid = profiles.userid \
             WINDOW w AS (UNION orders PARTITION BY userid ORDER BY ts \
             ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
        );
        let hints = q.index_hints();
        assert!(hints.contains(&("actions".into(), vec!["userid".into()], Some("ts".into()))));
        assert!(hints.contains(&("orders".into(), vec!["userid".into()], Some("ts".into()))));
        assert!(hints.contains(&("profiles".into(), vec!["userid".into()], None)));
    }

    #[test]
    fn output_name_collisions_get_suffixed() {
        let q = compile("SELECT userid, userid FROM actions");
        assert_eq!(q.output_schema.column(0).name, "userid");
        assert_eq!(q.output_schema.column(1).name, "userid_1");
    }

    #[test]
    fn where_rejects_aggregates() {
        let err = compile_select(
            &parse_select(
                "SELECT userid FROM actions WHERE sum(price) OVER w > 5 \
                 WINDOW w AS (PARTITION BY userid ORDER BY ts ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("WHERE"));
    }
}
