//! Built-in function metadata: names, arities, aggregate-ness, and return
//! types. Semantics live in `openmldb-exec`; keeping the *metadata* here lets
//! the planner validate calls and infer output schemas without depending on
//! the execution crate (the paper's "unified query plan generator" validates
//! scripts identically for both execution stages).

use openmldb_types::{DataType, Error, Result};

/// Whether a function is a window aggregate or a per-row scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionKind {
    Aggregate,
    Scalar,
}

/// Metadata for one built-in function.
///
/// Equality is by name — there is exactly one registry entry per name.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    pub name: &'static str,
    pub kind: FunctionKind,
    pub min_args: usize,
    pub max_args: usize,
    /// Return type given argument types (None entries = NULL literal args).
    pub infer: fn(&[Option<DataType>]) -> DataType,
}

impl PartialEq for FunctionDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for FunctionDef {}

fn ret_double(_: &[Option<DataType>]) -> DataType {
    DataType::Double
}
fn ret_bigint(_: &[Option<DataType>]) -> DataType {
    DataType::Bigint
}
fn ret_string(_: &[Option<DataType>]) -> DataType {
    DataType::String
}
fn ret_bool(_: &[Option<DataType>]) -> DataType {
    DataType::Bool
}
fn ret_int(_: &[Option<DataType>]) -> DataType {
    DataType::Int
}
/// Same as the first argument (NULL args default to DOUBLE).
fn ret_arg0(args: &[Option<DataType>]) -> DataType {
    args.first().copied().flatten().unwrap_or(DataType::Double)
}
/// Numeric-preserving: integer args stay BIGINT, floats become DOUBLE.
fn ret_numeric(args: &[Option<DataType>]) -> DataType {
    match args.first().copied().flatten() {
        Some(DataType::Int) | Some(DataType::Bigint) | Some(DataType::Timestamp) => {
            DataType::Bigint
        }
        _ => DataType::Double,
    }
}

/// The registry of built-in functions. The paper advertises 150+ built-ins;
/// this reproduction implements the ones its examples and evaluation use,
/// plus the common SQL core.
pub const BUILTINS: &[FunctionDef] = &[
    // ---- Standard aggregates -------------------------------------------
    FunctionDef {
        name: "sum",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_numeric,
    },
    FunctionDef {
        name: "min",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "max",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "avg",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "count",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "stddev",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "median",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    // ---- Conditional aggregates (paper §4.1 category 2) ----------------
    FunctionDef {
        name: "count_where",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "sum_where",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_numeric,
    },
    FunctionDef {
        name: "avg_where",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_double,
    },
    FunctionDef {
        name: "min_where",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "max_where",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_arg0,
    },
    // ---- Frequency-based (category 1) -----------------------------------
    FunctionDef {
        name: "distinct_count",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "topn_frequency",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_string,
    },
    FunctionDef {
        name: "top",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_string,
    },
    // ---- Category-keyed conditional aggregates ---------------------------
    FunctionDef {
        name: "avg_cate_where",
        kind: FunctionKind::Aggregate,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "sum_cate_where",
        kind: FunctionKind::Aggregate,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "count_cate_where",
        kind: FunctionKind::Aggregate,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "avg_cate",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_string,
    },
    // ---- Time-series (category 3) ---------------------------------------
    FunctionDef {
        name: "drawdown",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "ew_avg",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_double,
    },
    FunctionDef {
        name: "lag",
        kind: FunctionKind::Aggregate,
        min_args: 2,
        max_args: 2,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "first_value",
        kind: FunctionKind::Aggregate,
        min_args: 1,
        max_args: 1,
        infer: ret_arg0,
    },
    // ---- GLQ-style geo aggregate ----------------------------------------
    FunctionDef {
        name: "geo_grid_count",
        kind: FunctionKind::Aggregate,
        min_args: 3,
        max_args: 3,
        infer: ret_bigint,
    },
    // ---- Scalars ---------------------------------------------------------
    FunctionDef {
        name: "abs",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "ceil",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "floor",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "round",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "sqrt",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "log",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "exp",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "pow",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_double,
    },
    FunctionDef {
        name: "upper",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "lower",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "substr",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "concat",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 8,
        infer: ret_string,
    },
    FunctionDef {
        name: "char_length",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "if_null",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "if",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: |a| a.get(1).copied().flatten().unwrap_or(DataType::Double),
    },
    FunctionDef {
        name: "is_in",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_bool,
    },
    // ---- String parsing (category 4) -------------------------------------
    FunctionDef {
        name: "split_by_key",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "split_by_value",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    // ---- Feature signatures (category 5) ----------------------------------
    FunctionDef {
        name: "multiclass_label",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "binary_label",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "continuous",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "discrete",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 2,
        infer: ret_bigint,
    },
    FunctionDef {
        name: "hash64",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
    // ---- Time scalars ------------------------------------------------------
    FunctionDef {
        name: "day",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "hour",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "minute",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    // ---- Geo scalars -------------------------------------------------------
    FunctionDef {
        name: "geo_distance",
        kind: FunctionKind::Scalar,
        min_args: 4,
        max_args: 4,
        infer: ret_double,
    },
    FunctionDef {
        name: "geo_hash",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_bigint,
    },
    // ---- Additional math scalars ------------------------------------------
    FunctionDef {
        name: "sin",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "cos",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "tan",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "atan",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "log2",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "log10",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "truncate",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_double,
    },
    FunctionDef {
        name: "sign",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "greatest",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 8,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "least",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 8,
        infer: ret_arg0,
    },
    FunctionDef {
        name: "degrees",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "radians",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    // ---- Additional string scalars ------------------------------------------
    FunctionDef {
        name: "trim",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "ltrim",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "rtrim",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "replace",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "reverse",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "strcmp",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_int,
    },
    FunctionDef {
        name: "starts_with",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_bool,
    },
    FunctionDef {
        name: "ends_with",
        kind: FunctionKind::Scalar,
        min_args: 2,
        max_args: 2,
        infer: ret_bool,
    },
    FunctionDef {
        name: "lcase",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "ucase",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    FunctionDef {
        name: "lpad",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "rpad",
        kind: FunctionKind::Scalar,
        min_args: 3,
        max_args: 3,
        infer: ret_string,
    },
    FunctionDef {
        name: "string",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_string,
    },
    // ---- Additional time scalars --------------------------------------------
    FunctionDef {
        name: "year",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "month",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "dayofmonth",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "dayofweek",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    FunctionDef {
        name: "week",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_int,
    },
    // ---- Conversions ----------------------------------------------------------
    FunctionDef {
        name: "double",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_double,
    },
    FunctionDef {
        name: "bigint",
        kind: FunctionKind::Scalar,
        min_args: 1,
        max_args: 1,
        infer: ret_bigint,
    },
];

/// Look up a builtin by (lower-case) name.
pub fn lookup(name: &str) -> Option<&'static FunctionDef> {
    BUILTINS.iter().find(|f| f.name == name)
}

/// Validate a call's existence and arity; returns its definition.
pub fn resolve(name: &str, argc: usize) -> Result<&'static FunctionDef> {
    let def = lookup(name).ok_or_else(|| Error::Plan(format!("unknown function `{name}`")))?;
    if argc < def.min_args || argc > def.max_args {
        return Err(Error::Plan(format!(
            "function `{name}` expects {}..={} arguments, got {argc}",
            def.min_args, def.max_args
        )));
    }
    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_arity() {
        assert!(lookup("sum").is_some());
        assert!(lookup("nope").is_none());
        assert!(resolve("sum", 1).is_ok());
        assert!(resolve("sum", 2).is_err());
        assert!(resolve("avg_cate_where", 3).is_ok());
        assert!(resolve("avg_cate_where", 2).is_err());
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<_> = BUILTINS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn return_type_inference() {
        let sum = lookup("sum").unwrap();
        assert_eq!((sum.infer)(&[Some(DataType::Int)]), DataType::Bigint);
        assert_eq!((sum.infer)(&[Some(DataType::Float)]), DataType::Double);
        let mx = lookup("max").unwrap();
        assert_eq!((mx.infer)(&[Some(DataType::String)]), DataType::String);
    }

    #[test]
    fn aggregates_flagged() {
        assert_eq!(lookup("drawdown").unwrap().kind, FunctionKind::Aggregate);
        assert_eq!(lookup("split_by_key").unwrap().kind, FunctionKind::Scalar);
    }
}
