//! Compilation cache (paper Section 4.2, "Compilation Cache").
//!
//! Deploying the same (or a whitespace/case-equivalent) feature script twice
//! must not pay the full parse-and-bind cost again. SQL text is normalized at
//! the token level — keyword case and whitespace are canonicalized — so
//! `select A from T` and `SELECT a  FROM T` share one cached plan when the
//! identifier case matches. The cache also tracks hit/miss counters, which
//! the benchmarks report.
//!
//! Cached plans carry their deploy-time artifacts with them: each
//! [`CompiledQuery`] owns a
//! [`SpecializationSlot`](crate::plan::SpecializationSlot) that the exec
//! layer fills with the plan's specialized bytecode program on first
//! deployment. A cache hit therefore shares not just the bound plan but the
//! compiled program too — re-deploying an equivalent script never pays
//! specialization again.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use openmldb_obs::trace as obs;
use openmldb_types::Result;

use crate::ast::SelectStatement;
use crate::parser::parse_select;
use crate::plan::{compile_select, Catalog, CompiledQuery};
use crate::token::{tokenize, TokenKind};

/// Normalize SQL to a canonical token string: whitespace collapsed, keywords
/// uppercased, literals and identifiers preserved.
pub fn normalize_sql(sql: &str) -> Result<String> {
    let tokens = tokenize(sql)?;
    let mut out = String::with_capacity(sql.len());
    for t in tokens {
        match t.kind {
            TokenKind::Eof => break,
            TokenKind::Semicolon => continue,
            kind => {
                if !out.is_empty() {
                    out.push(' ');
                }
                match kind {
                    TokenKind::Keyword(k) => out.push_str(&k),
                    TokenKind::Ident(i) => out.push_str(&i),
                    TokenKind::Int(n) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
                    }
                    TokenKind::Float(f) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{f}"));
                    }
                    TokenKind::Str(s) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("'{s}'"));
                    }
                    TokenKind::Interval { value, unit } => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{value}{unit}"));
                    }
                    other => out.push_str(punct(&other)),
                }
            }
        }
    }
    Ok(out)
}

fn punct(k: &TokenKind) -> &'static str {
    match k {
        TokenKind::Comma => ",",
        TokenKind::Dot => ".",
        TokenKind::LParen => "(",
        TokenKind::RParen => ")",
        TokenKind::Star => "*",
        TokenKind::Plus => "+",
        TokenKind::Minus => "-",
        TokenKind::Slash => "/",
        TokenKind::Percent => "%",
        TokenKind::Eq => "=",
        TokenKind::NotEq => "!=",
        TokenKind::Lt => "<",
        TokenKind::LtEq => "<=",
        TokenKind::Gt => ">",
        TokenKind::GtEq => ">=",
        _ => "",
    }
}

/// A cache of compiled query plans keyed by normalized SQL.
///
/// Catalog changes must be signalled with [`PlanCache::invalidate_all`] (the
/// facade does this on CREATE TABLE), since plans embed resolved schemas.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<u64, Arc<CompiledQuery>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile `sql` against `catalog`, reusing a cached plan when the
    /// normalized text matches a prior compilation.
    pub fn compile(&self, sql: &str, catalog: &dyn Catalog) -> Result<Arc<CompiledQuery>> {
        self.compile_traced(sql, catalog).map(|(plan, _)| plan)
    }

    /// [`PlanCache::compile`], additionally reporting whether the probe hit
    /// (`true`) or compiled from scratch (`false`) — the per-call outcome
    /// callers attribute to a deployment (the global counters cannot say
    /// whose script paid the compile).
    pub fn compile_traced(
        &self,
        sql: &str,
        catalog: &dyn Catalog,
    ) -> Result<(Arc<CompiledQuery>, bool)> {
        let cached = obs::span(obs::Stage::CacheLookup, || -> Result<_> {
            let normalized = normalize_sql(sql)?;
            let mut h = DefaultHasher::new();
            normalized.hash(&mut h);
            let key = h.finish();
            let plan = self
                .plans
                .lock()
                .expect("cache poisoned")
                .get(&key)
                .cloned();
            Ok((key, plan))
        });
        let (key, hit) = cached?;
        if let Some(plan) = hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::metrics::plan_cache_hits().inc();
            openmldb_obs::flight::event(openmldb_obs::FlightEventKind::PlanCacheHit, 0, key);
            return Ok((plan, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::metrics::plan_cache_misses().inc();
        openmldb_obs::flight::event(openmldb_obs::FlightEventKind::PlanCacheMiss, 0, key);
        let plan = obs::span(obs::Stage::Plan, || -> Result<_> {
            let stmt = parse_select(sql)?;
            Ok(Arc::new(compile_select(&stmt, catalog)?))
        })?;
        self.plans
            .lock()
            .expect("cache poisoned")
            .insert(key, plan.clone());
        Ok((plan, false))
    }

    /// Compile an already-parsed SELECT (the DEPLOY path carries an AST,
    /// not text), keyed by the AST's canonical debug rendering so identical
    /// feature scripts deployed under different names share one plan.
    /// Returns the plan plus the hit/miss outcome, like
    /// [`PlanCache::compile_traced`]. Cold path: DEPLOY runs once per
    /// script, so the rendering allocation is acceptable.
    pub fn compile_stmt_traced(
        &self,
        stmt: &SelectStatement,
        catalog: &dyn Catalog,
    ) -> Result<(Arc<CompiledQuery>, bool)> {
        let key = obs::span(obs::Stage::CacheLookup, || {
            let mut repr = String::new();
            let _ = std::fmt::Write::write_fmt(&mut repr, format_args!("{stmt:?}"));
            let mut h = DefaultHasher::new();
            repr.hash(&mut h);
            h.finish()
        });
        let hit = {
            let plans = self.plans.lock().expect("cache poisoned");
            plans.get(&key).cloned()
        };
        if let Some(plan) = hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::metrics::plan_cache_hits().inc();
            openmldb_obs::flight::event(openmldb_obs::FlightEventKind::PlanCacheHit, 0, key);
            return Ok((plan, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::metrics::plan_cache_misses().inc();
        openmldb_obs::flight::event(openmldb_obs::FlightEventKind::PlanCacheMiss, 0, key);
        let plan = obs::span(obs::Stage::Plan, || -> Result<_> {
            Ok(Arc::new(compile_select(stmt, catalog)?))
        })?;
        self.plans
            .lock()
            .expect("cache poisoned")
            .insert(key, plan.clone());
        Ok((plan, false))
    }

    /// Drop every cached plan (schemas changed).
    pub fn invalidate_all(&self) {
        self.plans.lock().expect("cache poisoned").clear();
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.plans.lock().expect("cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_types::{DataType, Schema};

    struct OneTable(Schema);
    impl Catalog for OneTable {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            (name == "t").then(|| self.0.clone())
        }
    }

    fn catalog() -> OneTable {
        OneTable(
            Schema::from_pairs(&[
                ("k", DataType::Bigint),
                ("v", DataType::Double),
                ("ts", DataType::Timestamp),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn normalization_collapses_whitespace_and_keyword_case() {
        let a = normalize_sql("select   k from t").unwrap();
        let b = normalize_sql("SELECT k\n\tFROM t;").unwrap();
        assert_eq!(a, b);
        // identifier case is preserved (identifiers are case-sensitive)
        let c = normalize_sql("SELECT K FROM t").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cache_hits_on_equivalent_sql() {
        let cache = PlanCache::new();
        let cat = catalog();
        let p1 = cache.compile("select k from t", &cat).unwrap();
        let p2 = cache.compile("SELECT k FROM t;", &cat).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidation_forces_recompile() {
        let cache = PlanCache::new();
        let cat = catalog();
        let p1 = cache.compile("SELECT k FROM t", &cat).unwrap();
        cache.invalidate_all();
        let p2 = cache.compile("SELECT k FROM t", &cat).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cache_hits_share_the_specialization_slot() {
        // The deploy-time bytecode program rides the plan's specialization
        // slot: a cache hit must expose the same slot (same OnceLock), so
        // whoever fills it first — the exec layer's `specialize` — serves
        // every later deployment of the equivalent script.
        let cache = PlanCache::new();
        let cat = catalog();
        let p1 = cache.compile("SELECT k FROM t", &cat).unwrap();
        let p2 = cache.compile("select   k from t;", &cat).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let filled: Arc<dyn std::any::Any + Send + Sync> = Arc::new(42usize);
        let got = p1.specialized.get_or_init(|| filled.clone());
        assert!(Arc::ptr_eq(
            &got,
            &p2.specialized.get().expect("slot visible through the hit")
        ));
    }

    #[test]
    fn different_queries_do_not_collide() {
        let cache = PlanCache::new();
        let cat = catalog();
        let p1 = cache.compile("SELECT k FROM t", &cat).unwrap();
        let p2 = cache.compile("SELECT v FROM t", &cat).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 2);
    }
}
