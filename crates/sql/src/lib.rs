//! # openmldb-sql
//!
//! OpenMLDB SQL front-end: lexer, parser, and the **unified query plan
//! generator** of the paper's Section 4. A feature script is compiled once
//! into a [`plan::CompiledQuery`] and then executed by *both* the online
//! request-mode engine and the offline batch engine — eliminating the
//! offline/online inconsistency that motivates the system.
//!
//! Compilation-level optimizations implemented here:
//!
//! * **Window merging** — window definitions with identical specs are merged
//!   into a single window id (Section 4.2, parsing optimization).
//! * **Cyclic binding** — duplicate aggregate calls share one state slot, and
//!   derived aggregates (`avg`) reuse simpler intermediates (`sum`, `count`)
//!   inside the executor (Section 4.2).
//! * **Compilation cache** — normalized SQL text maps to a cached compiled
//!   plan, so re-deployments skip the full pipeline (Section 4.2).

pub mod ast;
pub mod cache;
pub mod functions;
pub mod interval;
pub mod metrics;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::{
    BinaryOp, ColumnRef, CreateTableStatement, DeployStatement, Expr, Frame, InsertStatement,
    Literal, SelectItem, SelectStatement, Statement, TableRef, TtlSpec, WindowDef, WindowSpec,
};
pub use cache::{normalize_sql, PlanCache};
pub use functions::{FunctionDef, FunctionKind};
pub use parser::{parse_select, parse_statement};
pub use plan::{
    compile_select, BoundAggregate, BoundJoin, BoundWindow, Catalog, CompiledQuery, OutputColumn,
    PhysExpr, PlanStats,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random-but-valid SELECT statements assembled from grammar pieces.
    fn arb_select() -> impl Strategy<Value = String> {
        // `c_` prefix keeps generated identifiers clear of reserved words.
        let ident = "c_[a-z0-9]{0,6}";
        let agg = prop_oneof![
            Just("sum"),
            Just("avg"),
            Just("count"),
            Just("min"),
            Just("max"),
            Just("distinct_count")
        ];
        (
            proptest::collection::vec((agg, ident), 1..4),
            1u64..1_000,
            prop_oneof![Just("ROWS"), Just("ROWS_RANGE")],
            any::<bool>(),
            0usize..3,
        )
            .prop_map(|(aggs, bound, frame_kind, desc, limit)| {
                let items: Vec<String> = aggs
                    .iter()
                    .enumerate()
                    .map(|(i, (f, col))| format!("{f}({col}) OVER w AS out_{i}"))
                    .collect();
                let mut sql = format!(
                    "SELECT k, {} FROM t WINDOW w AS (PARTITION BY k ORDER BY ts {} \
                     {frame_kind} BETWEEN {bound} PRECEDING AND CURRENT ROW)",
                    items.join(", "),
                    if desc { "DESC" } else { "ASC" },
                );
                if limit > 0 {
                    sql.push_str(&format!(" LIMIT {limit}"));
                }
                sql
            })
    }

    proptest! {
        /// Every grammar-assembled statement parses, and normalization is
        /// idempotent (normalize ∘ normalize == normalize) — the property
        /// the compilation cache's key function relies on.
        #[test]
        fn parse_and_normalize_roundtrip(sql in arb_select()) {
            let parsed = parse_select(&sql);
            prop_assert!(parsed.is_ok(), "failed to parse: {sql}\n{parsed:?}");
            let n1 = normalize_sql(&sql).unwrap();
            let n2 = normalize_sql(&n1).unwrap();
            prop_assert_eq!(&n1, &n2, "normalization not idempotent");
            // Whitespace and keyword-case perturbations normalize equally.
            let shouty = sql.replace("SELECT", "select").replace("WINDOW", "window");
            let spaced = sql.replace(' ', "  ");
            prop_assert_eq!(&n1, &normalize_sql(&shouty).unwrap());
            prop_assert_eq!(&n1, &normalize_sql(&spaced).unwrap());
        }

        /// The lexer never panics on arbitrary printable input — it either
        /// tokenizes or reports a positioned parse error.
        #[test]
        fn lexer_total_on_ascii(input in "[ -~]{0,120}") {
            match token::tokenize(&input) {
                Ok(tokens) => prop_assert!(!tokens.is_empty()),
                Err(openmldb_types::Error::Parse { position, .. }) => {
                    prop_assert!(position <= input.len());
                }
                Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            }
        }

        /// The parser never panics on arbitrary printable input.
        #[test]
        fn parser_total_on_ascii(input in "[ -~]{0,120}") {
            let _ = parse_statement(&input);
        }
    }
}
