//! Self-adjusted multi-table window union (paper Section 5.2).
//!
//! Tuples from several stream tables are matched over a shared time window,
//! partitioned by common keys. Two scheduling strategies are implemented:
//!
//! * **StaticHash** — the Flink-style baseline: a tuple's key hashes to a
//!   fixed worker. Skewed key distributions starve all but one worker.
//! * **SelfAdjusting** — a dynamic scheduler gathers per-key processing
//!   counts and periodically remaps the hottest keys from the most-loaded
//!   worker to the least-loaded one ("on-the-fly load balancing").
//!
//! Orthogonally, per-key window state either uses the **incremental**
//! subtract-and-evict [`SlidingWindow`] or a **recompute** baseline that
//! re-sorts and re-aggregates the buffer on every tuple (the paper's
//! description of Flink's eviction behaviour). Both knobs exist so the
//! Section 9.3.2 ablation can isolate each effect.
//!
//! Per-key state lives in a shared concurrent map (the two-level skiplist),
//! guarded per key — so remapping a key to another worker migrates no state,
//! and "multiple workers can collaborate on the same key subset".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};

use openmldb_exec::SlidingWindow;
use openmldb_sql::ast::Frame;
use openmldb_sql::plan::BoundAggregate;
use openmldb_storage::SkipMap;
use openmldb_types::{KeyValue, Result, Row, Value};

/// Worker scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Key-hash routing fixed at startup (the baseline).
    StaticHash,
    /// Dynamic key→worker remapping every `rebalance_every` tuples.
    SelfAdjusting { rebalance_every: usize },
}

/// Window-union executor configuration.
#[derive(Debug, Clone)]
pub struct UnionConfig {
    pub workers: usize,
    pub frame: Frame,
    pub scheduling: Scheduling,
    /// true = subtract-and-evict; false = re-sort + recompute per tuple.
    pub incremental: bool,
}

enum Task {
    Tuple { key: KeyValue, ts: i64, row: Row },
    Barrier(Sender<()>),
    Stop,
}

struct KeyState {
    window: Mutex<WindowState>,
}

enum WindowState {
    Incremental(SlidingWindow),
    Recompute {
        buffer: Vec<(i64, Row)>,
        specs: Arc<Vec<BoundAggregate>>,
    },
}

/// The union executor: N workers over a shared per-key state map.
pub struct WindowUnion {
    senders: Vec<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-worker tuples processed (load metric).
    loads: Arc<Vec<AtomicU64>>,
    /// Dynamic routing table (None for static hashing).
    routes: Option<Arc<RwLock<HashMap<KeyValue, usize>>>>,
    /// Per-key traffic since the last rebalance.
    key_traffic: Arc<Mutex<HashMap<KeyValue, u64>>>,
    config: UnionConfig,
    pushed: u64,
    rebalances: u64,
}

fn hash_key(key: &KeyValue) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl WindowUnion {
    pub fn new(config: UnionConfig, specs: Vec<BoundAggregate>) -> Result<Self> {
        let workers_n = config.workers.max(1);
        let states: Arc<SkipMap<KeyValue, KeyState>> = Arc::new(SkipMap::new());
        // Validate the aggregate specs before spawning workers: per-key
        // windows are built from these specs inside worker threads, which
        // have no way to surface an error mid-stream.
        SlidingWindow::new(config.frame, &specs.iter().collect::<Vec<_>>())?;
        let specs = Arc::new(specs);
        let loads: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers_n).map(|_| AtomicU64::new(0)).collect());
        let mut senders = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        for worker_id in 0..workers_n {
            let (tx, rx) = bounded::<Task>(4_096);
            let states = states.clone();
            let specs = specs.clone();
            let loads = loads.clone();
            let frame = config.frame;
            let incremental = config.incremental;
            workers.push(std::thread::spawn(move || {
                while let Ok(task) = rx.recv() {
                    match task {
                        Task::Tuple { key, ts, row } => {
                            let (state, _) = states.get_or_insert_with(key, || KeyState {
                                window: Mutex::new(if incremental {
                                    let refs: Vec<&BoundAggregate> = specs.iter().collect();
                                    WindowState::Incremental(
                                        SlidingWindow::new(frame, &refs)
                                            // analysis:allow(panic-path):
                                            // specs were validated in
                                            // WindowUnion::new.
                                            .expect("valid union aggregates"),
                                    )
                                } else {
                                    WindowState::Recompute {
                                        buffer: Vec::new(),
                                        specs: specs.clone(),
                                    }
                                }),
                            });
                            let mut window = state.window.lock();
                            let _ = step(&mut window, frame, ts, row);
                            loads[worker_id].fetch_add(1, Ordering::Relaxed);
                        }
                        Task::Barrier(ack) => {
                            let _ = ack.send(());
                        }
                        Task::Stop => return,
                    }
                }
            }));
            senders.push(tx);
        }
        let routes = match config.scheduling {
            Scheduling::SelfAdjusting { .. } => Some(Arc::new(RwLock::new(HashMap::new()))),
            Scheduling::StaticHash => None,
        };
        Ok(WindowUnion {
            senders,
            workers,
            loads,
            routes,
            key_traffic: Arc::new(Mutex::new(HashMap::new())),
            config,
            pushed: 0,
            rebalances: 0,
        })
    }

    /// Route one stream tuple (from any of the unioned tables) to a worker.
    pub fn push(&mut self, key: KeyValue, ts: i64, row: Row) {
        // Chaos hook: latency-only (a slow dispatch). Worker kills are
        // deliberately not modelled here — a dead worker would wedge the
        // flush barrier, which is a different failure class than this
        // crate's bounded-latency contract covers.
        let _ = openmldb_chaos::inject(openmldb_chaos::InjectionPoint::UnionDispatch);
        let worker = match &self.routes {
            None => (hash_key(&key) % self.senders.len() as u64) as usize,
            Some(routes) => {
                let assigned = routes.read().get(&key).copied();
                match assigned {
                    Some(w) => w,
                    None => {
                        let w = (hash_key(&key) % self.senders.len() as u64) as usize;
                        routes.write().insert(key.clone(), w);
                        w
                    }
                }
            }
        };
        *self.key_traffic.lock().entry(key.clone()).or_insert(0) += 1;
        let _ = self.senders[worker].send(Task::Tuple { key, ts, row });
        self.pushed += 1;
        crate::metrics::union_tuples().inc();
        if let Scheduling::SelfAdjusting { rebalance_every } = self.config.scheduling {
            if self.pushed.is_multiple_of(rebalance_every as u64) {
                self.rebalance();
            }
        }
    }

    /// Periodic load balancing: move the hottest keys off the most-loaded
    /// worker onto the least-loaded one.
    fn rebalance(&mut self) {
        let Some(routes) = &self.routes else { return };
        self.rebalances += 1;
        // Estimate per-worker load from key traffic × current routing.
        let mut per_worker = vec![0u64; self.senders.len()];
        let traffic = std::mem::take(&mut *self.key_traffic.lock());
        let mut routing = routes.write();
        for (key, count) in &traffic {
            if let Some(&w) = routing.get(key) {
                per_worker[w] += count;
            }
        }
        let (hot, _) = per_worker
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            // analysis:allow(panic-path): workers_n is clamped to >= 1.
            .expect("non-empty workers");
        let (cold, _) = per_worker
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            // analysis:allow(panic-path): workers_n is clamped to >= 1.
            .expect("non-empty workers");
        if hot == cold || per_worker[hot] == 0 {
            return;
        }
        // Move the hot worker's heaviest keys until loads would roughly even
        // out. State lives in the shared map, so only routing changes.
        let mut hot_keys: Vec<(&KeyValue, &u64)> = traffic
            .iter()
            .filter(|(k, _)| routing.get(k) == Some(&hot))
            .collect();
        hot_keys.sort_by(|a, b| b.1.cmp(a.1));
        let mut moved = 0u64;
        let target = (per_worker[hot] - per_worker[cold]) / 2;
        for (key, count) in hot_keys {
            if moved >= target {
                break;
            }
            routing.insert(key.clone(), cold);
            moved += count;
        }
    }

    /// Wait until every worker has drained its queue, then publish this
    /// union's per-worker loads and imbalance ratio to the global registry
    /// (last flushed union wins — the gauges describe the most recent
    /// quiescent state).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = bounded(self.senders.len());
        for s in &self.senders {
            let _ = s.send(Task::Barrier(ack_tx.clone()));
        }
        for _ in 0..self.senders.len() {
            let _ = ack_rx.recv();
        }
        for (worker, load) in self.worker_loads().into_iter().enumerate() {
            crate::metrics::union_worker_load(worker).set(load as f64);
        }
        crate::metrics::union_imbalance().set(self.imbalance());
    }

    /// Per-worker tuples processed — the imbalance diagnostic.
    pub fn worker_loads(&self) -> Vec<u64> {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// Ratio max/mean worker load (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let loads = self.worker_loads();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }
}

impl Drop for WindowUnion {
    fn drop(&mut self) {
        for s in &self.senders {
            let _ = s.send(Task::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Process one tuple against a key's window state; returns aggregate values.
fn step(state: &mut WindowState, frame: Frame, ts: i64, row: Row) -> Result<Vec<Value>> {
    match state {
        WindowState::Incremental(w) => w.push(ts, row.values()),
        WindowState::Recompute { buffer, specs } => {
            // Flink-like baseline: append, re-sort the whole buffer to find
            // evictions, then recompute all aggregates from scratch.
            buffer.push((ts, row));
            buffer.sort_by_key(|(t, _)| *t);
            let anchor = buffer.last().map(|(t, _)| *t).unwrap_or(ts);
            match frame {
                Frame::RowsRange { preceding_ms } => {
                    let cut = buffer.partition_point(|(t, _)| anchor - t > preceding_ms);
                    buffer.drain(..cut);
                }
                Frame::Rows { preceding } => {
                    let keep = preceding as usize + 1;
                    if buffer.len() > keep {
                        let n = buffer.len() - keep;
                        buffer.drain(..n);
                    }
                }
                Frame::Unbounded => {}
            }
            let refs: Vec<&BoundAggregate> = specs.iter().collect();
            let mut set = openmldb_exec::WindowAggSet::new(&refs)?;
            for (_, r) in buffer.iter() {
                set.update(r.values())?;
            }
            Ok(set.outputs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_types::DataType;

    fn sum_spec() -> Vec<BoundAggregate> {
        vec![BoundAggregate {
            window_id: 0,
            func: lookup("sum").unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: DataType::Bigint,
        }]
    }

    fn run(config: UnionConfig, tuples: usize, distinct_keys: u64) -> WindowUnion {
        let mut u = WindowUnion::new(config, sum_spec()).unwrap();
        for i in 0..tuples {
            // Zipf-ish: key 0 gets half the traffic.
            let key = if i % 2 == 0 {
                0
            } else {
                (i as u64) % distinct_keys
            };
            u.push(
                KeyValue::Int(key as i64),
                i as i64,
                Row::new(vec![Value::Bigint(1)]),
            );
        }
        u.flush();
        u
    }

    #[test]
    fn all_tuples_processed_static_and_dynamic() {
        for scheduling in [
            Scheduling::StaticHash,
            Scheduling::SelfAdjusting {
                rebalance_every: 500,
            },
        ] {
            let u = run(
                UnionConfig {
                    workers: 4,
                    frame: Frame::RowsRange { preceding_ms: 100 },
                    scheduling,
                    incremental: true,
                },
                4_000,
                8,
            );
            assert_eq!(u.worker_loads().iter().sum::<u64>(), 4_000);
        }
    }

    #[test]
    fn dynamic_scheduling_rebalances() {
        let u = run(
            UnionConfig {
                workers: 4,
                frame: Frame::RowsRange { preceding_ms: 100 },
                scheduling: Scheduling::SelfAdjusting {
                    rebalance_every: 200,
                },
                incremental: true,
            },
            4_000,
            8,
        );
        assert!(u.rebalances() > 0);
    }

    #[test]
    fn recompute_baseline_still_correct() {
        // Single worker, single key → deterministic output check via state.
        let specs = sum_spec();
        let mut inc = WindowState::Incremental(
            SlidingWindow::new(
                Frame::RowsRange { preceding_ms: 50 },
                &specs.iter().collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let mut rec = WindowState::Recompute {
            buffer: Vec::new(),
            specs: Arc::new(sum_spec()),
        };
        for i in 0..100i64 {
            let ts = (i * 13) % 200;
            let row = Row::new(vec![Value::Bigint(i)]);
            let a = step(
                &mut inc,
                Frame::RowsRange { preceding_ms: 50 },
                ts,
                row.clone(),
            )
            .unwrap();
            let b = step(&mut rec, Frame::RowsRange { preceding_ms: 50 }, ts, row).unwrap();
            assert_eq!(a, b, "incremental and recompute agree at step {i}");
        }
    }

    #[test]
    fn loads_published_to_registry_on_flush() {
        let u = run(
            UnionConfig {
                workers: 4,
                frame: Frame::RowsRange { preceding_ms: 100 },
                scheduling: Scheduling::StaticHash,
                incremental: true,
            },
            4_000,
            8,
        );
        // the per-instance counters stay exact regardless of other tests
        assert_eq!(u.worker_loads().iter().sum::<u64>(), 4_000);
        // ... and flush() published them as labeled gauges plus the
        // imbalance ratio (values are last-writer-wins across unions, so
        // only presence and the >= 1.0 invariant are asserted here)
        let names = openmldb_obs::Registry::global().metric_names();
        for worker in 0..4 {
            let series = format!("openmldb_online_union_worker_load_rows{{worker=\"{worker}\"}}");
            assert!(names.contains(&series), "missing {series}");
        }
        assert!(names.contains(&"openmldb_online_union_imbalance_ratio".to_string()));
        if openmldb_obs::enabled() {
            assert!(crate::metrics::union_imbalance().value() >= 1.0);
        }
    }

    #[test]
    fn skewed_static_routing_is_imbalanced() {
        // With one dominant key, static hashing pins half the load on one
        // worker; the self-adjusting scheduler cannot split a single key's
        // serial stream, but spreads the remaining keys.
        let static_u = run(
            UnionConfig {
                workers: 4,
                frame: Frame::RowsRange { preceding_ms: 100 },
                scheduling: Scheduling::StaticHash,
                incremental: true,
            },
            8_000,
            64,
        );
        assert!(
            static_u.imbalance() > 1.3,
            "imbalance {}",
            static_u.imbalance()
        );
    }
}
