//! # openmldb-online
//!
//! The online real-time execution engine (paper Sections 3.2 and 5):
//!
//! * [`engine`] — request-mode execution: a request tuple is virtually
//!   inserted, the deployed plan runs against the pre-ranked stores, and one
//!   feature row returns;
//! * [`preagg`] — long-window pre-aggregation with a multi-level bucket
//!   hierarchy maintained asynchronously through the binlog (Section 5.1);
//! * [`window_union`] — the self-adjusted multi-table window union with
//!   dynamic key→worker load balancing and incremental computation
//!   (Section 5.2), plus the static/recompute baselines for ablation;
//! * [`segtree`] — segment-tree range-merge structure and the query
//!   frequency tracker behind hierarchy adaptation;
//! * [`resilience`] — deadline budgets, bounded retries, replica failover,
//!   and the buckets-only degradation tier for the request path;
//! * [`sentinel`] — the consistency sentinel: 1-in-N sampled serves are
//!   re-executed through the interpreted and materialized oracle paths and
//!   compared bit-for-bit, turning the differential-test oracles into a
//!   continuous production audit.

pub mod engine;
pub mod metrics;
pub mod preagg;
pub mod resilience;
pub mod segtree;
pub mod sentinel;
pub mod window_union;

pub use engine::{
    collect_window_rows, execute_request, execute_request_materialized,
    execute_request_materialized_with, execute_request_with, Deployment, MapProvider,
    TableProvider,
};
pub use preagg::PreAggregator;
pub use resilience::{RequestOptions, RequestOutput, RetryPolicy};
pub use segtree::{FrequencyTracker, Mergeable, SegmentTree};
pub use sentinel::{AuditStats, SentinelStats};
pub use window_union::{Scheduling, UnionConfig, WindowUnion};
